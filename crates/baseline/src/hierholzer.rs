//! Hierholzer's sequential Euler circuit algorithm, `O(|E|)`.
//!
//! This is the classical single-machine algorithm the paper builds on
//! conceptually (its Phase 1 is a partition-local Hierholzer variant) and the
//! correctness oracle for the distributed implementation: both must cover the
//! same edge set with closed, chained circuits.

use euler_core::phase3::CircuitStep;
use euler_core::{CircuitResult, EulerError};
use euler_graph::{properties, Graph, VertexId};

/// Finds an Euler circuit of `g` with Hierholzer's algorithm.
///
/// Returns one circuit per edge-bearing connected component (a single circuit
/// for a connected Eulerian graph).
///
/// # Errors
/// Returns [`EulerError::Graph`] if some vertex has odd degree.
pub fn hierholzer_circuit(g: &Graph) -> Result<CircuitResult, EulerError> {
    if let Some(&v) = properties::odd_vertices(g).first() {
        return Err(EulerError::Graph(euler_graph::GraphError::NotEulerian {
            vertex: v,
            degree: g.degree(v),
        }));
    }
    let n = g.num_vertices() as usize;
    let mut cursor = vec![0usize; n];
    let mut used = vec![false; g.num_edges() as usize];
    let mut result = CircuitResult::default();

    for start in 0..n {
        // Skip vertices whose edges are already covered.
        if g.degree(VertexId(start as u64)) == 0 {
            continue;
        }
        if next_unused(g, &mut cursor, &used, VertexId(start as u64)).is_none() {
            continue;
        }
        // Iterative Hierholzer: walk until stuck, back up along the partial
        // tour and extend from any vertex with unused edges.
        let mut stack: Vec<VertexId> = vec![VertexId(start as u64)];
        let mut tour_rev: Vec<CircuitStep> = Vec::new();
        // Edge taken to reach the vertex at the same stack position (None for the root).
        let mut via: Vec<Option<CircuitStep>> = vec![None];
        while let Some(&v) = stack.last() {
            match next_unused(g, &mut cursor, &used, v) {
                Some((edge, to)) => {
                    used[edge.index()] = true;
                    stack.push(to);
                    via.push(Some(CircuitStep { edge, from: v, to }));
                }
                None => {
                    stack.pop();
                    if let Some(Some(step)) = via.pop() {
                        tour_rev.push(step);
                    }
                }
            }
        }
        if !tour_rev.is_empty() {
            tour_rev.reverse();
            result.circuits.push(tour_rev);
        }
    }
    Ok(result)
}

fn next_unused(
    g: &Graph,
    cursor: &mut [usize],
    used: &[bool],
    v: VertexId,
) -> Option<(euler_graph::EdgeId, VertexId)> {
    let neighbors = g.neighbors(v);
    let c = &mut cursor[v.index()];
    while *c < neighbors.len() {
        let (to, edge) = neighbors[*c];
        if !used[edge.index()] {
            return Some((edge, to));
        }
        *c += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::verify::verify_result;
    use euler_gen::synthetic;
    use euler_graph::builder::graph_from_edges;

    #[test]
    fn triangle_circuit() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let r = hierholzer_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 1);
        assert_eq!(r.total_edges(), 3);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn figure_eight_requires_splicing() {
        // Two triangles sharing vertex 0: the walk from 0 must splice.
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let r = hierholzer_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 1);
        assert_eq!(r.total_edges(), 6);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn odd_degree_rejected() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        assert!(hierholzer_circuit(&g).is_err());
    }

    #[test]
    fn disconnected_components_give_multiple_circuits() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)]);
        let r = hierholzer_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 2);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn torus_and_circulant_families() {
        for g in [synthetic::torus_grid(7, 9), synthetic::circulant(31, &[1, 3, 5])] {
            let r = hierholzer_circuit(&g).unwrap();
            assert_eq!(r.num_circuits(), 1);
            assert_eq!(r.total_edges(), g.num_edges());
            verify_result(&g, &r).unwrap();
        }
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 1)]);
        let r = hierholzer_circuit(&g).unwrap();
        assert_eq!(r.total_edges(), 3);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn empty_graph_gives_no_circuits() {
        let g = euler_graph::Graph::empty(5);
        let r = hierholzer_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 0);
    }

    #[test]
    fn eulerized_rmat_graph() {
        let (g, _) = euler_gen::eulerize::eulerize(&euler_gen::rmat::RmatGenerator::new(9).with_seed(1).generate());
        let r = hierholzer_circuit(&g).unwrap();
        assert_eq!(r.total_edges(), g.num_edges());
        verify_result(&g, &r).unwrap();
    }
}
