//! Makki-style vertex-centric distributed Euler walk.
//!
//! Makki \[17\] adapts Hierholzer's algorithm to a distributed, vertex-centric
//! setting: at every step exactly one vertex is active, it picks one of its
//! unvisited edges, and the "walker" moves across that edge — one
//! barrier-synchronised superstep per edge traversal. The paper's criticism
//! (§2.2) is precisely this cost profile: `O(|E|)` supersteps and a single
//! busy machine while all others idle.
//!
//! This implementation reproduces that execution profile on the
//! `euler-bsp` vertex-centric engine. The walker performs maximal greedy
//! trails; when a trail closes with edges still unvisited, a new trail is
//! launched from a visited vertex that still has unvisited edges and the
//! resulting closed sub-tours are spliced into the final circuit (the same
//! Hierholzer splicing Makki encodes through backtracking — the coordination
//! cost, which is what the comparison needs, is identical: one superstep per
//! edge plus one per relaunch). The result is verified like every other
//! algorithm in the workspace.

use euler_core::fragment::{Fragment, FragmentId, FragmentKind, FragmentStore, TourEdge};
use euler_core::phase3::unroll;
use euler_core::{CircuitResult, EulerError};
use euler_bsp::{run_vertex_program, VertexContext, VertexEngineConfig, VertexProgram};
use euler_graph::{properties, EdgeId, Graph, PartitionId, VertexId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Statistics and result of a Makki-style run.
#[derive(Clone, Debug, Default)]
pub struct MakkiResult {
    /// The reconstructed circuit(s).
    pub result: CircuitResult,
    /// Total supersteps across all trails — the coordination cost that grows
    /// as `O(|E|)`, versus `⌈log n⌉ + 1` for the partition-centric algorithm.
    pub supersteps: u64,
    /// Total messages sent (one per edge traversal).
    pub messages: u64,
    /// Number of trails launched (1 + number of splices needed).
    pub walks: u64,
}

/// Per-vertex state: incident edges and their visited flags.
#[derive(Clone, Debug, Default)]
struct WalkVertex {
    incident: Vec<(VertexId, EdgeId)>,
    visited: Vec<bool>,
}

impl WalkVertex {
    fn next_unvisited(&self) -> Option<(usize, VertexId, EdgeId)> {
        self.incident
            .iter()
            .enumerate()
            .zip(self.visited.iter())
            .find(|(_, &v)| !v)
            .map(|((i, &(to, e)), _)| (i, to, e))
    }

    fn mark_edge(&mut self, edge: EdgeId) {
        for (i, &(_, e)) in self.incident.iter().enumerate() {
            if e == edge && !self.visited[i] {
                self.visited[i] = true;
                return;
            }
        }
    }
}

/// The token passed between vertices: which edge the walker just traversed.
#[derive(Clone, Copy, Debug)]
struct Token {
    edge: EdgeId,
}

struct WalkerProgram {
    start: u64,
    trail: Arc<Mutex<Vec<TourEdge>>>,
}

impl VertexProgram for WalkerProgram {
    type VertexState = WalkVertex;
    type Message = Token;

    fn compute(
        &self,
        ctx: &mut VertexContext,
        state: &mut WalkVertex,
        messages: &[Token],
    ) -> Vec<(u64, Token)> {
        ctx.vote_to_halt();
        let holding = if ctx.superstep == 0 {
            ctx.vertex == self.start
        } else {
            // Mark the edge we were reached through as visited on this side.
            for t in messages {
                state.mark_edge(t.edge);
            }
            !messages.is_empty()
        };
        if !holding {
            return vec![];
        }
        match state.next_unvisited() {
            Some((i, to, edge)) => {
                state.visited[i] = true;
                self.trail
                    .lock()
                    .push(TourEdge::Real { edge, from: VertexId(ctx.vertex), to });
                vec![(to.0, Token { edge })]
            }
            None => vec![], // trail is stuck (back at its start): stop walking
        }
    }
}

/// Runner for the Makki-style baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct MakkiRunner {
    /// Safety bound on total supersteps (0 = derive from the edge count).
    pub max_supersteps: u64,
}

impl MakkiRunner {
    /// Creates a runner with the default superstep bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the walker over `g` and reconstructs the circuit.
    ///
    /// # Errors
    /// Returns [`EulerError::Graph`] if some vertex has odd degree.
    pub fn run(&self, g: &Graph) -> Result<MakkiResult, EulerError> {
        if let Some(&v) = properties::odd_vertices(g).first() {
            return Err(EulerError::Graph(euler_graph::GraphError::NotEulerian {
                vertex: v,
                degree: g.degree(v),
            }));
        }
        let limit = if self.max_supersteps == 0 {
            4 * g.num_edges() + 2 * g.num_vertices() + 16
        } else {
            self.max_supersteps
        };

        let mut states: Vec<WalkVertex> = g
            .vertices()
            .map(|v| {
                let incident: Vec<(VertexId, EdgeId)> = g.neighbors(v).to_vec();
                let visited = vec![false; incident.len()];
                WalkVertex { incident, visited }
            })
            .collect();
        // Self-loops appear twice in the adjacency; mark the duplicate slot so
        // each loop is traversed exactly once.
        for (v, state) in states.iter_mut().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for (i, &(to, e)) in state.incident.iter().enumerate() {
                if to.index() == v && !seen.insert(e) {
                    state.visited[i] = true;
                }
            }
        }

        let store = FragmentStore::new();
        let mut result = MakkiResult::default();
        let mut covered = vec![false; g.num_edges() as usize];

        loop {
            // Pick a start vertex with an unvisited edge, preferring vertices
            // already on an earlier trail so sub-tours connect.
            let start = states
                .iter()
                .enumerate()
                .find(|(_, s)| s.next_unvisited().is_some())
                .map(|(v, _)| v as u64);
            let Some(start) = start else { break };

            let trail: Arc<Mutex<Vec<TourEdge>>> = Arc::new(Mutex::new(Vec::new()));
            let program = WalkerProgram { start, trail: trail.clone() };
            let (new_states, stats) = run_vertex_program(
                &program,
                states,
                VertexEngineConfig { max_supersteps: limit },
            );
            states = new_states;
            result.supersteps += stats.supersteps;
            result.messages += stats.messages;
            result.walks += 1;

            let tour = std::mem::take(&mut *trail.lock());
            if tour.is_empty() {
                break;
            }
            for te in &tour {
                if let TourEdge::Real { edge, .. } = te {
                    covered[edge.index()] = true;
                }
            }
            store.push(Fragment {
                id: FragmentId(0),
                kind: FragmentKind::Cycle,
                level: 0,
                partition: PartitionId(0),
                edges: tour,
            });
        }

        result.result = unroll(&store);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_core::verify::verify_result;
    use euler_gen::synthetic;
    use euler_graph::builder::graph_from_edges;

    #[test]
    fn triangle_takes_one_superstep_per_edge() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let r = MakkiRunner::new().run(&g).unwrap();
        assert_eq!(r.result.num_circuits(), 1);
        assert_eq!(r.result.total_edges(), 3);
        verify_result(&g, &r.result).unwrap();
        // One superstep per edge traversal plus the initial and final ones.
        assert!(r.supersteps >= 3);
        assert_eq!(r.messages, 3);
    }

    #[test]
    fn figure_eight_requires_splicing() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let r = MakkiRunner::new().run(&g).unwrap();
        assert_eq!(r.result.num_circuits(), 1);
        assert_eq!(r.result.total_edges(), 6);
        verify_result(&g, &r.result).unwrap();
    }

    #[test]
    fn superstep_count_scales_with_edges() {
        let small = synthetic::torus_grid(4, 4);
        let large = synthetic::torus_grid(8, 8);
        let rs = MakkiRunner::new().run(&small).unwrap();
        let rl = MakkiRunner::new().run(&large).unwrap();
        verify_result(&small, &rs.result).unwrap();
        verify_result(&large, &rl.result).unwrap();
        // Coordination cost grows with |E| (the paper's argument against it).
        assert!(rs.supersteps >= small.num_edges());
        assert!(rl.supersteps >= large.num_edges());
        assert!(rl.supersteps > 2 * rs.supersteps);
    }

    #[test]
    fn odd_degree_rejected() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        assert!(MakkiRunner::new().run(&g).is_err());
    }

    #[test]
    fn random_eulerian_graphs_verified() {
        for seed in 0..3 {
            let g = synthetic::random_eulerian_connected(30, 5, 5, seed);
            let r = MakkiRunner::new().run(&g).unwrap();
            assert_eq!(r.result.total_edges(), g.num_edges());
            verify_result(&g, &r.result).unwrap();
        }
    }

    #[test]
    fn self_loops_traversed_once() {
        let g = graph_from_edges(&[(0, 1), (1, 0), (1, 1)]);
        let r = MakkiRunner::new().run(&g).unwrap();
        assert_eq!(r.result.total_edges(), 3);
        verify_result(&g, &r.result).unwrap();
    }

    #[test]
    fn disconnected_components_yield_multiple_circuits() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)]);
        let r = MakkiRunner::new().run(&g).unwrap();
        assert_eq!(r.result.num_circuits(), 2);
        verify_result(&g, &r.result).unwrap();
    }
}
