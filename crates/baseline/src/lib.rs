//! # euler-baseline
//!
//! Baseline Euler circuit algorithms used for correctness oracles and
//! performance comparison against the partition-centric algorithm:
//!
//! * [`hierholzer`] — the classic sequential algorithm, `O(|E|)`; the paper's
//!   reference point for single-machine execution and the correctness oracle
//!   for every other implementation in the workspace.
//! * [`fleury`] — Fleury's algorithm, `O(|E|^2)` with bridge detection;
//!   included because the paper's related work cites it as the other classical
//!   sequential approach, and it provides an independent oracle.
//! * [`makki`] — Makki's vertex-centric distributed walk (single active
//!   vertex per superstep), the distributed baseline the paper argues against:
//!   its superstep count is `O(|E|)` in the vertex-centric setting and
//!   `O(edge cut)` in the partition-centric one, versus `O(log n)` levels for
//!   the paper's algorithm.

#![warn(missing_docs)]

pub mod fleury;
pub mod hierholzer;
pub mod makki;

pub use fleury::fleury_circuit;
pub use hierholzer::hierholzer_circuit;
pub use makki::{MakkiResult, MakkiRunner};
