//! Fleury's algorithm, the other classical sequential approach (§2.2).
//!
//! Fleury walks a single trail, never taking a bridge of the remaining graph
//! unless it has no alternative. With a straightforward bridge test per step
//! it runs in `O(|E|·(|V|+|E|))`, which is why the paper (and practice)
//! prefers Hierholzer; it is included as an independent oracle and as the
//! slow baseline in the crossover benchmarks.

use euler_core::phase3::CircuitStep;
use euler_core::{CircuitResult, EulerError};
use euler_graph::{properties, EdgeId, Graph, VertexId};

/// Finds an Euler circuit of `g` with Fleury's algorithm.
///
/// Returns one circuit per edge-bearing connected component.
///
/// # Errors
/// Returns [`EulerError::Graph`] if some vertex has odd degree.
pub fn fleury_circuit(g: &Graph) -> Result<CircuitResult, EulerError> {
    if let Some(&v) = properties::odd_vertices(g).first() {
        return Err(EulerError::Graph(euler_graph::GraphError::NotEulerian {
            vertex: v,
            degree: g.degree(v),
        }));
    }
    let mut removed = vec![false; g.num_edges() as usize];
    let mut remaining_degree: Vec<u64> = g.vertices().map(|v| g.degree(v)).collect();
    let mut result = CircuitResult::default();

    for start in g.vertices() {
        if remaining_degree[start.index()] == 0 {
            continue;
        }
        let mut circuit = Vec::new();
        let mut current = start;
        while remaining_degree[current.index()] > 0 {
            let candidates: Vec<(VertexId, EdgeId)> = g
                .neighbors(current)
                .iter()
                .copied()
                .filter(|&(_, e)| !removed[e.index()])
                .collect();
            // Prefer a non-bridge edge; take a bridge only when forced.
            let chosen = candidates
                .iter()
                .copied()
                .find(|&(_, e)| !is_bridge(g, &removed, current, e))
                .or_else(|| candidates.first().copied());
            let Some((to, edge)) = chosen else { break };
            removed[edge.index()] = true;
            remaining_degree[current.index()] -= 1;
            remaining_degree[to.index()] -= 1;
            if current == to {
                // Self-loop consumes two degree units from the same vertex,
                // but the loop above already subtracted both (same index).
            }
            circuit.push(CircuitStep { edge, from: current, to });
            current = to;
        }
        if !circuit.is_empty() {
            result.circuits.push(circuit);
        }
    }
    Ok(result)
}

/// True when removing `edge` from the remaining graph would disconnect
/// `from`'s remaining component (i.e. `edge` is a bridge of the remaining
/// graph). Determined by counting vertices reachable from `from` with and
/// without the edge.
fn is_bridge(g: &Graph, removed: &[bool], from: VertexId, edge: EdgeId) -> bool {
    let to = g.other_endpoint(edge, from);
    if to == from {
        return false; // self-loops are never bridges
    }
    let before = reachable_count(g, removed, from, None);
    let after = reachable_count(g, removed, from, Some(edge));
    after < before
}

fn reachable_count(g: &Graph, removed: &[bool], start: VertexId, skip: Option<EdgeId>) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(v) = stack.pop() {
        for &(nbr, e) in g.neighbors(v) {
            if removed[e.index()] || Some(e) == skip {
                continue;
            }
            if seen.insert(nbr) {
                stack.push(nbr);
            }
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierholzer::hierholzer_circuit;
    use euler_core::verify::verify_result;
    use euler_gen::synthetic;
    use euler_graph::builder::graph_from_edges;

    #[test]
    fn triangle_circuit() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let r = fleury_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 1);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn figure_eight() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let r = fleury_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 1);
        assert_eq!(r.total_edges(), 6);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn bridge_avoidance_produces_single_closed_trail() {
        // Two triangles joined by a pair of parallel edges (a "dumbbell" that
        // is Eulerian): Fleury must not strand itself.
        let g = graph_from_edges(&[
            (0, 1), (1, 2), (2, 0), // left triangle
            (2, 3), (2, 3),         // double bridge
            (3, 4), (4, 5), (5, 3), // right triangle
        ]);
        let r = fleury_circuit(&g).unwrap();
        assert_eq!(r.num_circuits(), 1);
        assert_eq!(r.total_edges(), 8);
        verify_result(&g, &r).unwrap();
    }

    #[test]
    fn agrees_with_hierholzer_on_edge_counts() {
        for seed in 0..3 {
            let g = synthetic::random_eulerian_connected(24, 4, 4, seed);
            let f = fleury_circuit(&g).unwrap();
            let h = hierholzer_circuit(&g).unwrap();
            assert_eq!(f.total_edges(), h.total_edges());
            assert_eq!(f.num_circuits(), h.num_circuits());
            verify_result(&g, &f).unwrap();
        }
    }

    #[test]
    fn odd_degree_rejected() {
        let g = graph_from_edges(&[(0, 1)]);
        assert!(fleury_circuit(&g).is_err());
    }

    #[test]
    fn self_loops_handled() {
        let g = graph_from_edges(&[(0, 0), (0, 1), (1, 0)]);
        let r = fleury_circuit(&g).unwrap();
        assert_eq!(r.total_edges(), 3);
        verify_result(&g, &r).unwrap();
    }
}
