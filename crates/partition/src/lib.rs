//! # euler-partition
//!
//! Graph partitioners and partition-quality statistics — the workspace's
//! substitute for the ParHIP tool the paper uses to split its input graphs.
//!
//! The Euler circuit algorithm only needs *some* vertex partition; its
//! performance depends on two qualities the paper reports in Table 1: the
//! edge-cut fraction and the vertex imbalance. Three partitioners with
//! different cut/balance trade-offs are provided, plus an optional
//! Kernighan–Lin-style boundary refinement pass:
//!
//! * [`HashPartitioner`] — assigns vertices by hashing their id. Perfectly
//!   balanced, worst-case cut; the baseline a Big Data platform would give
//!   you for free.
//! * [`LdgPartitioner`] — Linear Deterministic Greedy streaming partitioner
//!   (Stanton & Kliot): each vertex goes to the partition holding most of its
//!   already-placed neighbours, weighted by a capacity penalty. The core is
//!   a genuine one-pass stream consumer (bounded state: vertex→partition map
//!   plus load counters); the whole-graph path is a thin adapter over it.
//! * [`BfsPartitioner`] — region-growing: grows partitions from seed vertices
//!   in BFS order, producing connected, low-cut partitions on mesh-like
//!   graphs.
//! * [`refine::fm_refine`] — greedy boundary-vertex migration that reduces
//!   the edge cut while respecting a balance constraint.
//!
//! Partitioners whose algorithm can consume chunked edge batches additionally
//! implement [`StreamingPartitioner`] (hash: any order; LDG: vertex-grouped
//! streams), which is how the pipeline partitions memory-mapped `.ecsr`
//! sources without materialising a graph.

#![warn(missing_docs)]

pub mod bfs;
pub mod hash;
pub mod ldg;
pub mod refine;
pub mod stats;
pub mod traits;

pub use bfs::BfsPartitioner;
pub use hash::HashPartitioner;
pub use ldg::LdgPartitioner;
pub use refine::fm_refine;
pub use stats::PartitionQuality;
pub use traits::{Partitioner, StreamingPartitioner};
