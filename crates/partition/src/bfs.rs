//! BFS region-growing partitioner.
//!
//! Grows `k` regions simultaneously from spread-out seed vertices in
//! breadth-first order; each region stops accepting vertices when it reaches
//! the capacity `ceil(n/k)`. On mesh-like graphs (torus street grids,
//! polyhedral meshes) this produces connected partitions with low cut, which
//! matches the paper's assumption that "each partition is likely to contain
//! one or more large connected components".

use crate::traits::Partitioner;
use euler_graph::{Graph, PartitionAssignment, VertexId};
use std::collections::VecDeque;

/// BFS region-growing partitioner.
#[derive(Clone, Copy, Debug)]
pub struct BfsPartitioner {
    k: u32,
    seed: u64,
}

impl BfsPartitioner {
    /// Creates a BFS partitioner for `k` partitions.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        BfsPartitioner { k, seed: 1 }
    }

    /// Sets the seed used to choose the initial region seeds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Picks `k` seed vertices spread across the id space.
    fn seeds(&self, g: &Graph) -> Vec<VertexId> {
        let n = g.num_vertices();
        let k = self.k as u64;
        (0..k)
            .map(|i| VertexId(((i * n) / k + self.seed) % n.max(1)))
            .collect()
    }
}

impl Partitioner for BfsPartitioner {
    fn num_partitions(&self) -> u32 {
        self.k
    }

    fn partition(&self, g: &Graph) -> PartitionAssignment {
        let n = g.num_vertices() as usize;
        let k = self.k as usize;
        let capacity = n.div_ceil(k);
        let mut labels: Vec<u32> = vec![u32::MAX; n];
        let mut sizes = vec![0usize; k];
        let mut queues: Vec<VecDeque<VertexId>> = vec![VecDeque::new(); k];

        if n == 0 {
            return PartitionAssignment::from_labels(vec![], self.k).expect("empty");
        }

        for (p, s) in self.seeds(g).into_iter().enumerate() {
            if labels[s.index()] == u32::MAX {
                labels[s.index()] = p as u32;
                sizes[p] += 1;
                queues[p].push_back(s);
            }
        }

        // Round-robin BFS expansion so regions grow at similar rates.
        let mut active = true;
        while active {
            active = false;
            for p in 0..k {
                if sizes[p] >= capacity {
                    continue;
                }
                if let Some(v) = queues[p].pop_front() {
                    active = true;
                    for &(nbr, _) in g.neighbors(v) {
                        if labels[nbr.index()] == u32::MAX && sizes[p] < capacity {
                            labels[nbr.index()] = p as u32;
                            sizes[p] += 1;
                            queues[p].push_back(nbr);
                        }
                    }
                    // Re-queue v if it still has unlabelled neighbours and we hit capacity mid-scan.
                } else if !queues[p].is_empty() {
                    active = true;
                }
            }
        }

        // Any vertex not reached (disconnected, or all regions full) goes to
        // the currently smallest partition.
        for label in labels.iter_mut().take(n) {
            if *label == u32::MAX {
                let p = (0..k).min_by_key(|&p| sizes[p]).unwrap_or(0);
                *label = p as u32;
                sizes[p] += 1;
            }
        }
        PartitionAssignment::from_labels(labels, self.k).expect("labels < k")
    }

    fn name(&self) -> &'static str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::stats::PartitionQuality;
    use euler_gen::synthetic;

    #[test]
    fn covers_every_vertex() {
        let g = synthetic::torus_grid(12, 12);
        let a = BfsPartitioner::new(4).partition(&g);
        assert_eq!(a.num_vertices(), 144);
        assert_eq!(a.partition_sizes().iter().sum::<u64>(), 144);
    }

    #[test]
    fn low_cut_on_torus_vs_hash() {
        let g = synthetic::torus_grid(20, 20);
        let bfs = BfsPartitioner::new(4).partition(&g);
        let hash = HashPartitioner::new(4).partition(&g);
        let q_bfs = PartitionQuality::evaluate(&g, &bfs);
        let q_hash = PartitionQuality::evaluate(&g, &hash);
        assert!(q_bfs.cut_fraction < q_hash.cut_fraction);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)]);
        let a = BfsPartitioner::new(2).partition(&g);
        assert_eq!(a.num_vertices(), 8);
    }

    #[test]
    fn respects_capacity_reasonably() {
        let g = synthetic::torus_grid(16, 16);
        let a = BfsPartitioner::new(8).partition(&g);
        let sizes = a.partition_sizes();
        let cap = (256 / 8) as f64;
        for s in sizes {
            assert!(s as f64 <= cap * 1.5, "size {s} cap {cap}");
        }
    }

    #[test]
    fn single_partition() {
        let g = synthetic::cycle(5);
        let a = BfsPartitioner::new(1).partition(&g);
        assert!(g.vertices().all(|v| a.partition_of(v).0 == 0));
    }
}
