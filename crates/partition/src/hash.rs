//! Hash partitioner: perfectly balanced, oblivious to structure.

use crate::traits::{Partitioner, StreamingPartitioner};
use euler_graph::{
    EdgeStream, Graph, GraphEdgeStream, GraphError, PartitionAssignment, StreamOrder,
};

/// Assigns vertex `v` to partition `hash(v) % k`.
///
/// This is the default placement of most Big Data platforms and serves as the
/// "no partitioner" baseline: balance is near-perfect but the expected edge
/// cut is `(k-1)/k` of all edges, the worst case for the Euler circuit
/// algorithm's communication volume.
#[derive(Clone, Copy, Debug)]
pub struct HashPartitioner {
    k: u32,
    seed: u64,
}

impl HashPartitioner {
    /// Creates a hash partitioner for `k` partitions.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "need at least one partition");
        HashPartitioner { k, seed: 0x51_7c_c1_b7_27_22_0a_95 }
    }

    /// Uses a custom hash seed (useful to test robustness to placement).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    #[inline]
    fn hash(&self, v: u64) -> u64 {
        // splitmix64 finaliser — fast, well-distributed for sequential ids.
        let mut x = v.wrapping_add(self.seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The closed-form assignment: `hash(v) % k` for every vertex. Both the
    /// whole-graph and streaming paths end here, so they are identical by
    /// construction.
    fn assign(&self, num_vertices: u64) -> PartitionAssignment {
        let labels: Vec<u32> =
            (0..num_vertices).map(|v| (self.hash(v) % self.k as u64) as u32).collect();
        PartitionAssignment::from_labels(labels, self.k).expect("labels are always < k")
    }
}

impl Partitioner for HashPartitioner {
    fn num_partitions(&self) -> u32 {
        self.k
    }

    fn partition(&self, g: &Graph) -> PartitionAssignment {
        self.partition_stream(&mut GraphEdgeStream::new(g))
            .expect("in-memory streams cannot fail")
    }

    fn name(&self) -> &'static str {
        "hash"
    }

    fn as_streaming(&self) -> Option<&dyn StreamingPartitioner> {
        Some(self)
    }
}

impl StreamingPartitioner for HashPartitioner {
    fn num_partitions(&self) -> u32 {
        self.k
    }

    /// Placement depends on vertex ids alone, so any order works.
    fn supports(&self, _order: StreamOrder) -> bool {
        true
    }

    fn partition_stream(
        &self,
        stream: &mut dyn EdgeStream,
    ) -> Result<PartitionAssignment, GraphError> {
        // A known count needs no pass at all; text parses discover it.
        let n = match stream.num_vertices() {
            Some(n) => n,
            None => stream.stream(&mut |_| {})?.num_vertices,
        };
        Ok(self.assign(n))
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::builder::graph_from_edges;
    use euler_graph::PartitionedGraph;

    #[test]
    fn covers_every_vertex() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let a = HashPartitioner::new(3).partition(&g);
        assert_eq!(a.num_vertices(), g.num_vertices());
        assert_eq!(a.num_partitions(), 3);
    }

    #[test]
    fn balance_is_good_on_large_inputs() {
        let mut b = euler_graph::GraphBuilder::with_vertices(10_000);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let a = HashPartitioner::new(8).partition(&g);
        // Imbalance well under 10% for 10k vertices over 8 parts.
        assert!(a.imbalance() < 0.10, "imbalance {}", a.imbalance());
    }

    #[test]
    fn single_partition_has_no_cut() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let a = HashPartitioner::new(1).partition(&g);
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        assert_eq!(pg.cut_edges(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let a1 = HashPartitioner::new(2).partition(&g);
        let a2 = HashPartitioner::new(2).partition(&g);
        for v in g.vertices() {
            assert_eq!(a1.partition_of(v), a2.partition_of(v));
        }
    }

    #[test]
    fn different_seed_changes_placement() {
        let mut b = euler_graph::GraphBuilder::with_vertices(1000);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let a1 = HashPartitioner::new(4).partition(&g);
        let a2 = HashPartitioner::new(4).with_seed(7).partition(&g);
        let moved = g.vertices().filter(|&v| a1.partition_of(v) != a2.partition_of(v)).count();
        assert!(moved > 0);
    }
}
