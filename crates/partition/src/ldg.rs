//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! Stanton & Kliot's streaming heuristic: vertices are considered in a single
//! pass; each vertex is placed on the partition that already holds the most
//! of its neighbours, discounted by a load penalty `(1 - |P|/C)` where `C` is
//! the per-partition capacity. It produces balanced partitions with much
//! lower cut than hashing on power-law graphs and is the default partitioner
//! for the paper-scale experiments (playing the role of ParHIP).
//!
//! The algorithm is *genuinely* streaming here: the core
//! ([`StreamingPartitioner::partition_stream`]) consumes vertex-grouped edge
//! batches from any [`EdgeStream`] — a resident graph's adjacency or the
//! mapped sections of a binary `.ecsr` file — and keeps only the
//! vertex→partition map plus per-partition load counters. The whole-graph
//! [`Partitioner`] impl is a thin adapter that streams the graph's own
//! adjacency, so both paths produce identical assignments by construction.
//! Placement follows the stream (ascending vertex id); in that order a
//! vertex's placed neighbours are exactly its lower-id neighbours, which is
//! why one pass suffices. An optional BFS placement order
//! ([`with_bfs_order`](LdgPartitioner::with_bfs_order)) is kept for
//! mesh-locality experiments; it needs random access to the graph and
//! therefore has no streaming view.

use crate::traits::{Partitioner, StreamingPartitioner};
use euler_graph::{
    EdgeStream, Graph, GraphEdgeStream, GraphError, PartitionAssignment, StreamOrder, VertexId,
};

/// LDG streaming partitioner.
#[derive(Clone, Copy, Debug)]
pub struct LdgPartitioner {
    k: u32,
    /// Capacity slack: per-partition capacity is `ceil(n/k) * (1 + slack)`.
    slack: f64,
    /// If true, vertices are placed in BFS order from vertex 0 instead of
    /// stream (id) order — a whole-graph-only variant.
    bfs_order: bool,
}

/// Bounded state of one streaming LDG pass: the vertex→partition map, the
/// per-partition load counters and the current vertex's neighbour counts —
/// nothing proportional to the edge count.
struct LdgState {
    k: usize,
    capacity: f64,
    labels: Vec<u32>,
    sizes: Vec<f64>,
    neighbour_counts: Vec<u64>,
    /// Vertex whose group is currently being accumulated, if any.
    group: Option<u64>,
    /// All vertices `< placed_upto` have been placed.
    placed_upto: u64,
}

const UNPLACED: u32 = u32::MAX;

impl LdgState {
    fn new(n: u64, k: usize, slack: f64) -> Self {
        let capacity = ((n as f64 / k as f64).ceil() * (1.0 + slack)).ceil().max(1.0);
        LdgState {
            k,
            capacity,
            labels: vec![UNPLACED; n as usize],
            sizes: vec![0.0; k],
            neighbour_counts: vec![0; k],
            group: None,
            placed_upto: 0,
        }
    }

    /// Scores and places one vertex using the accumulated neighbour counts
    /// (all zero for isolated vertices).
    fn place(&mut self, v: u64) {
        // Score: neighbours already in partition, discounted by fullness.
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..self.k {
            let penalty = 1.0 - self.sizes[p] / self.capacity;
            let score = self.neighbour_counts[p] as f64 * penalty.max(0.0)
                // Tie-break toward the emptiest partition so isolated
                // vertices spread out.
                + penalty * 1e-6;
            if score > best_score {
                best_score = score;
                best = p;
            }
        }
        self.labels[v as usize] = best as u32;
        self.sizes[best] += 1.0;
        self.neighbour_counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Finalises the group being accumulated and places every vertex up to
    /// (excluding) `upto` — the edgeless vertices the stream never mentions.
    fn place_through(&mut self, upto: u64) {
        if let Some(g) = self.group.take() {
            self.place(g);
            self.placed_upto = g + 1;
        }
        while self.placed_upto < upto {
            self.place(self.placed_upto);
            self.placed_upto += 1;
        }
    }

    /// Consumes one vertex-grouped half-edge `(u, v)`.
    fn feed(&mut self, u: u64, v: u64) {
        if self.group != Some(u) {
            self.place_through(u);
            self.group = Some(u);
        }
        // Only already-placed neighbours count — in ascending-id placement
        // these are exactly the lower-id ones, so one pass is enough.
        let l = self.labels[v as usize];
        if l != UNPLACED {
            self.neighbour_counts[l as usize] += 1;
        }
    }

    fn finish(mut self, k: u32) -> PartitionAssignment {
        let n = self.labels.len() as u64;
        self.place_through(n);
        PartitionAssignment::from_labels(self.labels, k).expect("all labels assigned < k")
    }
}

impl LdgPartitioner {
    /// Creates an LDG partitioner for `k` partitions with 5 % capacity slack,
    /// placing vertices in stream (ascending id) order.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        LdgPartitioner { k, slack: 0.05, bfs_order: false }
    }

    /// Sets the capacity slack (0.05 = 5 %).
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack.max(0.0);
        self
    }

    /// Chooses BFS placement order from vertex 0 (better locality than id
    /// order on some generator outputs). BFS needs random access to the
    /// graph, so this variant partitions resident graphs only —
    /// [`as_streaming`](Partitioner::as_streaming) returns `None`.
    pub fn with_bfs_order(mut self) -> Self {
        self.bfs_order = true;
        self
    }

    /// Chooses stream (ascending id) placement order — the default.
    pub fn with_id_order(mut self) -> Self {
        self.bfs_order = false;
        self
    }

    /// The whole-graph BFS-order variant: identical scoring, but vertices
    /// are placed in BFS discovery order and may look at all (placed)
    /// neighbours, which requires the resident adjacency.
    fn partition_bfs(&self, g: &Graph) -> PartitionAssignment {
        let n = g.num_vertices() as usize;
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            queue.push_back(VertexId(start as u64));
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &(nbr, _) in g.neighbors(v) {
                    if !visited[nbr.index()] {
                        visited[nbr.index()] = true;
                        queue.push_back(nbr);
                    }
                }
            }
        }
        let mut state = LdgState::new(g.num_vertices(), self.k as usize, self.slack);
        for v in order {
            for &(nbr, _) in g.neighbors(v) {
                let l = state.labels[nbr.index()];
                if l != UNPLACED {
                    state.neighbour_counts[l as usize] += 1;
                }
            }
            state.place(v.0);
        }
        PartitionAssignment::from_labels(state.labels, self.k).expect("all labels assigned < k")
    }
}

impl Partitioner for LdgPartitioner {
    fn num_partitions(&self) -> u32 {
        self.k
    }

    fn partition(&self, g: &Graph) -> PartitionAssignment {
        if self.bfs_order {
            return self.partition_bfs(g);
        }
        self.partition_stream(&mut GraphEdgeStream::new(g))
            .expect("in-memory streams cannot fail")
    }

    fn name(&self) -> &'static str {
        "ldg"
    }

    fn as_streaming(&self) -> Option<&dyn StreamingPartitioner> {
        if self.bfs_order {
            None
        } else {
            Some(self)
        }
    }
}

impl StreamingPartitioner for LdgPartitioner {
    fn num_partitions(&self) -> u32 {
        self.k
    }

    /// Greedy placement needs each vertex's full neighbour group at
    /// placement time, so only vertex-grouped streams qualify.
    fn supports(&self, order: StreamOrder) -> bool {
        order == StreamOrder::VertexGrouped
    }

    fn partition_stream(
        &self,
        stream: &mut dyn EdgeStream,
    ) -> Result<PartitionAssignment, GraphError> {
        if stream.order() != StreamOrder::VertexGrouped {
            return Err(GraphError::UnsupportedStream {
                consumer: "ldg".into(),
                message: format!(
                    "needs {} (got {})",
                    StreamOrder::VertexGrouped,
                    stream.order()
                ),
            });
        }
        let n = stream.num_vertices().ok_or_else(|| GraphError::UnsupportedStream {
            consumer: "ldg".into(),
            message: "needs the vertex count before streaming (capacity C = ⌈n/k⌉)".into(),
        })?;
        let mut state = LdgState::new(n, self.k as usize, self.slack);
        stream.stream(&mut |batch| {
            for &(u, v) in batch {
                state.feed(u, v);
            }
        })?;
        Ok(state.finish(self.k))
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::stats::PartitionQuality;
    use euler_gen::synthetic;
    use euler_graph::{write_csr_file, CsrFile, CsrFileEdgeStream};

    #[test]
    fn covers_every_vertex_with_valid_labels() {
        let g = synthetic::torus_grid(10, 10);
        let a = LdgPartitioner::new(4).partition(&g);
        assert_eq!(a.num_vertices(), g.num_vertices());
        for v in g.vertices() {
            assert!(a.partition_of(v).0 < 4);
        }
    }

    #[test]
    fn ldg_beats_hash_on_cut_for_mesh_graphs() {
        let g = synthetic::torus_grid(24, 24);
        let ldg = LdgPartitioner::new(4).partition(&g);
        let hash = HashPartitioner::new(4).partition(&g);
        let q_ldg = PartitionQuality::evaluate(&g, &ldg);
        let q_hash = PartitionQuality::evaluate(&g, &hash);
        assert!(
            q_ldg.cut_fraction < q_hash.cut_fraction,
            "ldg {} vs hash {}",
            q_ldg.cut_fraction,
            q_hash.cut_fraction
        );
    }

    #[test]
    fn bfs_order_also_beats_hash_on_cut() {
        let g = synthetic::torus_grid(24, 24);
        let ldg = LdgPartitioner::new(4).with_bfs_order().partition(&g);
        let hash = HashPartitioner::new(4).partition(&g);
        let q_ldg = PartitionQuality::evaluate(&g, &ldg);
        let q_hash = PartitionQuality::evaluate(&g, &hash);
        assert!(q_ldg.cut_fraction < q_hash.cut_fraction);
    }

    #[test]
    fn balance_respects_slack_roughly() {
        let g = synthetic::torus_grid(20, 20);
        let a = LdgPartitioner::new(5).partition(&g);
        let sizes = a.partition_sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let ideal = g.num_vertices() as f64 / 5.0;
        assert!(max <= ideal * 1.40, "max {max} ideal {ideal}");
    }

    #[test]
    fn id_order_variant_also_covers() {
        let g = synthetic::circulant(60, &[1, 2]);
        let a = LdgPartitioner::new(3).with_id_order().partition(&g);
        assert_eq!(a.num_vertices(), 60);
    }

    #[test]
    fn single_partition_trivial() {
        let g = synthetic::cycle(10);
        let a = LdgPartitioner::new(1).partition(&g);
        assert!(g.vertices().all(|v| a.partition_of(v).0 == 0));
    }

    #[test]
    fn deterministic() {
        let g = synthetic::random_eulerian_connected(100, 10, 5, 3);
        let a1 = LdgPartitioner::new(4).partition(&g);
        let a2 = LdgPartitioner::new(4).partition(&g);
        for v in g.vertices() {
            assert_eq!(a1.partition_of(v), a2.partition_of(v));
        }
    }

    #[test]
    fn streaming_a_packed_csr_matches_the_whole_graph_path() {
        let g = synthetic::random_eulerian_connected(150, 20, 6, 11);
        let path = std::env::temp_dir().join("euler_partition_ldg_stream.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        let ldg = LdgPartitioner::new(5);
        let from_graph = ldg.partition(&g);
        // Tiny batches force group-spanning boundaries; placement must not
        // depend on delivery granularity.
        for batch in [1usize, 7, 1 << 16] {
            let mut stream = CsrFileEdgeStream::new(&csr).with_batch_entries(batch);
            let from_csr = ldg.partition_stream(&mut stream).unwrap();
            for v in g.vertices() {
                assert_eq!(from_csr.partition_of(v), from_graph.partition_of(v), "batch {batch}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn isolated_tail_vertices_are_placed() {
        // Vertices 4..8 have no edges and never appear in the stream.
        let mut b = euler_graph::GraphBuilder::with_vertices(8);
        b.extend_edges([(0, 1), (1, 2), (2, 0), (3, 0), (0, 3)]);
        let g = b.build().unwrap();
        let a = LdgPartitioner::new(3).partition(&g);
        assert_eq!(a.num_vertices(), 8);
        for v in g.vertices() {
            assert!(a.partition_of(v).0 < 3);
        }
    }

    #[test]
    fn rejects_edge_id_ordered_streams_with_a_typed_error() {
        let g = synthetic::cycle(6);
        let dir = std::env::temp_dir();
        let path = dir.join("euler_partition_ldg_order.el");
        euler_graph::io::write_edge_list_file(&g, &path).unwrap();
        let src = euler_graph::EdgeListFileSource::new(&path);
        let mut stream = euler_graph::GraphSource::edge_stream(&src).unwrap();
        let ldg = LdgPartitioner::new(2);
        assert!(!StreamingPartitioner::supports(&ldg, stream.order()));
        let err = ldg.partition_stream(stream.as_mut()).unwrap_err();
        assert!(matches!(err, euler_graph::GraphError::UnsupportedStream { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bfs_variant_has_no_streaming_view() {
        let ldg = LdgPartitioner::new(2);
        assert!(Partitioner::as_streaming(&ldg).is_some());
        assert!(Partitioner::as_streaming(&ldg.with_bfs_order()).is_none());
        assert!(Partitioner::as_streaming(&ldg.with_bfs_order().with_id_order()).is_some());
    }
}
