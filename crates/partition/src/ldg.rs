//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! Stanton & Kliot's streaming heuristic: vertices are considered in a single
//! pass; each vertex is placed on the partition that already holds the most
//! of its neighbours, discounted by a load penalty `(1 - |P|/C)` where `C` is
//! the per-partition capacity. It produces balanced partitions with much
//! lower cut than hashing on power-law graphs and is the default partitioner
//! for the paper-scale experiments (playing the role of ParHIP).

use crate::traits::Partitioner;
use euler_graph::{Graph, PartitionAssignment, VertexId};

/// LDG streaming partitioner.
#[derive(Clone, Copy, Debug)]
pub struct LdgPartitioner {
    k: u32,
    /// Capacity slack: per-partition capacity is `ceil(n/k) * (1 + slack)`.
    slack: f64,
    /// If true, vertices are streamed in BFS order from vertex 0 (better
    /// locality than id order on generator outputs).
    bfs_order: bool,
}

impl LdgPartitioner {
    /// Creates an LDG partitioner for `k` partitions with 5 % capacity slack
    /// and BFS streaming order.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        LdgPartitioner { k, slack: 0.05, bfs_order: true }
    }

    /// Sets the capacity slack (0.05 = 5 %).
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack.max(0.0);
        self
    }

    /// Chooses id-order streaming instead of BFS order.
    pub fn with_id_order(mut self) -> Self {
        self.bfs_order = false;
        self
    }

    fn stream_order(&self, g: &Graph) -> Vec<VertexId> {
        if !self.bfs_order {
            return g.vertices().collect();
        }
        let n = g.num_vertices() as usize;
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            queue.push_back(VertexId(start as u64));
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &(nbr, _) in g.neighbors(v) {
                    if !visited[nbr.index()] {
                        visited[nbr.index()] = true;
                        queue.push_back(nbr);
                    }
                }
            }
        }
        order
    }
}

impl Partitioner for LdgPartitioner {
    fn num_partitions(&self) -> u32 {
        self.k
    }

    fn partition(&self, g: &Graph) -> PartitionAssignment {
        let n = g.num_vertices();
        let k = self.k as usize;
        let capacity = ((n as f64 / k as f64).ceil() * (1.0 + self.slack)).ceil().max(1.0);
        let mut labels: Vec<u32> = vec![u32::MAX; n as usize];
        let mut sizes: Vec<f64> = vec![0.0; k];
        let mut neighbour_counts: Vec<u64> = vec![0; k];

        for v in self.stream_order(g) {
            neighbour_counts.iter_mut().for_each(|c| *c = 0);
            for &(nbr, _) in g.neighbors(v) {
                let l = labels[nbr.index()];
                if l != u32::MAX {
                    neighbour_counts[l as usize] += 1;
                }
            }
            // Score: neighbours already in partition, discounted by fullness.
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..k {
                let penalty = 1.0 - sizes[p] / capacity;
                let score = neighbour_counts[p] as f64 * penalty.max(0.0)
                    // Tie-break toward the emptiest partition so isolated
                    // vertices spread out.
                    + penalty * 1e-6;
                if score > best_score {
                    best_score = score;
                    best = p;
                }
            }
            labels[v.index()] = best as u32;
            sizes[best] += 1.0;
        }
        PartitionAssignment::from_labels(labels, self.k).expect("all labels assigned < k")
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::stats::PartitionQuality;
    use euler_gen::synthetic;

    #[test]
    fn covers_every_vertex_with_valid_labels() {
        let g = synthetic::torus_grid(10, 10);
        let a = LdgPartitioner::new(4).partition(&g);
        assert_eq!(a.num_vertices(), g.num_vertices());
        for v in g.vertices() {
            assert!(a.partition_of(v).0 < 4);
        }
    }

    #[test]
    fn ldg_beats_hash_on_cut_for_mesh_graphs() {
        let g = synthetic::torus_grid(24, 24);
        let ldg = LdgPartitioner::new(4).partition(&g);
        let hash = HashPartitioner::new(4).partition(&g);
        let q_ldg = PartitionQuality::evaluate(&g, &ldg);
        let q_hash = PartitionQuality::evaluate(&g, &hash);
        assert!(
            q_ldg.cut_fraction < q_hash.cut_fraction,
            "ldg {} vs hash {}",
            q_ldg.cut_fraction,
            q_hash.cut_fraction
        );
    }

    #[test]
    fn balance_respects_slack_roughly() {
        let g = synthetic::torus_grid(20, 20);
        let a = LdgPartitioner::new(5).partition(&g);
        let sizes = a.partition_sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let ideal = g.num_vertices() as f64 / 5.0;
        assert!(max <= ideal * 1.40, "max {max} ideal {ideal}");
    }

    #[test]
    fn id_order_variant_also_covers() {
        let g = synthetic::circulant(60, &[1, 2]);
        let a = LdgPartitioner::new(3).with_id_order().partition(&g);
        assert_eq!(a.num_vertices(), 60);
    }

    #[test]
    fn single_partition_trivial() {
        let g = synthetic::cycle(10);
        let a = LdgPartitioner::new(1).partition(&g);
        assert!(g.vertices().all(|v| a.partition_of(v).0 == 0));
    }

    #[test]
    fn deterministic() {
        let g = synthetic::random_eulerian_connected(100, 10, 5, 3);
        let a1 = LdgPartitioner::new(4).partition(&g);
        let a2 = LdgPartitioner::new(4).partition(&g);
        for v in g.vertices() {
            assert_eq!(a1.partition_of(v), a2.partition_of(v));
        }
    }
}
