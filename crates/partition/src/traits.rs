//! The [`Partitioner`] trait implemented by every partitioning strategy.

use euler_graph::{Graph, PartitionAssignment};

/// A strategy that assigns every vertex of a graph to one of `k` partitions.
pub trait Partitioner {
    /// Number of partitions this partitioner produces.
    fn num_partitions(&self) -> u32;

    /// Computes a partition assignment for `g`.
    ///
    /// Implementations must return an assignment covering every vertex of `g`
    /// with labels in `0..num_partitions()`.
    fn partition(&self, g: &Graph) -> PartitionAssignment;

    /// Human-readable name used in reports and benches.
    fn name(&self) -> &'static str {
        "partitioner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::builder::graph_from_edges;
    use euler_graph::PartitionId;

    struct RoundRobin(u32);

    impl Partitioner for RoundRobin {
        fn num_partitions(&self) -> u32 {
            self.0
        }
        fn partition(&self, g: &Graph) -> PartitionAssignment {
            let labels = (0..g.num_vertices()).map(|v| (v % self.0 as u64) as u32).collect();
            PartitionAssignment::from_labels(labels, self.0).unwrap()
        }
        fn name(&self) -> &'static str {
            "round-robin"
        }
    }

    #[test]
    fn trait_object_usable() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let p: Box<dyn Partitioner> = Box::new(RoundRobin(2));
        let a = p.partition(&g);
        assert_eq!(a.num_partitions(), 2);
        assert_eq!(a.partition_of(euler_graph::VertexId(2)), PartitionId(0));
        assert_eq!(p.name(), "round-robin");
    }
}
