//! The [`Partitioner`] and [`StreamingPartitioner`] traits implemented by
//! every partitioning strategy.

use euler_graph::{EdgeStream, Graph, GraphError, PartitionAssignment, StreamOrder};

/// A strategy that assigns every vertex of a graph to one of `k` partitions.
pub trait Partitioner {
    /// Number of partitions this partitioner produces.
    fn num_partitions(&self) -> u32;

    /// Computes a partition assignment for `g`.
    ///
    /// Implementations must return an assignment covering every vertex of `g`
    /// with labels in `0..num_partitions()`.
    fn partition(&self, g: &Graph) -> PartitionAssignment;

    /// Human-readable name used in reports and benches.
    fn name(&self) -> &'static str {
        "partitioner"
    }

    /// This partitioner's streaming view, if its algorithm can consume
    /// chunked edge batches instead of a resident [`Graph`]. The pipeline
    /// uses it to partition memory-mapped `.ecsr` sources without ever
    /// materialising the graph. Default: `None` (whole-graph only).
    fn as_streaming(&self) -> Option<&dyn StreamingPartitioner> {
        None
    }
}

/// A partitioning strategy that consumes chunked edge batches in bounded
/// memory.
///
/// A streaming partitioner never sees a [`Graph`]: it is handed an
/// [`EdgeStream`] and keeps only its own state — for LDG, a vertex→partition
/// map plus per-partition load counters. Implementations declare which
/// [`StreamOrder`]s they can consume via
/// [`supports`](StreamingPartitioner::supports); handing them an unsupported
/// stream is a typed [`GraphError::UnsupportedStream`], not a wrong answer.
///
/// The whole-graph [`Partitioner`] impls of [`crate::HashPartitioner`] and
/// [`crate::LdgPartitioner`] are thin adapters over this trait (they stream
/// the resident graph's adjacency), so the streaming and in-memory paths
/// produce identical assignments by construction.
pub trait StreamingPartitioner {
    /// Number of partitions this partitioner produces.
    fn num_partitions(&self) -> u32;

    /// Whether this partitioner can consume a stream delivering `order`.
    fn supports(&self, order: StreamOrder) -> bool;

    /// Computes a partition assignment from one pass over `stream`.
    ///
    /// # Errors
    /// [`GraphError::UnsupportedStream`] when the stream's order or metadata
    /// cannot satisfy this partitioner; producer-side I/O or parse errors
    /// are passed through.
    fn partition_stream(
        &self,
        stream: &mut dyn EdgeStream,
    ) -> Result<PartitionAssignment, GraphError>;

    /// Human-readable name used in reports and benches.
    fn name(&self) -> &'static str {
        "streaming-partitioner"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::builder::graph_from_edges;
    use euler_graph::PartitionId;

    struct RoundRobin(u32);

    impl Partitioner for RoundRobin {
        fn num_partitions(&self) -> u32 {
            self.0
        }
        fn partition(&self, g: &Graph) -> PartitionAssignment {
            let labels = (0..g.num_vertices()).map(|v| (v % self.0 as u64) as u32).collect();
            PartitionAssignment::from_labels(labels, self.0).unwrap()
        }
        fn name(&self) -> &'static str {
            "round-robin"
        }
    }

    #[test]
    fn trait_object_usable() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let p: Box<dyn Partitioner> = Box::new(RoundRobin(2));
        let a = p.partition(&g);
        assert_eq!(a.num_partitions(), 2);
        assert_eq!(a.partition_of(euler_graph::VertexId(2)), PartitionId(0));
        assert_eq!(p.name(), "round-robin");
        // Streaming is opt-in; plain whole-graph partitioners default out.
        assert!(p.as_streaming().is_none());
    }
}
