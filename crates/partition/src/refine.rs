//! Greedy boundary refinement (Fiduccia–Mattheyses style).
//!
//! Takes an existing assignment and repeatedly moves boundary vertices to the
//! neighbouring partition where they have the highest gain (reduction in cut
//! edges), subject to a balance constraint. This is the "refinement" half of
//! multilevel partitioners like ParHIP; combined with [`crate::LdgPartitioner`]
//! or [`crate::BfsPartitioner`] it closes most of the gap to a real multilevel
//! tool for the purposes of the Table-1 inputs.

use euler_graph::{Graph, PartitionAssignment, VertexId};

/// Options for [`fm_refine`].
#[derive(Clone, Copy, Debug)]
pub struct RefineOptions {
    /// Maximum number of full passes over the boundary vertices.
    pub max_passes: usize,
    /// Maximum allowed partition size as a multiple of the ideal `n/k`.
    pub balance_factor: f64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions { max_passes: 4, balance_factor: 1.10 }
    }
}

/// Refines `assignment` in place-semantics (returns a new assignment) by
/// greedily moving boundary vertices to reduce the edge cut. Returns the
/// refined assignment and the number of vertices moved.
pub fn fm_refine(g: &Graph, assignment: &PartitionAssignment, opts: RefineOptions) -> (PartitionAssignment, u64) {
    let k = assignment.num_partitions() as usize;
    let n = g.num_vertices() as usize;
    let mut labels: Vec<u32> = (0..n).map(|v| assignment.partition_of(VertexId(v as u64)).0).collect();
    let mut sizes: Vec<u64> = assignment.partition_sizes();
    let max_size = ((n as f64 / k as f64) * opts.balance_factor).ceil() as u64;
    let mut moved_total = 0u64;

    for _ in 0..opts.max_passes {
        let mut moved_this_pass = 0u64;
        for v in 0..n {
            let vid = VertexId(v as u64);
            let current = labels[v] as usize;
            // Count neighbours per partition.
            let mut counts = vec![0i64; k];
            for &(nbr, _) in g.neighbors(vid) {
                counts[labels[nbr.index()] as usize] += 1;
            }
            let internal = counts[current];
            // Best alternative partition by gain.
            let mut best_p = current;
            let mut best_gain = 0i64;
            for (p, &c) in counts.iter().enumerate() {
                if p == current || sizes[p] + 1 > max_size {
                    continue;
                }
                let gain = c - internal;
                if gain > best_gain {
                    best_gain = gain;
                    best_p = p;
                }
            }
            if best_p != current && best_gain > 0 {
                labels[v] = best_p as u32;
                sizes[current] -= 1;
                sizes[best_p] += 1;
                moved_this_pass += 1;
            }
        }
        moved_total += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    let refined = PartitionAssignment::from_labels(labels, assignment.num_partitions())
        .expect("labels unchanged in range");
    (refined, moved_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::stats::PartitionQuality;
    use crate::traits::Partitioner;
    use euler_gen::synthetic;

    #[test]
    fn refinement_never_increases_cut() {
        let g = synthetic::torus_grid(16, 16);
        let a = HashPartitioner::new(4).partition(&g);
        let before = PartitionQuality::evaluate(&g, &a);
        let (refined, _) = fm_refine(&g, &a, RefineOptions::default());
        let after = PartitionQuality::evaluate(&g, &refined);
        assert!(after.cut_edges <= before.cut_edges, "{} > {}", after.cut_edges, before.cut_edges);
    }

    #[test]
    fn refinement_improves_hash_partition_substantially() {
        let g = synthetic::torus_grid(20, 20);
        let a = HashPartitioner::new(2).partition(&g);
        let before = PartitionQuality::evaluate(&g, &a);
        let (refined, moved) = fm_refine(&g, &a, RefineOptions::default());
        let after = PartitionQuality::evaluate(&g, &refined);
        assert!(moved > 0);
        assert!(after.cut_fraction < before.cut_fraction * 0.9, "before {} after {}", before.cut_fraction, after.cut_fraction);
    }

    #[test]
    fn balance_constraint_respected() {
        let g = synthetic::torus_grid(12, 12);
        let a = HashPartitioner::new(4).partition(&g);
        let opts = RefineOptions { max_passes: 8, balance_factor: 1.10 };
        let (refined, _) = fm_refine(&g, &a, opts);
        let max = *refined.partition_sizes().iter().max().unwrap() as f64;
        let ideal = g.num_vertices() as f64 / 4.0;
        assert!(max <= (ideal * 1.10).ceil() + 1.0);
    }

    #[test]
    fn already_optimal_assignment_unchanged() {
        // Two disjoint triangles, each its own partition: cut is already 0.
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let (refined, moved) = fm_refine(&g, &a, RefineOptions::default());
        assert_eq!(moved, 0);
        let q = PartitionQuality::evaluate(&g, &refined);
        assert_eq!(q.cut_edges, 0);
    }
}
