//! Partition-quality statistics (the columns of Table 1).

use euler_graph::{Graph, PartitionAssignment, PartitionedGraph};
use serde::{Deserialize, Serialize};

/// Quality metrics of a partition assignment, matching the characteristics the
/// paper reports for its inputs in Table 1.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct PartitionQuality {
    /// Number of vertices `|V|`.
    pub num_vertices: u64,
    /// Number of undirected edges `|E|` (the paper lists 2× this as the
    /// bi-directed count).
    pub num_edges: u64,
    /// Number of partitions `n`.
    pub num_partitions: u32,
    /// Total boundary vertices `Σ|B_i|`.
    pub boundary_vertices: u64,
    /// Number of cut (remote, undirected) edges.
    pub cut_edges: u64,
    /// Cut fraction `Σ|R_i| / |E|` (equals cut edges / undirected edges).
    pub cut_fraction: f64,
    /// Peak vertex imbalance `max_i |(|V| - n·|V_i|)/|V||`.
    pub imbalance: f64,
}

impl PartitionQuality {
    /// Evaluates the quality of `assignment` over `g`.
    pub fn evaluate(g: &Graph, assignment: &PartitionAssignment) -> Self {
        let pg = PartitionedGraph::from_assignment(g, assignment)
            .expect("assignment covers the graph");
        Self::of_partitioned(&pg, assignment)
    }

    /// Evaluates the quality of an already-materialised partitioned graph.
    pub fn of_partitioned(pg: &PartitionedGraph, assignment: &PartitionAssignment) -> Self {
        PartitionQuality {
            num_vertices: pg.num_vertices(),
            num_edges: pg.num_edges(),
            num_partitions: pg.num_partitions(),
            boundary_vertices: pg.total_boundary_vertices(),
            cut_edges: pg.cut_edges(),
            cut_fraction: pg.cut_fraction(),
            imbalance: assignment.imbalance(),
        }
    }

    /// Bi-directed edge count, as reported in Table 1 (`2 |E|`).
    pub fn bidirected_edges(&self) -> u64 {
        2 * self.num_edges
    }

    /// Renders the metrics as a Table-1-style row:
    /// `name |V| |E| Σ|B_i| parts Σ|R_i|/|E|% |V_i| imbal%`.
    pub fn table1_row(&self, name: &str) -> Vec<String> {
        vec![
            name.to_string(),
            format!("{}", self.num_vertices),
            format!("{}", self.bidirected_edges()),
            format!("{}", self.boundary_vertices),
            format!("{}", self.num_partitions),
            format!("{:.0}%", self.cut_fraction * 100.0),
            format!("{:.0}%", self.imbalance * 100.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::ldg::LdgPartitioner;
    use crate::traits::Partitioner;
    use euler_gen::synthetic;
    use euler_graph::builder::graph_from_edges;

    #[test]
    fn quality_of_two_triangles_split_cleanly() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let q = PartitionQuality::evaluate(&g, &a);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.boundary_vertices, 0);
        assert_eq!(q.cut_fraction, 0.0);
        assert_eq!(q.imbalance, 0.0);
        assert_eq!(q.bidirected_edges(), 12);
    }

    #[test]
    fn quality_reflects_cut_edges() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0, 0, 1, 1], 2).unwrap();
        let q = PartitionQuality::evaluate(&g, &a);
        assert_eq!(q.cut_edges, 2); // edges 1-2 and 3-0
        assert!((q.cut_fraction - 0.5).abs() < 1e-12);
        assert_eq!(q.boundary_vertices, 4);
    }

    #[test]
    fn table1_row_has_seven_columns() {
        let g = synthetic::torus_grid(8, 8);
        let a = LdgPartitioner::new(4).partition(&g);
        let q = PartitionQuality::evaluate(&g, &a);
        let row = q.table1_row("G_test/P4");
        assert_eq!(row.len(), 7);
        assert_eq!(row[0], "G_test/P4");
        assert!(row[5].ends_with('%'));
    }

    #[test]
    fn paper_trend_more_partitions_more_cut() {
        // Table 1: cut fraction grows with partition count for the same family.
        let g = euler_gen::configs::GraphConfig::by_name("G40/P4").unwrap().generate(-8).0;
        let q2 = PartitionQuality::evaluate(&g, &HashPartitioner::new(2).partition(&g));
        let q8 = PartitionQuality::evaluate(&g, &HashPartitioner::new(8).partition(&g));
        assert!(q8.cut_fraction > q2.cut_fraction);
    }
}
