//! The rule engine: five deny-by-default rules over one token stream, plus
//! per-site suppression pragmas.
//!
//! Every rule is grounded in an existing workspace contract (see
//! `docs/LINTS.md` for the history):
//!
//! * **R1 `unsafe-needs-safety`** — every `unsafe` is justified by a
//!   `// SAFETY:` comment immediately above it (or above the statement it
//!   opens).
//! * **R2 `no-panic-in-decode`** — `unwrap`/`expect`/`panic!`-family macros
//!   and direct slice indexing are forbidden in the configured wire-facing
//!   decode modules: garbage bytes must become typed errors, never panics.
//! * **R3 `atomic-ordering-allowlist`** — naming an atomic `Ordering` at all
//!   requires an allowlist entry for the file; the named ordering must match.
//! * **R4 `no-wall-clock-in-kernels`** — `Instant`/`SystemTime` are banned in
//!   deterministic kernel modules (bit-identical output is a tested
//!   invariant; a wall-clock read is the first step towards breaking it).
//! * **R5 `shim-surface-guard`** — `use`/`extern crate` roots must be the
//!   standard library, a workspace crate, a vendored shim, or a local
//!   module: the offline-build constraint, mechanically enforced.
//!
//! Suppression: `// lint:allow(<rule>): <reason>` on the offending line or
//! the line above. The reason is mandatory; a reason-less or malformed
//! pragma is itself a finding (rule `pragma`), and so is naming an unknown
//! rule — a typo must not become a silent no-op.

use crate::config::Config;
use crate::report::{Finding, Rule};
use crate::scan::{scan, Token, TokenKind};
use std::collections::BTreeSet;

/// Atomic `Ordering` variant names (R3 matches them bare or path-qualified,
/// so both `Ordering::SeqCst` and an imported `SeqCst` are caught).
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Crate roots that are always importable.
const BUILTIN_ROOTS: [&str; 7] = ["std", "core", "alloc", "crate", "self", "super", "proc_macro"];

/// Keywords that may legitimately precede a `[` without it being an index
/// expression (`let [a, b] = …`, `&mut [0u8; 4]`, `for w in [..]`, …).
const NON_INDEX_KEYWORDS: [&str; 30] = [
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "true",
];

/// Cross-file context for R5: the import surface a file may draw from.
#[derive(Clone, Debug, Default)]
pub struct ImportSurface {
    /// Underscore-normalised names of every workspace member (crates, shims
    /// and the facade), derived from the member manifests, so adding a real
    /// external dependency cannot sneak past the lint unnoticed.
    pub workspace_crates: BTreeSet<String>,
    /// `mod` names declared anywhere in the *same* member (uniform paths let
    /// `use stats::…` resolve to a local module).
    pub local_mods: BTreeSet<String>,
}

/// A parsed per-site suppression.
struct Pragma {
    rules: Vec<Rule>,
    /// Lines the pragma comment itself covers.
    from_line: u32,
    to_line: u32,
    /// Line of the next code token — what an above-the-line pragma targets.
    target_line: u32,
}

/// Everything derived from one file's tokens before rules run.
pub struct FileAnalysis<'a> {
    src: &'a [u8],
    rel: &'a str,
    toks: Vec<Token>,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` item.
    in_test: Vec<bool>,
    /// Named-function body spans as token-index ranges.
    fn_frames: Vec<(String, usize, usize)>,
    pragmas: Vec<Pragma>,
    pragma_findings: Vec<Finding>,
}

impl<'a> FileAnalysis<'a> {
    /// Lexes and pre-analyses one file.
    pub fn new(rel: &'a str, src: &'a [u8]) -> Self {
        let toks = scan(src);
        let in_test = mark_test_items(src, &toks);
        let fn_frames = collect_fn_frames(src, &toks);
        let (pragmas, pragma_findings) = collect_pragmas(rel, src, &toks);
        FileAnalysis { src, rel, toks, in_test, fn_frames, pragmas, pragma_findings }
    }

    /// `mod` names declared in this file (feeds [`ImportSurface`]).
    pub fn mod_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, t) in self.toks.iter().enumerate() {
            if t.is_ident(self.src, "mod") {
                if let Some(j) = self.next_code(i) {
                    if self.toks[j].kind == TokenKind::Ident {
                        out.push(self.toks[j].text(self.src).into_owned());
                    }
                }
            }
        }
        out
    }

    /// Runs every rule, applies pragma suppression, returns the findings.
    pub fn lint(&self, cfg: &Config, surface: &ImportSurface) -> Vec<Finding> {
        let mut findings = self.pragma_findings.clone();
        self.rule_unsafe_needs_safety(&mut findings);
        self.rule_no_panic_in_decode(cfg, &mut findings);
        self.rule_atomic_ordering(cfg, &mut findings);
        self.rule_no_wall_clock(cfg, &mut findings);
        self.rule_shim_surface(cfg, surface, &mut findings);
        findings.retain(|f| !self.suppressed(f));
        findings.sort_by_key(|f| (f.line, f.col, f.rule));
        findings
    }

    fn suppressed(&self, f: &Finding) -> bool {
        // `pragma` findings are never suppressible.
        f.rule != Rule::Pragma
            && self.pragmas.iter().any(|p| {
                p.rules.contains(&f.rule)
                    && ((p.from_line <= f.line && f.line <= p.to_line) || f.line == p.target_line)
            })
    }

    fn finding(&self, rule: Rule, t: &Token, message: String) -> Finding {
        Finding { rule, file: self.rel.to_string(), line: t.line, col: t.col, message }
    }

    /// Next non-comment token index after `i`.
    fn next_code(&self, i: usize) -> Option<usize> {
        self.toks.iter().enumerate().skip(i + 1).find(|(_, t)| !t.is_comment()).map(|(j, _)| j)
    }

    /// Previous non-comment token index before `i`.
    fn prev_code(&self, i: usize) -> Option<usize> {
        self.toks[..i].iter().enumerate().rev().find(|(_, t)| !t.is_comment()).map(|(j, _)| j)
    }

    /// Names of every named fn whose body encloses token `i`.
    fn enclosing_fns(&self, i: usize) -> impl Iterator<Item = &str> {
        self.fn_frames
            .iter()
            .filter(move |(_, open, close)| *open <= i && i <= *close)
            .map(|(name, _, _)| name.as_str())
    }

    // ----- R1 ------------------------------------------------------------

    fn rule_unsafe_needs_safety(&self, findings: &mut Vec<Finding>) {
        for (i, t) in self.toks.iter().enumerate() {
            if !t.is_ident(self.src, "unsafe") {
                continue;
            }
            if self.safety_comment_above(t.line) || self.safety_in_statement(i) {
                continue;
            }
            findings.push(self.finding(
                Rule::UnsafeNeedsSafety,
                t,
                "`unsafe` without an immediately preceding `// SAFETY:` comment justifying it"
                    .into(),
            ));
        }
    }

    /// True when the contiguous comment block ending directly above `line`
    /// (or sharing it) contains `SAFETY:`.
    fn safety_comment_above(&self, line: u32) -> bool {
        let comments: Vec<(u32, u32, bool)> = self
            .toks
            .iter()
            .filter(|t| t.is_comment())
            .map(|t| (t.line, t.end_line, t.text(self.src).contains("SAFETY:")))
            .collect();
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match comments.iter().find(|&&(s, e, _)| s <= l && l <= e) {
                Some(&(_, _, true)) => return true,
                Some(&(s, _, false)) if s > 1 => l = s - 1,
                _ => return false,
            }
        }
        false
    }

    /// True when a `SAFETY:` comment appears between the start of the
    /// enclosing statement (previous `;`/`{`/`}`) and the `unsafe` token —
    /// covers `let x =\n    unsafe { … }` with the comment above the `let`.
    fn safety_in_statement(&self, i: usize) -> bool {
        for t in self.toks[..i].iter().rev() {
            if t.is_comment() {
                if t.text(self.src).contains("SAFETY:") {
                    return true;
                }
            } else if t.is_punct(self.src, b';')
                || t.is_punct(self.src, b'{')
                || t.is_punct(self.src, b'}')
            {
                // The comment block directly above the statement's first
                // line also counts (it may sit above a `let` that follows
                // the boundary token on an earlier line).
                return match self.toks[..i].iter().rev().find(|t| !t.is_comment()) {
                    Some(first) => self.safety_comment_above(first.line) && first.line != t.line,
                    None => false,
                };
            }
        }
        false
    }

    // ----- R2 ------------------------------------------------------------

    fn rule_no_panic_in_decode(&self, cfg: &Config, findings: &mut Vec<Finding>) {
        let Some(scope) = cfg.decode_scope(self.rel) else { return };
        let in_scope = |this: &Self, i: usize| {
            !this.in_test[i]
                && match &scope.fns {
                    None => true,
                    Some(fns) => this.enclosing_fns(i).any(|n| fns.iter().any(|f| f == n)),
                }
        };
        for (i, t) in self.toks.iter().enumerate() {
            if !in_scope(self, i) {
                continue;
            }
            if t.kind == TokenKind::Ident {
                let name = t.text(self.src);
                let prev_is_dot =
                    self.prev_code(i).is_some_and(|j| self.toks[j].is_punct(self.src, b'.'));
                let next_is_bang =
                    self.next_code(i).is_some_and(|j| self.toks[j].is_punct(self.src, b'!'));
                if (name == "unwrap" || name == "expect") && prev_is_dot {
                    findings.push(self.finding(
                        Rule::NoPanicInDecode,
                        t,
                        format!(
                            "`.{name}()` in a decode module: malformed input must become a \
                             typed error, not a panic"
                        ),
                    ));
                } else if matches!(&*name, "panic" | "unreachable" | "todo" | "unimplemented")
                    && next_is_bang
                {
                    findings.push(self.finding(
                        Rule::NoPanicInDecode,
                        t,
                        format!("`{name}!` in a decode module: return a typed error instead"),
                    ));
                }
            } else if t.is_punct(self.src, b'[') && self.is_index_bracket(i) {
                findings.push(self.finding(
                    Rule::NoPanicInDecode,
                    t,
                    "direct slice indexing in a decode module can panic on garbage input; \
                     use `.get(…)` and surface a typed error"
                        .into(),
                ));
            }
        }
    }

    /// Heuristic: `[` is an index expression when it follows an identifier
    /// (that is not a keyword), `)`, `]` or `?` — never after `let`, `=`,
    /// `(`, `!` (macros), `#` (attributes), `in`, `&mut`, etc.
    fn is_index_bracket(&self, i: usize) -> bool {
        let Some(j) = self.prev_code(i) else { return false };
        let p = &self.toks[j];
        match p.kind {
            TokenKind::Ident => {
                let name = p.text(self.src);
                !NON_INDEX_KEYWORDS.contains(&&*name)
            }
            TokenKind::Punct => {
                p.is_punct(self.src, b')') || p.is_punct(self.src, b']') || p.is_punct(self.src, b'?')
            }
            _ => false,
        }
    }

    // ----- R3 ------------------------------------------------------------

    fn rule_atomic_ordering(&self, cfg: &Config, findings: &mut Vec<Finding>) {
        for t in &self.toks {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text(self.src);
            if !ORDERINGS.contains(&&*name) {
                continue;
            }
            match cfg.allowed_orderings(self.rel) {
                None => findings.push(self.finding(
                    Rule::AtomicOrderingAllowlist,
                    t,
                    format!(
                        "atomic ordering `{name}` in a module with no allowlist entry; add a \
                         justified `allow =` line under [rule.atomic-ordering-allowlist] in \
                         euler-lint.toml"
                    ),
                )),
                Some(allowed) if !allowed.iter().any(|a| a == &*name) => {
                    findings.push(self.finding(
                        Rule::AtomicOrderingAllowlist,
                        t,
                        format!(
                            "atomic ordering `{name}` is not allowlisted for this module \
                             (allowed: {}); an ordering change is a reviewed protocol change, \
                             not a drive-by edit",
                            allowed.join(", ")
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }

    // ----- R4 ------------------------------------------------------------

    fn rule_no_wall_clock(&self, cfg: &Config, findings: &mut Vec<Finding>) {
        if !cfg.is_kernel(self.rel) {
            return;
        }
        for (i, t) in self.toks.iter().enumerate() {
            if self.in_test[i] || t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text(self.src);
            if name == "Instant" || name == "SystemTime" {
                findings.push(self.finding(
                    Rule::NoWallClockInKernels,
                    t,
                    format!(
                        "`{name}` in a deterministic kernel module: kernels must be \
                         bit-identical across runs; measure time in the orchestration layer"
                    ),
                ));
            }
        }
    }

    // ----- R5 ------------------------------------------------------------

    fn rule_shim_surface(&self, cfg: &Config, surface: &ImportSurface, findings: &mut Vec<Finding>) {
        for (i, t) in self.toks.iter().enumerate() {
            let root_idx = if t.is_ident(self.src, "use") {
                self.import_root(i)
            } else if t.is_ident(self.src, "extern") {
                // `extern crate name`; `extern "C"` has a string next.
                match self.next_code(i) {
                    Some(j) if self.toks[j].is_ident(self.src, "crate") => self.import_root(j),
                    _ => None,
                }
            } else {
                None
            };
            let Some(r) = root_idx else { continue };
            let root = self.toks[r].text(self.src);
            let allowed = BUILTIN_ROOTS.contains(&&*root)
                || surface.workspace_crates.contains(&*root)
                || surface.local_mods.contains(&*root)
                || cfg.extra_crates.iter().any(|c| c == &*root);
            if !allowed {
                findings.push(self.finding(
                    Rule::ShimSurfaceGuard,
                    &self.toks[r],
                    format!(
                        "`{root}` is not a workspace crate, vendored shim or local module; \
                         the build has no crates.io access — vendor a shim under shims/ first"
                    ),
                ));
            }
        }
    }

    /// The root identifier of an import path starting after token `i`
    /// (skips a leading `::`).
    fn import_root(&self, i: usize) -> Option<usize> {
        let mut j = self.next_code(i)?;
        while self.toks[j].is_punct(self.src, b':') {
            j = self.next_code(j)?;
        }
        (self.toks[j].kind == TokenKind::Ident).then_some(j)
    }
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items (the attached
/// item runs to its matching `}` or terminating `;`).
fn mark_test_items(src: &[u8], toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct(src, b'#') {
            i += 1;
            continue;
        }
        let Some(open) = next_code_idx(toks, i) else { break };
        // `#![…]` inner attributes attach to the enclosing module, not the
        // next item.
        if toks[open].is_punct(src, b'!') {
            i = open + 1;
            continue;
        }
        if !toks[open].is_punct(src, b'[') {
            i = open;
            continue;
        }
        let (close, is_test) = scan_attribute(src, toks, open);
        if !is_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between the cfg(test) and the item.
        let mut at = close;
        loop {
            match next_code_idx(toks, at) {
                Some(h) if toks[h].is_punct(src, b'#') => match next_code_idx(toks, h) {
                    Some(o) if toks[o].is_punct(src, b'[') => at = scan_attribute(src, toks, o).0,
                    _ => break,
                },
                _ => break,
            }
        }
        // Consume the item: to the matching `}` of its first brace, or `;`.
        let mut depth = 0i64;
        let mut end = toks.len().saturating_sub(1);
        let mut j = at + 1;
        while j < toks.len() {
            if toks[j].is_punct(src, b'{') {
                depth += 1;
            } else if toks[j].is_punct(src, b'}') {
                depth -= 1;
                if depth <= 0 {
                    end = j;
                    break;
                }
            } else if toks[j].is_punct(src, b';') && depth == 0 {
                end = j;
                break;
            }
            j += 1;
        }
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Scans an attribute starting at its `[` token; returns (index of the
/// closing `]`, whether the attribute gates on tests). `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]` and `#[cfg_attr(test, …)]` all
/// count.
fn scan_attribute(src: &[u8], toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i64;
    let mut is_test = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(src, b'[') {
            depth += 1;
        } else if t.is_punct(src, b']') {
            depth -= 1;
            if depth == 0 {
                return (j, is_test);
            }
        } else if t.is_ident(src, "test") {
            is_test = true;
        }
        j += 1;
    }
    (toks.len().saturating_sub(1), is_test)
}

fn next_code_idx(toks: &[Token], i: usize) -> Option<usize> {
    toks.iter().enumerate().skip(i + 1).find(|(_, t)| !t.is_comment()).map(|(j, _)| j)
}

/// Collects named-fn body spans: `fn name … { … }` as token-index ranges of
/// the braces. Trait-method declarations (`fn name(…);`) have no body and
/// produce no frame; closures and nested fns stay inside their parent span.
fn collect_fn_frames(src: &[u8], toks: &[Token]) -> Vec<(String, usize, usize)> {
    let mut frames = Vec::new();
    let mut stack: Vec<(String, i64, usize)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct(src, b'{') {
            depth += 1;
            if let Some(name) = pending.take() {
                stack.push((name, depth, i));
            }
        } else if t.is_punct(src, b'}') {
            if let Some((_, d, _)) = stack.last() {
                if *d == depth {
                    let (name, _, open) = stack.pop().unwrap_or_default();
                    frames.push((name, open, i));
                }
            }
            depth -= 1;
        } else if t.is_punct(src, b';') {
            // `fn` declaration without a body (trait method, extern block).
            pending = None;
        } else if t.is_ident(src, "fn") {
            if let Some(j) = next_code_idx(toks, i) {
                if toks[j].kind == TokenKind::Ident {
                    pending = Some(toks[j].text(src).into_owned());
                }
            }
        }
    }
    // Unclosed frames (truncated input) extend to the last token.
    let last = toks.len().saturating_sub(1);
    frames.extend(stack.into_iter().map(|(name, _, open)| (name, open, last)));
    frames
}

/// Parses `lint:allow(<rules>): <reason>` pragmas out of the comments.
/// Malformed pragmas become findings — never silent no-ops.
fn collect_pragmas(rel: &str, src: &[u8], toks: &[Token]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let text = t.text(src);
        // Doc comments are documentation, not pragma carriers — they may
        // legitimately *describe* the pragma syntax (as this crate's do).
        if ["///", "//!", "/**", "/*!"].iter().any(|p| text.starts_with(p)) {
            continue;
        }
        let Some(pos) = text.find("lint:allow") else { continue };
        let mut fail = |message: String| {
            findings.push(Finding {
                rule: Rule::Pragma,
                file: rel.to_string(),
                line: t.line,
                col: t.col,
                message,
            });
        };
        let rest = &text[pos + "lint:allow".len()..];
        let Some(body) = rest.strip_prefix('(') else {
            fail("malformed pragma: expected `lint:allow(<rule>): <reason>`".into());
            continue;
        };
        let Some((names, after)) = body.split_once(')') else {
            fail("malformed pragma: missing `)` in `lint:allow(<rule>): <reason>`".into());
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in names.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => {
                    fail(format!("pragma names unknown rule `{name}`"));
                    bad = true;
                }
            }
        }
        if bad {
            continue;
        }
        if rules.is_empty() {
            fail("pragma suppresses no rules: `lint:allow(<rule>): <reason>`".into());
            continue;
        }
        let reason = after.trim_start().strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            fail("suppression pragma requires a reason: `lint:allow(<rule>): <reason>`".into());
            continue;
        }
        let target_line = next_code_idx(toks, i).map_or(t.end_line, |j| toks[j].line);
        pragmas.push(Pragma { rules, from_line: t.line, to_line: t.end_line, target_line });
    }
    (pragmas, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
        let surface = ImportSurface::default();
        FileAnalysis::new(rel, src.as_bytes()).lint(cfg, &surface)
    }

    fn decode_cfg(file: &str) -> Config {
        Config::parse(&format!("[rule.no-panic-in-decode]\nfile = {file}\n")).unwrap()
    }

    #[test]
    fn r1_flags_uncommented_unsafe_with_exact_position() {
        let src = "fn f() {\n    let x = unsafe { g() };\n}\n";
        let f = lint_src("a.rs", src, &Config::default());
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line, f[0].col), (Rule::UnsafeNeedsSafety, 2, 13));
    }

    #[test]
    fn r1_accepts_comment_above_or_statement_start() {
        let above = "fn f() {\n    // SAFETY: g is fine\n    let x = unsafe { g() };\n}\n";
        assert!(lint_src("a.rs", above, &Config::default()).is_empty());
        let split = "fn f() {\n    // SAFETY: g is fine\n    let x =\n        unsafe { g() };\n}\n";
        assert!(lint_src("a.rs", split, &Config::default()).is_empty());
        let non_safety = "fn f() {\n    // just a comment\n    let x = unsafe { g() };\n}\n";
        assert_eq!(lint_src("a.rs", non_safety, &Config::default()).len(), 1);
    }

    #[test]
    fn r1_string_and_comment_unsafe_do_not_count() {
        let src = "fn f() { let s = \"unsafe\"; } // unsafe\n";
        assert!(lint_src("a.rs", src, &Config::default()).is_empty());
    }

    #[test]
    fn r2_flags_unwrap_expect_macros_and_indexing() {
        let cfg = decode_cfg("d.rs");
        let src = "fn f(b: &[u8]) -> u8 {\n    let x = b.first().unwrap();\n    \
                   let y = o.expect(\"msg\");\n    if bad { panic!(\"no\") }\n    b[0]\n}\n";
        let f = lint_src("d.rs", src, &cfg);
        let rules: Vec<_> = f.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![
                (Rule::NoPanicInDecode, 2),
                (Rule::NoPanicInDecode, 3),
                (Rule::NoPanicInDecode, 4),
                (Rule::NoPanicInDecode, 5),
            ]
        );
        assert!(lint_src("other.rs", src, &cfg).is_empty(), "out-of-scope file is untouched");
    }

    #[test]
    fn r2_indexing_heuristic_has_no_false_positives_on_common_forms() {
        let cfg = decode_cfg("d.rs");
        let src = "#[derive(Debug)]\nfn f() {\n    let a = [0u8; 4];\n    let v = vec![1, 2];\n    \
                   let [x, y] = pair;\n    for w in [1, 2] {}\n    let b: [u8; 2] = t;\n    \
                   let s = &mut [0u8; 8];\n}\n";
        assert!(lint_src("d.rs", src, &cfg).is_empty());
        let real = "fn f() { a[i]; f()[0]; m[k][j]; x?[1]; &buf[lo..hi]; }\n";
        assert_eq!(lint_src("d.rs", real, &cfg).len(), 6);
    }

    #[test]
    fn r2_skips_cfg_test_items_and_respects_fn_scope() {
        let cfg = decode_cfg("d.rs");
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_src("d.rs", src, &cfg).is_empty());
        let scoped =
            Config::parse("[rule.no-panic-in-decode]\nfile = d.rs @ decode_header\n").unwrap();
        let src = "fn decode_header(b: &[u8]) -> u8 { b[0] }\nfn trusted(b: &[u8]) -> u8 { b[1] }\n";
        let f = lint_src("d.rs", src, &scoped);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn r2_fn_scope_covers_closures_inside_the_named_fn() {
        let scoped = Config::parse("[rule.no-panic-in-decode]\nfile = d.rs @ decode\n").unwrap();
        let src = "fn decode(b: &[u8]) -> u8 {\n    let g = |i: usize| b[i];\n    g(0)\n}\n";
        assert_eq!(lint_src("d.rs", src, &scoped).len(), 1);
    }

    #[test]
    fn r3_requires_an_allowlist_entry_and_matches_bare_names() {
        let cfg = Config::parse(
            "[rule.atomic-ordering-allowlist]\nallow = ok.rs : Relaxed\n",
        )
        .unwrap();
        assert!(lint_src("ok.rs", "x.load(Relaxed); y.store(1, Ordering::Relaxed);", &cfg)
            .is_empty());
        let f = lint_src("ok.rs", "x.load(Ordering::SeqCst);", &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SeqCst"));
        let f = lint_src("no.rs", "use std::sync::atomic::Ordering::Relaxed;", &cfg);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no allowlist entry"));
    }

    #[test]
    fn r4_bans_wall_clocks_in_kernels_only() {
        let cfg = Config::parse("[rule.no-wall-clock-in-kernels]\nfile = k.rs\n").unwrap();
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(lint_src("k.rs", src, &cfg).len(), 2);
        assert!(lint_src("bench.rs", src, &cfg).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        assert!(lint_src("k.rs", test_only, &cfg).is_empty());
    }

    #[test]
    fn r5_allows_builtins_members_and_local_mods_only() {
        let mut surface = ImportSurface::default();
        surface.workspace_crates.insert("euler_graph".into());
        surface.local_mods.insert("stats".into());
        let cfg = Config::default();
        let ok = "use std::fmt;\nuse crate::x;\nuse euler_graph::Graph;\nuse stats::Q;\n\
                  use super::*;\nextern \"C\" { fn mmap(); }\n";
        assert!(FileAnalysis::new("a.rs", ok.as_bytes()).lint(&cfg, &surface).is_empty());
        let bad = "use libc::mmap;\nextern crate serde_json;\n";
        let f = FileAnalysis::new("a.rs", bad.as_bytes()).lint(&cfg, &surface);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("libc"));
        assert!(f[1].message.contains("serde_json"));
    }

    #[test]
    fn r5_extra_crates_from_config_are_allowed() {
        let cfg = Config::parse("[rule.shim-surface-guard]\nallow = libc\n").unwrap();
        let surface = ImportSurface::default();
        assert!(FileAnalysis::new("a.rs", b"use libc::mmap;").lint(&cfg, &surface).is_empty());
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let cfg = decode_cfg("d.rs");
        let same = "fn f() { b[0] } // lint:allow(no-panic-in-decode): bounds checked above\n";
        assert!(lint_src("d.rs", same, &cfg).is_empty());
        let above = "fn f(b: &[u8]) -> u8 {\n    \
                     // lint:allow(no-panic-in-decode): caller validated the frame\n    b[0]\n}\n";
        assert!(lint_src("d.rs", above, &cfg).is_empty());
        let elsewhere = "// lint:allow(no-panic-in-decode): only here\nfn g() {}\n\
                         fn f(b: &[u8]) -> u8 { b[0] }\n";
        assert_eq!(lint_src("d.rs", elsewhere, &cfg).len(), 1, "pragmas are per-site");
    }

    #[test]
    fn pragma_without_reason_or_with_typo_is_a_finding() {
        let cfg = decode_cfg("d.rs");
        let f = lint_src("d.rs", "fn f() { b[0] } // lint:allow(no-panic-in-decode)\n", &cfg);
        assert!(f.iter().any(|f| f.rule == Rule::Pragma && f.message.contains("reason")));
        assert!(f.iter().any(|f| f.rule == Rule::NoPanicInDecode), "no reason, no suppression");
        let f = lint_src("d.rs", "// lint:allow(no-panic-in-dcode): oops\nfn f() { b[0] }\n", &cfg);
        assert!(f.iter().any(|f| f.rule == Rule::Pragma && f.message.contains("unknown rule")));
        let f = lint_src("a.rs", "// lint:allow(pragma): nope\nfn f() {}\n", &Config::default());
        assert!(f.iter().any(|f| f.rule == Rule::Pragma), "`pragma` itself is not suppressible");
    }

    #[test]
    fn pragma_suppresses_only_named_rules() {
        let cfg = decode_cfg("d.rs");
        let src = "fn f() {\n    // lint:allow(unsafe-needs-safety): wrong rule named\n    b[0]\n}\n";
        let f = lint_src("d.rs", src, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoPanicInDecode);
    }

    #[test]
    fn fn_frames_nest_and_close_correctly() {
        let src = b"fn outer() { fn inner() { x(); } y(); }";
        let frames = collect_fn_frames(src, &scan(src));
        assert_eq!(frames.len(), 2);
        let a = FileAnalysis::new("a.rs", src);
        let yi = a.toks.iter().position(|t| t.is_ident(src, "y")).unwrap();
        let names: Vec<_> = a.enclosing_fns(yi).collect();
        assert_eq!(names, ["outer"]);
        let xi = a.toks.iter().position(|t| t.is_ident(src, "x")).unwrap();
        let mut names: Vec<_> = a.enclosing_fns(xi).collect();
        names.sort();
        assert_eq!(names, ["inner", "outer"]);
    }
}
