//! `euler-lint` — workspace-invariant static analysis for the
//! euler-circuit workspace.
//!
//! The partition-centric Euler-circuit pipeline rests on a handful of
//! invariants that the compiler cannot check and that code review keeps
//! re-litigating: every `unsafe` block's justification, panic-freedom of
//! the wire-facing decode paths (a malformed frame from a peer must never
//! abort a worker mid-superstep), the memory-ordering discipline of the
//! lock-free phase-1 kernel, determinism of the kernels themselves, and
//! the offline-build shim surface. This crate turns those review rules
//! into a mechanical gate.
//!
//! It is deliberately dependency-free — not even the workspace shims — and
//! ships its own comment/string/raw-string-aware token scanner
//! ([`scan`]), a tiny policy-file parser ([`config`]), the five rules
//! ([`rules`]), and a workspace driver ([`engine`]). Run it as:
//!
//! ```text
//! cargo run --release -p euler-lint          # human-readable diagnostics
//! cargo run --release -p euler-lint -- --json lint-report.json
//! ```
//!
//! The process exits non-zero when any finding survives, which makes it a
//! CI gate. Per-site suppressions use
//! `// lint:allow(<rule>): <reason>` — the reason is mandatory, and a
//! malformed pragma is itself a (non-suppressible) finding.
//!
//! The rule catalogue, with the history that motivated each rule, lives in
//! [`lint_rules`] (rendered from `docs/LINTS.md`).

pub mod config;
pub mod engine;
pub mod report;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use engine::{run, run_with_config, CONFIG_FILE};
pub use report::{Finding, Report, Rule};

/// The rule catalogue: what each rule demands, why it exists, and how to
/// suppress it per-site.
#[doc = include_str!("../../../docs/LINTS.md")]
pub mod lint_rules {}
