//! The workspace lint policy, parsed from `euler-lint.toml`.
//!
//! The policy file is the point of the tool: scope decisions ("which modules
//! are wire-facing decode paths", "which modules may use which atomic
//! orderings") are *reviewable configuration*, not tribal knowledge buried
//! in review comments. The format is a deliberately tiny INI subset parsed
//! right here — no crates.io, and no clever syntax to get wrong:
//!
//! ```text
//! # comment
//! [scan]
//! exclude = crates/lint/tests/fixtures
//!
//! [rule.no-panic-in-decode]
//! file = crates/bsp/src/transport.rs                 # whole file
//! file = crates/graph/src/csr_file.rs @ open,open_trusted  # named fns only
//!
//! [rule.atomic-ordering-allowlist]
//! allow = crates/core/src/phase1/parallel.rs : Relaxed
//!
//! [rule.no-wall-clock-in-kernels]
//! file = crates/core/src/phase1.rs
//!
//! [rule.shim-surface-guard]
//! allow = some_extra_crate
//! ```
//!
//! Keys may repeat; unknown sections or keys are parse errors (a typo must
//! not silently drop policy). Paths are workspace-root-relative with `/`
//! separators.

/// One `no-panic-in-decode` scope entry: a file, optionally narrowed to a
/// set of named functions (closures and nested fns inside them included).
#[derive(Clone, Debug)]
pub struct DecodeScope {
    /// Root-relative path.
    pub file: String,
    /// `None` = the whole file (minus `#[cfg(test)]` items).
    pub fns: Option<Vec<String>>,
}

/// One `atomic-ordering-allowlist` entry: the orderings a file may name.
#[derive(Clone, Debug)]
pub struct AtomicAllow {
    /// Root-relative path.
    pub file: String,
    /// Permitted `std::sync::atomic::Ordering` variant names.
    pub orderings: Vec<String>,
}

/// The full parsed policy.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Root-relative path prefixes excluded from scanning.
    pub excludes: Vec<String>,
    /// R2 scope: wire-facing decode modules.
    pub decode: Vec<DecodeScope>,
    /// R3 allowlist: files permitted to name atomic orderings at all.
    pub atomics: Vec<AtomicAllow>,
    /// R4 scope: deterministic kernel modules where wall clocks are banned.
    pub kernel_files: Vec<String>,
    /// R5 extras: crate roots allowed beyond builtins + workspace members.
    pub extra_crates: Vec<String>,
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl Config {
    /// Parses the policy text. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "scan" | "rule.no-panic-in-decode" | "rule.atomic-ordering-allowlist"
                    | "rule.no-wall-clock-in-kernels" | "rule.shim-surface-guard" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
            if value.is_empty() {
                return Err(format!("line {lineno}: empty value for `{key}`"));
            }
            match (section.as_str(), key) {
                ("scan", "exclude") => cfg.excludes.push(normalize_path(value)),
                ("rule.no-panic-in-decode", "file") => {
                    let (file, fns) = match value.split_once('@') {
                        None => (value, None),
                        Some((file, fns)) => {
                            let names: Vec<String> = fns
                                .split(',')
                                .map(|f| f.trim().to_string())
                                .filter(|f| !f.is_empty())
                                .collect();
                            if names.is_empty() {
                                return Err(format!("line {lineno}: `@` with no function names"));
                            }
                            (file.trim(), Some(names))
                        }
                    };
                    cfg.decode.push(DecodeScope { file: normalize_path(file), fns });
                }
                ("rule.atomic-ordering-allowlist", "allow") => {
                    let (file, orderings) = value.split_once(':').ok_or_else(|| {
                        format!("line {lineno}: expected `allow = <path> : <Ordering,…>`")
                    })?;
                    let names: Vec<String> = orderings
                        .split(',')
                        .map(|o| o.trim().to_string())
                        .filter(|o| !o.is_empty())
                        .collect();
                    for n in &names {
                        if !ATOMIC_ORDERINGS.contains(&n.as_str()) {
                            return Err(format!("line {lineno}: `{n}` is not an atomic Ordering"));
                        }
                    }
                    if names.is_empty() {
                        return Err(format!("line {lineno}: allowlist entry with no orderings"));
                    }
                    cfg.atomics
                        .push(AtomicAllow { file: normalize_path(file.trim()), orderings: names });
                }
                ("rule.no-wall-clock-in-kernels", "file") => {
                    cfg.kernel_files.push(normalize_path(value));
                }
                ("rule.shim-surface-guard", "allow") => {
                    cfg.extra_crates.push(value.to_string());
                }
                (sec, key) => {
                    return Err(format!("line {lineno}: unknown key `{key}` in section [{sec}]"))
                }
            }
        }
        Ok(cfg)
    }

    /// R2 scope for `file` (root-relative), if any.
    pub fn decode_scope(&self, file: &str) -> Option<&DecodeScope> {
        self.decode.iter().find(|d| d.file == file)
    }

    /// R3 permitted orderings for `file`; `None` = not allowlisted at all.
    pub fn allowed_orderings(&self, file: &str) -> Option<&[String]> {
        self.atomics.iter().find(|a| a.file == file).map(|a| a.orderings.as_slice())
    }

    /// R4: whether `file` is a deterministic kernel module.
    pub fn is_kernel(&self, file: &str) -> bool {
        self.kernel_files.iter().any(|k| k == file)
    }

    /// Whether `rel` (root-relative) is excluded from scanning.
    pub fn is_excluded(&self, rel: &str) -> bool {
        self.excludes.iter().any(|e| rel == e || rel.starts_with(&format!("{e}/")))
    }
}

fn normalize_path(p: &str) -> String {
    p.trim().trim_start_matches("./").trim_end_matches('/').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_section_kind() {
        let cfg = Config::parse(
            "# policy\n[scan]\nexclude = a/b/\n\n[rule.no-panic-in-decode]\n\
             file = x.rs\nfile = y.rs @ open, validate\n\n\
             [rule.atomic-ordering-allowlist]\nallow = z.rs : Relaxed, Acquire\n\n\
             [rule.no-wall-clock-in-kernels]\nfile = k.rs # kernel\n\n\
             [rule.shim-surface-guard]\nallow = libc\n",
        )
        .unwrap();
        assert!(cfg.is_excluded("a/b/c.rs"));
        assert!(!cfg.is_excluded("a/bc.rs"));
        assert!(cfg.decode_scope("x.rs").unwrap().fns.is_none());
        assert_eq!(
            cfg.decode_scope("y.rs").unwrap().fns.as_deref().unwrap(),
            ["open".to_string(), "validate".to_string()]
        );
        assert_eq!(cfg.allowed_orderings("z.rs").unwrap(), ["Relaxed", "Acquire"]);
        assert!(cfg.allowed_orderings("w.rs").is_none());
        assert!(cfg.is_kernel("k.rs"));
        assert_eq!(cfg.extra_crates, ["libc"]);
    }

    #[test]
    fn typos_are_errors_not_silently_dropped_policy() {
        assert!(Config::parse("[rule.no-panic-in-dcode]\n").is_err());
        assert!(Config::parse("[scan]\nexlude = x\n").is_err());
        assert!(Config::parse("[rule.atomic-ordering-allowlist]\nallow = f.rs : Relaexd\n")
            .is_err());
        assert!(Config::parse("[scan]\nexclude =\n").is_err());
    }
}
