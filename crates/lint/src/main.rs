//! CLI entry point: lints the workspace, prints rustc-style diagnostics,
//! optionally writes a JSON report, exits non-zero on findings.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: euler-lint [--root DIR] [--json FILE]\n\n\
  --root DIR   workspace root (default: nearest ancestor with euler-lint.toml)\n\
  --json FILE  also write a machine-readable report to FILE (`-` = stdout)\n";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root requires a directory"),
            },
            "--json" => match args.next() {
                Some(path) => json = Some(path),
                None => return usage_error("--json requires a file path (or `-`)"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("euler-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match euler_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("euler-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = json {
        let rendered = report.render_json();
        if path == "-" {
            print!("{rendered}");
        } else if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("euler-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("euler-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory containing `euler-lint.toml`.
/// The policy file doubles as the root sentinel, so the binary works from
/// any subdirectory of the workspace.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &start;
    loop {
        if dir.join(euler_lint::CONFIG_FILE).is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no {} found in {} or any parent; pass --root",
                    euler_lint::CONFIG_FILE,
                    start.display()
                ))
            }
        }
    }
}
