//! Findings and the two report renderings: rustc-style text for humans,
//! JSON for CI artifact upload and tooling.

use std::fmt;

/// The rules the engine can report under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: every `unsafe` must be justified by a `// SAFETY:` comment.
    UnsafeNeedsSafety,
    /// R2: no panicking constructs in wire-facing decode modules.
    NoPanicInDecode,
    /// R3: atomic `Ordering`s must match the per-module allowlist.
    AtomicOrderingAllowlist,
    /// R4: no wall-clock reads in deterministic kernel modules.
    NoWallClockInKernels,
    /// R5: only workspace + shim crates may be imported.
    ShimSurfaceGuard,
    /// Malformed or reason-less suppression pragmas.
    Pragma,
}

impl Rule {
    /// The stable rule name used in diagnostics, pragmas and the config.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafety => "unsafe-needs-safety",
            Rule::NoPanicInDecode => "no-panic-in-decode",
            Rule::AtomicOrderingAllowlist => "atomic-ordering-allowlist",
            Rule::NoWallClockInKernels => "no-wall-clock-in-kernels",
            Rule::ShimSurfaceGuard => "shim-surface-guard",
            Rule::Pragma => "pragma",
        }
    }

    /// Resolves a pragma rule name. The pseudo-rule `pragma` is not
    /// suppressible — a broken suppression must always surface.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unsafe-needs-safety" => Some(Rule::UnsafeNeedsSafety),
            "no-panic-in-decode" => Some(Rule::NoPanicInDecode),
            "atomic-ordering-allowlist" => Some(Rule::AtomicOrderingAllowlist),
            "no-wall-clock-in-kernels" => Some(Rule::NoWallClockInKernels),
            "shim-surface-guard" => Some(Rule::ShimSurfaceGuard),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: rule, position, message.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-root-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A full lint run's outcome.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Rustc-style text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}:{}\n",
                f.rule, f.message, f.file, f.line, f.col
            ));
        }
        out.push_str(&format!(
            "euler-lint: {} finding(s) in {} file(s) scanned\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled: the lint polices the
    /// dependency surface, so it depends on nothing, shims included).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}{}\n",
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"total\": {},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.findings.len(),
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_finding() -> Report {
        Report {
            findings: vec![Finding {
                rule: Rule::NoPanicInDecode,
                file: "crates/x/src/lib.rs".into(),
                line: 12,
                col: 9,
                message: "`.unwrap()` in a decode module: \"quote\"".into(),
            }],
            files_scanned: 3,
        }
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let text = one_finding().render_text();
        assert!(text.contains("error[no-panic-in-decode]:"));
        assert!(text.contains("--> crates/x/src/lib.rs:12:9"));
        assert!(text.contains("1 finding(s) in 3 file(s)"));
    }

    #[test]
    fn json_escapes_and_summarises() {
        let json = one_finding().render_json();
        assert!(json.contains("\\\"quote\\\""));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(Report::default().render_json().contains("\"clean\": true"));
    }

    #[test]
    fn rule_names_roundtrip_through_pragma_lookup() {
        for rule in [
            Rule::UnsafeNeedsSafety,
            Rule::NoPanicInDecode,
            Rule::AtomicOrderingAllowlist,
            Rule::NoWallClockInKernels,
            Rule::ShimSurfaceGuard,
        ] {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("pragma"), None, "pragma findings are not suppressible");
    }
}
