//! The workspace driver: file discovery, member/import-surface derivation,
//! and the lint run itself.

use crate::config::Config;
use crate::report::Report;
use crate::rules::{FileAnalysis, ImportSurface};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the policy file; also the sentinel the CLI uses to find the
/// workspace root.
pub const CONFIG_FILE: &str = "euler-lint.toml";

/// Directory names never descended into.
const SKIP_DIRS: [&str; 2] = ["target", ".git"];

/// Loads the policy from `<root>/euler-lint.toml` and lints the workspace.
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let text = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    run_with_config(root, &cfg)
}

/// Lints the workspace under `root` with an already-parsed policy.
pub fn run_with_config(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = collect_rust_files(root, cfg)?;
    let workspace_crates = collect_workspace_crates(root)?;

    // Read + lex every file once, grouped by workspace member, so each
    // member's local `mod` names can feed R5 before any rule runs.
    let mut sources: Vec<(String, Vec<u8>)> = Vec::with_capacity(files.len());
    for (rel, abs) in &files {
        let bytes =
            fs::read(abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        sources.push((rel.clone(), bytes));
    }
    let mut mods_by_member: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let analyses: Vec<FileAnalysis<'_>> = sources
        .iter()
        .map(|(rel, bytes)| FileAnalysis::new(rel, bytes))
        .collect();
    for (a, (rel, _)) in analyses.iter().zip(&sources) {
        mods_by_member.entry(member_of(rel)).or_default().extend(a.mod_names());
    }

    let mut report = Report { findings: Vec::new(), files_scanned: sources.len() };
    for (a, (rel, _)) in analyses.iter().zip(&sources) {
        let surface = ImportSurface {
            workspace_crates: workspace_crates.clone(),
            local_mods: mods_by_member.get(&member_of(rel)).cloned().unwrap_or_default(),
        };
        report.findings.extend(a.lint(cfg, &surface));
    }
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Ok(report)
}

/// The workspace member a root-relative path belongs to (`crates/foo`,
/// `shims/bar`, or `""` for the facade package at the root).
fn member_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next(), parts.next()) {
        (Some(top @ ("crates" | "shims")), Some(name), Some(_)) => format!("{top}/{name}"),
        _ => String::new(),
    }
}

/// Every `.rs` file under `root`, as sorted `(root-relative, absolute)`
/// pairs. Skips `target/`, `.git/` and configured excludes.
fn collect_rust_files(root: &Path, cfg: &Config) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("while listing {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/"),
                Err(_) => continue,
            };
            if path.is_dir() {
                if !SKIP_DIRS.contains(&&*name) && !cfg.is_excluded(&rel) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") && !cfg.is_excluded(&rel) {
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Underscore-normalised package names of every workspace member, read from
/// the member manifests (root + `crates/*` + `shims/*`). Deriving the set
/// from the manifests means a newly added real dependency immediately trips
/// R5 rather than silently widening the surface.
fn collect_workspace_crates(root: &Path) -> Result<BTreeSet<String>, String> {
    let mut names = BTreeSet::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let m = entry.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    for m in manifests {
        let text =
            fs::read_to_string(&m).map_err(|e| format!("cannot read {}: {e}", m.display()))?;
        if let Some(name) = package_name(&text) {
            names.insert(name.replace('-', "_"));
        }
    }
    if names.is_empty() {
        return Err(format!("no workspace member manifests found under {}", root.display()));
    }
    Ok(names)
}

/// Extracts `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']').trim() == "package";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if key.trim() == "name" {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_grouping_matches_workspace_layout() {
        assert_eq!(member_of("crates/core/src/phase1.rs"), "crates/core");
        assert_eq!(member_of("shims/rayon/src/lib.rs"), "shims/rayon");
        assert_eq!(member_of("src/lib.rs"), "");
        assert_eq!(member_of("tests/determinism.rs"), "");
        assert_eq!(member_of("crates"), "");
    }

    #[test]
    fn package_name_reads_only_the_package_section() {
        let m = "[workspace]\nmembers = [\"x\"]\n[package]\nname = \"euler-lint\"\n\
                 [dependencies]\nname = \"decoy\"\n";
        assert_eq!(package_name(m).as_deref(), Some("euler-lint"));
        assert_eq!(package_name("[workspace]\nresolver = \"2\"\n"), None);
    }
}
