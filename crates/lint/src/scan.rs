//! A self-contained Rust token scanner.
//!
//! The build environment has no crates.io access, so the lint cannot lean on
//! `syn` or rustc internals; instead this module lexes source bytes directly.
//! It is *not* a full parser — it produces a flat token stream — but it is
//! exact about the one thing every lexical lint lives or dies by: what is
//! code and what is not. Line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any guard depth),
//! byte strings, char literals and lifetimes are all classified, so a rule
//! matching the identifier `unwrap` can never fire on `"unwrap"` in a string
//! or on a commented-out line.
//!
//! The scanner is total: it accepts **arbitrary bytes** (including invalid
//! UTF-8 and unterminated literals), never panics, and always partitions the
//! input — every byte belongs to exactly one token or to whitespace. The
//! property tests in `tests/scanner_props.rs` hold it to that contract.

/// Classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffixes).
    Number,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nested blocks included.
    BlockComment,
    /// A single punctuation byte.
    Punct,
    /// Any byte the lexer has no rule for (e.g. stray non-UTF-8 bytes).
    Unknown,
}

/// One token with its byte span and 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
    /// 1-based line of the last byte (differs for multi-line tokens).
    pub end_line: u32,
}

impl Token {
    /// The token's text, lossily decoded (only comments need their text).
    pub fn text<'a>(&self, src: &'a [u8]) -> std::borrow::Cow<'a, str> {
        String::from_utf8_lossy(src.get(self.start..self.end).unwrap_or(&[]))
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True when the token is exactly the ASCII punctuation byte `b`.
    pub fn is_punct(&self, src: &[u8], b: u8) -> bool {
        self.kind == TokenKind::Punct && src.get(self.start) == Some(&b)
    }

    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, src: &[u8], name: &str) -> bool {
        self.kind == TokenKind::Ident && src.get(self.start..self.end) == Some(name.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Cursor state shared by the sub-lexers; all reads are bounds-checked.
struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.src.len() {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a line comment (`//` to end of line, newline excluded).
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a block comment with nesting; unterminated comments extend
    /// to end of input (still a valid single token).
    fn block_comment(&mut self) {
        self.bump_n(2); // the opening "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` body after the opening quote, honouring `\` escapes;
    /// unterminated strings extend to end of input.
    fn quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump_n(2);
            } else if b == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw-string body starting at the first `#`-or-quote after
    /// the `r`/`br` prefix. Returns false (consuming nothing further) if
    /// what follows is not actually a raw string (e.g. a raw identifier).
    fn raw_string(&mut self, prefix_len: usize) -> bool {
        let mut guards = 0usize;
        while self.peek(prefix_len + guards) == Some(b'#') {
            guards += 1;
        }
        if self.peek(prefix_len + guards) != Some(b'"') {
            return false;
        }
        self.bump_n(prefix_len + guards + 1);
        // Scan for `"` followed by `guards` hashes.
        'outer: while let Some(b) = self.peek(0) {
            if b == b'"' {
                for g in 0..guards {
                    if self.peek(1 + g) != Some(b'#') {
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump_n(1 + guards);
                return true;
            }
            self.bump();
        }
        true // unterminated raw string: token runs to end of input
    }

    /// Consumes an identifier (continuation bytes only; the caller vetted
    /// the start byte).
    fn ident(&mut self) {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a number. Accepts digits, base prefixes, suffixes and a
    /// decimal point followed by a digit — but never eats the `..` of a
    /// range expression.
    fn number(&mut self) {
        while let Some(b) = self.peek(0) {
            let continues = is_ident_continue(b)
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
    }

    /// Lexes at `'`: a lifetime (`'a`, `'_`, `'static`) or a char literal.
    fn lifetime_or_char(&mut self) -> TokenKind {
        // Lifetime: `'` + ident not closed by another `'`.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut n = 2;
            while self.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if self.peek(n) != Some(b'\'') {
                self.bump_n(n);
                return TokenKind::Lifetime;
            }
        }
        self.quoted(b'\'');
        TokenKind::Char
    }
}

/// Lexes `src` into a complete token stream. Whitespace is skipped; every
/// other byte lands in exactly one token. Never panics, for any input.
pub fn scan(src: &[u8]) -> Vec<Token> {
    let mut s = Scanner { src, pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(b) = s.peek(0) {
        if b.is_ascii_whitespace() {
            s.bump();
            continue;
        }
        let (start, line, col) = (s.pos, s.line, s.col);
        let kind = match b {
            b'/' if s.peek(1) == Some(b'/') => {
                s.line_comment();
                TokenKind::LineComment
            }
            b'/' if s.peek(1) == Some(b'*') => {
                s.block_comment();
                TokenKind::BlockComment
            }
            b'"' => {
                s.quoted(b'"');
                TokenKind::Str
            }
            b'\'' => s.lifetime_or_char(),
            b'r' if s.raw_string(1) => TokenKind::Str,
            b'b' if s.peek(1) == Some(b'"') => {
                s.bump();
                s.quoted(b'"');
                TokenKind::Str
            }
            b'b' if s.peek(1) == Some(b'\'') => {
                s.bump();
                s.quoted(b'\'');
                TokenKind::Char
            }
            b'b' if s.peek(1) == Some(b'r') && s.raw_string(2) => TokenKind::Str,
            _ if is_ident_start(b) => {
                // Raw identifier `r#name`: the `r#` of a raw *string* was
                // already taken above, so a surviving `r#` is an identifier.
                if b == b'r' && s.peek(1) == Some(b'#') {
                    s.bump_n(2);
                }
                s.ident();
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                s.number();
                TokenKind::Number
            }
            _ if b.is_ascii_punctuation() => {
                s.bump();
                TokenKind::Punct
            }
            _ => {
                s.bump();
                TokenKind::Unknown
            }
        };
        // Defensive: a sub-lexer that consumed nothing would loop forever.
        if s.pos == start {
            s.bump();
        }
        out.push(Token { kind, start, end: s.pos, line, col, end_line: s.line });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        scan(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, t.text(src.as_bytes()).into_owned()))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let toks = kinds(r#"let x = "unsafe // not a comment"; // unwrap"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("unsafe")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_strings_with_guards_and_quotes() {
        let src = r###"let s = r#"quote " inside, and */ too"#; x"###;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("*/"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"(b"bytes", br#"raw "bytes""#, b'x')"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::BlockComment).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "code"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 3);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn escaped_quotes_in_literals() {
        let toks = kinds(r#"("a\"b", '\'', "c\\")"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = kinds("for i in 0..10 { a[i] = 1.5; }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "10"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "1.5"));
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = scan(b"ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multiline_token_records_its_end_line() {
        let toks = scan(b"/* a\nb\nc */ x");
        assert_eq!(toks[0].end_line, 3);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn tokens_partition_arbitrary_garbage() {
        let garbage: Vec<u8> = (0u16..=255).map(|b| b as u8).cycle().take(2048).collect();
        let toks = scan(&garbage);
        let covered: usize = toks.iter().map(|t| t.end - t.start).sum();
        let ws = garbage.iter().filter(|b| b.is_ascii_whitespace()).count();
        // Whitespace inside string/comment tokens belongs to the token, so
        // coverage + skipped-whitespace is at least the input; the partition
        // property (no overlap, monotone) is what matters.
        assert!(covered + ws >= garbage.len());
        for w in toks.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }
}
