// Fixture: `unsafe` sites with no SAFETY justification. Not compiled —
// linted by tests/fixture_suite.rs against the expectation markers.

fn raw_read(p: *const u64) -> u64 {
    unsafe { *p } //~ unsafe-needs-safety
}

// A nearby comment that is not a safety justification.
fn raw_read_let(p: *const u64) -> u64 {
    let v = unsafe { *p }; //~ unsafe-needs-safety
    v
}

unsafe fn contract_fn() {} //~ unsafe-needs-safety
