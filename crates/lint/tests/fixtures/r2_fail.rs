// Fixture: every panicking construct banned in decode modules.

pub fn decode(bytes: &[u8]) -> Result<u64, String> {
    let first = bytes.first().unwrap(); //~ no-panic-in-decode
    let second = bytes.get(1).expect("second byte"); //~ no-panic-in-decode
    if bytes.is_empty() {
        panic!("empty"); //~ no-panic-in-decode
    }
    match first {
        0 => unreachable!(), //~ no-panic-in-decode
        1 => todo!(), //~ no-panic-in-decode
        _ => {}
    }
    let direct = bytes[2]; //~ no-panic-in-decode
    let range = &bytes[1..3]; //~ no-panic-in-decode
    Ok((*first + *second + direct) as u64 + range.len() as u64)
}
