// Fixture: every import root the guard must accept — builtins, a
// workspace member, a local module (uniform paths), super/crate/self,
// and an `extern "C"` block (not an extern-crate declaration).

use std::collections::HashMap;
use core::fmt;
use alloc::vec::Vec2;
use crate::anything;
use self::stats::Quality;
use super::helpers;
use ::std::time::Duration;
use euler_graph::CsrFile;

mod stats;
use stats::Histogram;

extern "C" {
    fn getpid() -> i32;
}
