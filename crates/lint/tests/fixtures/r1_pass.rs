// Fixture: every `unsafe` form the rule must accept.

fn ok_block(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

fn ok_statement_split(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    let v =
        unsafe { *p };
    v
}

fn ok_multiline_block(p: *const u64) -> u64 {
    // The pointer comes from a live arena allocation.
    // SAFETY: arena slots are never freed while a traversal borrows them.
    // (Continuation line of the same comment block.)
    unsafe { *p }
}

// SAFETY: the value is plain-old-data; sending it moves unique ownership.
unsafe fn contract_fn() {}

fn not_code() -> &'static str {
    // The word below is inside a string literal, not code.
    "unsafe { launder() }"
}
