// Fixture: this file's allowlist entry permits only Relaxed.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst); //~ atomic-ordering-allowlist
    c.store(0, Ordering::Relaxed);
}
