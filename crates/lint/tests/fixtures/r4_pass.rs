// Fixture: a kernel module with no wall-clock reads; test items are
// exempt (a timing assertion in a unit test is not a determinism hazard).

pub fn kernel(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_allowed() {
        let t = Instant::now();
        assert!(super::kernel(1) != 0);
        let _ = t.elapsed();
    }
}
