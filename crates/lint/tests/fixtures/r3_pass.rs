// Fixture: allowlisted orderings pass, bare or path-qualified; the word
// "Ordering" itself is not an ordering name.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::atomic::Ordering::Relaxed;

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Relaxed);
    c.load(Ordering::Relaxed)
}
