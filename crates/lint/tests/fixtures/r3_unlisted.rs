// Fixture: a file with NO allowlist entry may not name any ordering,
// imports included.

use std::sync::atomic::Ordering::Relaxed; //~ atomic-ordering-allowlist
