// Fixture: decode-module code the rule must NOT flag — typed-error style
// plus every bracket form the indexing heuristic must leave alone.

pub fn decode(bytes: &[u8]) -> Result<u64, String> {
    let arr = [0u8; 4];
    let lit = vec![1u64, 2];
    let [a, b] = [1u8, 2];
    let sized: [u8; 2] = [a, b];
    let borrowed = &mut [0u8; 8];
    for w in [1u64, 2] {
        let _ = w;
    }
    let first = bytes.first().ok_or("empty payload")?;
    let second = bytes.get(1).copied().unwrap_or_default();
    Ok(*first as u64 + second as u64 + arr.len() as u64 + lit.len() as u64 + borrowed.len() as u64
        + sized.len() as u64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = [1u8, 2];
        assert_eq!(*v.first().unwrap(), 1);
        assert_eq!(v[1], 2);
    }
}
