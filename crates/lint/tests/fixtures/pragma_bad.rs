// Fixture: broken pragmas are findings themselves AND suppress nothing.

pub fn reasonless(bytes: &[u8]) -> u8 {
    // lint:allow(no-panic-in-decode) //~ pragma
    bytes[0] //~ no-panic-in-decode
}

pub fn unknown_rule(bytes: &[u8]) -> u8 {
    // lint:allow(no-panic-in-dekode): the rule name is misspelled //~ pragma
    bytes[1] //~ no-panic-in-decode
}

pub fn missing_parens(bytes: &[u8]) -> u8 {
    // lint:allow no-panic-in-decode: no parens //~ pragma
    bytes[2] //~ no-panic-in-decode
}
