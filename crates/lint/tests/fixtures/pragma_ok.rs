// Fixture: well-formed pragmas (rule name + mandatory reason) suppress a
// finding on their own line or the next code line — and nothing else.

pub fn decode(bytes: &[u8]) -> u8 {
    // lint:allow(no-panic-in-decode): offset 0 is validated by the header check above
    bytes[0]
}

pub fn decode_tail(bytes: &[u8]) -> u8 {
    bytes[1] // lint:allow(no-panic-in-decode): length was checked by the caller
}
