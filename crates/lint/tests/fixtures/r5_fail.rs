// Fixture: imports outside builtins + workspace members + local mods.

use serde_json::Value; //~ shim-surface-guard

extern crate libc; //~ shim-surface-guard
