// Fixture: fn-scoped decode entry (`@ decode_frame`) — only the named
// function (closures included) is in scope; the trusted path is exempt.

pub fn decode_frame(bytes: &[u8]) -> u8 {
    let pick = |i: usize| bytes[i]; //~ no-panic-in-decode
    pick(0)
}

pub fn trusted_accessor(bytes: &[u8]) -> u8 {
    bytes[0]
}
