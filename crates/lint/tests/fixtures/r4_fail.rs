// Fixture: wall-clock reads in a configured kernel module.

use std::time::Instant; //~ no-wall-clock-in-kernels

pub fn kernel() -> u128 {
    let t = Instant::now(); //~ no-wall-clock-in-kernels
    let s = std::time::SystemTime::now(); //~ no-wall-clock-in-kernels
    let _ = s;
    t.elapsed().as_nanos()
}
