//! The gate on the gate: this workspace must lint clean against its own
//! policy, and a workspace seeded with one violation per rule must fail
//! through the real binary with precise `file:line:col` diagnostics, a
//! non-zero exit code, and a JSON report.

use std::path::{Path, PathBuf};
use std::process::Command;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = euler_lint::run(&root).expect("lint run succeeds");
    assert!(report.is_clean(), "workspace has lint findings:\n{}", report.render_text());
    assert!(
        report.files_scanned > 100,
        "workspace scan looks truncated: only {} files",
        report.files_scanned
    );
}

fn write(root: &Path, rel: &str, text: &str) {
    let p = root.join(rel);
    if let Some(dir) = p.parent() {
        std::fs::create_dir_all(dir).expect("mkdir");
    }
    std::fs::write(p, text).expect("write seeded file");
}

fn temp_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("euler-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir temp workspace");
    dir
}

#[test]
fn seeded_violations_fail_through_the_binary() {
    let dir = temp_workspace("seeded");
    write(&dir, "Cargo.toml", "[package]\nname = \"seed\"\n");
    write(
        &dir,
        "euler-lint.toml",
        "[rule.no-panic-in-decode]\nfile = src/decode.rs\n\
         [rule.no-wall-clock-in-kernels]\nfile = src/kernel.rs\n",
    );
    // One violation per rule, at known positions.
    write(&dir, "src/decode.rs", "pub fn decode(b: &[u8]) -> u8 {\n    b.first().unwrap()\n}\n");
    write(
        &dir,
        "src/kernel.rs",
        "pub fn kernel() -> u64 {\n    let t = std::time::Instant::now();\n    \
         t.elapsed().as_nanos() as u64\n}\n",
    );
    write(&dir, "src/unsafe_site.rs", "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
    write(&dir, "src/atomics.rs", "use std::sync::atomic::Ordering::Relaxed;\n");
    write(&dir, "src/imports.rs", "use serde_json::Value;\n");

    let json_path = dir.join("report.json");
    let out = Command::new(env!("CARGO_BIN_EXE_euler-lint"))
        .arg("--root")
        .arg(&dir)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert_eq!(out.status.code(), Some(1), "findings must exit 1; stdout:\n{stdout}");
    assert!(stdout.contains("error[no-panic-in-decode]"), "{stdout}");
    assert!(stdout.contains("src/decode.rs:2:15"), "unwrap position; stdout:\n{stdout}");
    assert!(stdout.contains("error[unsafe-needs-safety]"), "{stdout}");
    assert!(stdout.contains("src/unsafe_site.rs:2:5"), "unsafe position; stdout:\n{stdout}");
    assert!(stdout.contains("error[atomic-ordering-allowlist]"), "{stdout}");
    assert!(stdout.contains("error[no-wall-clock-in-kernels]"), "{stdout}");
    assert!(stdout.contains("error[shim-surface-guard]"), "{stdout}");
    assert!(stdout.contains("`serde_json`"), "{stdout}");

    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"clean\": false"), "{json}");
    for rule in [
        "unsafe-needs-safety",
        "no-panic-in-decode",
        "atomic-ordering-allowlist",
        "no-wall-clock-in-kernels",
        "shim-surface-guard",
    ] {
        assert!(json.contains(rule), "JSON report is missing rule {rule}:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_workspace_exits_zero() {
    let dir = temp_workspace("clean");
    write(&dir, "Cargo.toml", "[package]\nname = \"seed\"\n");
    write(&dir, "euler-lint.toml", "# empty policy\n");
    write(&dir, "src/lib.rs", "pub fn ok() -> u64 {\n    42\n}\n");
    let out = Command::new(env!("CARGO_BIN_EXE_euler-lint"))
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean workspace must exit 0; stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
