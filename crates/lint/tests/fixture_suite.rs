//! Lints each fixture under `tests/fixtures/` and compares the findings
//! against the `//~ <rule>` expectation markers embedded in the fixture —
//! both directions: every marked line must be found, and nothing unmarked
//! may be flagged.

use euler_lint::config::Config;
use euler_lint::rules::{FileAnalysis, ImportSurface};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The policy the fixtures are linted under: each scoped rule names the
/// fixture files it applies to (paths are the bare file names, since each
/// fixture is linted standalone).
fn fixture_config() -> Config {
    Config::parse(
        "[rule.no-panic-in-decode]\n\
         file = r2_fail.rs\n\
         file = r2_pass.rs\n\
         file = pragma_ok.rs\n\
         file = pragma_bad.rs\n\
         file = r2_scoped.rs @ decode_frame\n\
         [rule.atomic-ordering-allowlist]\n\
         allow = r3_fail.rs : Relaxed\n\
         allow = r3_pass.rs : Relaxed\n\
         [rule.no-wall-clock-in-kernels]\n\
         file = r4_fail.rs\n\
         file = r4_pass.rs\n",
    )
    .expect("fixture config parses")
}

/// Parses `//~ <rule>` markers: one expected finding per marker, keyed by
/// 1-based line.
fn expected_markers(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        for chunk in line.split("//~").skip(1) {
            let rule = chunk.split_whitespace().next().unwrap_or("").to_string();
            assert!(!rule.is_empty(), "bare //~ marker on line {}", i + 1);
            out.push((i as u32 + 1, rule));
        }
    }
    out.sort();
    out
}

#[test]
fn fixtures_match_their_markers() {
    let cfg = fixture_config();
    let mut checked = 0usize;
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("fixture is readable");
        let analysis = FileAnalysis::new(&name, text.as_bytes());
        let surface = ImportSurface {
            workspace_crates: BTreeSet::from(["euler_graph".to_string()]),
            local_mods: analysis.mod_names().into_iter().collect(),
        };
        let mut actual: Vec<(u32, String)> = analysis
            .lint(&cfg, &surface)
            .into_iter()
            .map(|f| (f.line, f.rule.name().to_string()))
            .collect();
        actual.sort();
        assert_eq!(
            actual,
            expected_markers(&text),
            "fixture {name}: findings diverge from its //~ markers"
        );
        checked += 1;
    }
    assert!(checked >= 14, "expected the full fixture corpus, linted only {checked} files");
}
