//! Property tests holding the scanner to its contract: total over
//! arbitrary bytes (never panics, always partitions the input), and exact
//! about what is a string/comment and what is code.

use euler_lint::scan::{scan, TokenKind};
use proptest::prelude::*;

/// Vocabulary of source snippets with the expected kind of the token that
/// must start exactly at each snippet's offset. Every piece is
/// self-delimiting (line comments carry their own newline), so arbitrary
/// concatenations stay well-formed.
const VOCAB: [(&str, TokenKind); 12] = [
    ("\"str with \\\" escape\"", TokenKind::Str),
    ("r#\"raw \" str\"#", TokenKind::Str),
    ("br##\"byte raw \"# str\"##", TokenKind::Str),
    ("b\"bytes\"", TokenKind::Str),
    ("// line comment with \"quote\" and unsafe\n", TokenKind::LineComment),
    ("/* block /* nested */ comment */", TokenKind::BlockComment),
    ("some_ident", TokenKind::Ident),
    ("r#match", TokenKind::Ident),
    ("'lifetime", TokenKind::Lifetime),
    ("'c'", TokenKind::Char),
    ("0xfe17", TokenKind::Number),
    ("::", TokenKind::Punct),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn never_panics_and_partitions_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let toks = scan(&bytes);
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.start >= prev_end, "tokens overlap or run backwards");
            prop_assert!(t.start < t.end, "empty token");
            prop_assert!(t.end <= bytes.len(), "token extends past the input");
            for &b in bytes.get(prev_end..t.start).unwrap_or(&[]) {
                prop_assert!(b.is_ascii_whitespace(), "non-whitespace byte outside any token");
            }
            prop_assert!(t.line >= 1 && t.col >= 1 && t.end_line >= t.line);
            prev_end = t.end;
        }
        for &b in bytes.get(prev_end..).unwrap_or(&[]) {
            prop_assert!(b.is_ascii_whitespace(), "trailing non-whitespace outside any token");
        }
    }

    #[test]
    fn never_mislexes_strings_or_comments(
        picks in prop::collection::vec(0usize..VOCAB.len(), 0..12),
    ) {
        // Concatenate random vocabulary pieces; each piece's first token
        // must start at the piece's offset with the expected kind — i.e. no
        // string or comment ever swallows what follows it.
        let mut src = String::new();
        let mut expected = Vec::new();
        for &p in &picks {
            let (text, kind) = VOCAB[p];
            expected.push((src.len(), kind));
            src.push_str(text);
            src.push(' ');
        }
        let toks = scan(src.as_bytes());
        for (offset, kind) in expected {
            let tok = toks.iter().find(|t| t.start == offset);
            prop_assert!(tok.is_some(), "no token starts at {offset} in {src:?}");
            if let Some(t) = tok {
                prop_assert_eq!(t.kind, kind, "wrong kind at {} in {:?}", offset, &src);
            }
        }
    }
}
