//! Shared edge-list → `.ecsr` conversion used by the `csr_pack` CLI and the
//! `bench_load` harness.

use euler_graph::{write_csr_file, EdgeListFileSource, GraphError, GraphSource};
use std::path::Path;
use std::time::{Duration, Instant};

/// What one conversion did, for reporting.
#[derive(Clone, Copy, Debug)]
pub struct PackStats {
    /// Vertices in the converted graph.
    pub num_vertices: u64,
    /// Undirected edges in the converted graph.
    pub num_edges: u64,
    /// Size of the text input in bytes.
    pub input_bytes: u64,
    /// Size of the `.ecsr` output in bytes.
    pub output_bytes: u64,
    /// Time spent parsing the text edge list.
    pub parse_time: Duration,
    /// Time spent writing the binary file.
    pub write_time: Duration,
}

/// Converts the plain-text edge list at `input` into a `.ecsr` file at
/// `output` (see `docs/FORMAT.md`), returning conversion statistics.
///
/// # Errors
/// Propagates parse errors (with exact line numbers) and I/O failures.
pub fn pack_edge_list(input: &Path, output: &Path) -> Result<PackStats, GraphError> {
    let t_parse = Instant::now();
    let graph = EdgeListFileSource::new(input).load()?;
    let parse_time = t_parse.elapsed();
    let t_write = Instant::now();
    write_csr_file(&graph, output)?;
    let write_time = t_write.elapsed();
    Ok(PackStats {
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        input_bytes: std::fs::metadata(input)?.len(),
        output_bytes: std::fs::metadata(output)?.len(),
        parse_time,
        write_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::{CsrFile, MmapCsrSource};

    #[test]
    fn pack_roundtrips_through_the_mmap_source() {
        let dir = std::env::temp_dir().join("euler_bench_pack_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("square.el");
        let ecsr = dir.join("square.ecsr");
        std::fs::write(&el, "# vertices 4 edges 4\n0 1\n1 2\n2 3\n3 0\n").unwrap();
        let stats = pack_edge_list(&el, &ecsr).unwrap();
        assert_eq!(stats.num_vertices, 4);
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.output_bytes, CsrFile::open(&ecsr).unwrap().file_bytes());
        let g = MmapCsrSource::open(&ecsr).unwrap().load().unwrap();
        assert_eq!(g.num_edges(), 4);
        std::fs::remove_file(&el).ok();
        std::fs::remove_file(&ecsr).ok();
    }

    #[test]
    fn pack_surfaces_parse_errors_with_line_numbers() {
        let dir = std::env::temp_dir().join("euler_bench_pack_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("broken.el");
        std::fs::write(&el, "0 1\nnot an edge\n").unwrap();
        let err = pack_edge_list(&el, &dir.join("broken.ecsr")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        std::fs::remove_file(&el).ok();
    }
}
