//! # euler-bench
//!
//! Benchmark and experiment harness for the partition-centric Euler circuit
//! reproduction. There is one binary per table/figure of the paper's
//! evaluation (run them with `cargo run --release -p euler-bench --bin
//! <name> [scale_shift]`), plus Criterion micro-benchmarks under `benches/`.
//!
//! Every harness works on the scaled-down G-family of
//! [`euler_gen::configs::PAPER_CONFIGS`]; the optional `scale_shift` CLI
//! argument moves the R-MAT scale up or down (each step doubles/halves the
//! vertex count; 0 is the default single-host size, negative values shrink it
//! for quick runs).

#![warn(missing_docs)]

pub mod harness;
pub mod pack;

pub use harness::{
    parse_scale_shift, prepared_input, round_robin_working_partitions, single_working_partition,
    ExperimentInput, DEFAULT_SCALE_SHIFT,
};
pub use pack::{pack_edge_list, PackStats};
