//! Shared plumbing for the experiment binaries.

use euler_gen::configs::GraphConfig;
use euler_gen::eulerize::EulerizeReport;
use euler_graph::{Graph, PartitionAssignment};
use euler_partition::{LdgPartitioner, Partitioner};

/// Default scale shift applied to the paper configurations when none is given
/// on the command line. `-4` keeps every harness in the seconds range on a
/// laptop while preserving the partition counts and cut regimes.
pub const DEFAULT_SCALE_SHIFT: i32 = -4;

/// A generated, Eulerized and partitioned experiment input.
pub struct ExperimentInput {
    /// The paper configuration this input mirrors.
    pub config: GraphConfig,
    /// The Eulerized graph.
    pub graph: Graph,
    /// The partition assignment (LDG, `config.partitions` parts).
    pub assignment: PartitionAssignment,
    /// Eulerizer statistics.
    pub eulerize: EulerizeReport,
    /// The scale shift used.
    pub scale_shift: i32,
}

/// Parses the optional `scale_shift` CLI argument (first positional argument
/// or the value after `--scale-shift`).
pub fn parse_scale_shift() -> i32 {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter().skip(1);
    while let Some(a) = iter.next() {
        if a == "--scale-shift" {
            if let Some(v) = iter.next() {
                if let Ok(s) = v.parse() {
                    return s;
                }
            }
        } else if let Ok(s) = a.parse() {
            return s;
        }
    }
    DEFAULT_SCALE_SHIFT
}

/// Generates, Eulerizes and partitions the given paper configuration.
pub fn prepared_input(config: GraphConfig, scale_shift: i32) -> ExperimentInput {
    let (graph, eulerize) = config.generate(scale_shift);
    let assignment = LdgPartitioner::new(config.partitions).partition(&graph);
    ExperimentInput { config, graph, assignment, eulerize, scale_shift }
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_gen::configs::PAPER_CONFIGS;

    #[test]
    fn prepared_input_is_eulerian_and_partitioned() {
        let input = prepared_input(PAPER_CONFIGS[0], -8);
        assert!(euler_graph::is_eulerian(&input.graph).is_ok());
        assert_eq!(input.assignment.num_partitions(), PAPER_CONFIGS[0].partitions);
        assert_eq!(input.assignment.num_vertices(), input.graph.num_vertices());
    }

    #[test]
    fn default_scale_shift_is_negative() {
        assert!(DEFAULT_SCALE_SHIFT < 0);
    }

    #[test]
    fn secs_formats_three_decimals() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
