//! Shared plumbing for the experiment binaries.

use euler_core::WorkingPartition;
use euler_gen::configs::GraphConfig;
use euler_gen::eulerize::EulerizeReport;
use euler_graph::{Graph, PartitionAssignment, PartitionedGraph};
use euler_partition::{LdgPartitioner, Partitioner};

/// Default scale shift applied to the paper configurations when none is given
/// on the command line. `-4` keeps every harness in the seconds range on a
/// laptop while preserving the partition counts and cut regimes.
pub const DEFAULT_SCALE_SHIFT: i32 = -4;

/// A generated, Eulerized and partitioned experiment input.
pub struct ExperimentInput {
    /// The paper configuration this input mirrors.
    pub config: GraphConfig,
    /// The Eulerized graph.
    pub graph: Graph,
    /// The partition assignment (LDG, `config.partitions` parts).
    pub assignment: PartitionAssignment,
    /// Eulerizer statistics.
    pub eulerize: EulerizeReport,
    /// The scale shift used.
    pub scale_shift: i32,
}

/// Parses the optional `scale_shift` CLI argument (first positional argument
/// or the value after `--scale-shift`).
pub fn parse_scale_shift() -> i32 {
    let args: Vec<String> = std::env::args().collect();
    let mut iter = args.iter().skip(1);
    while let Some(a) = iter.next() {
        if a == "--scale-shift" {
            if let Some(v) = iter.next() {
                if let Ok(s) = v.parse() {
                    return s;
                }
            }
        } else if let Ok(s) = a.parse() {
            return s;
        }
    }
    DEFAULT_SCALE_SHIFT
}

/// Generates, Eulerizes and partitions the given paper configuration.
pub fn prepared_input(config: GraphConfig, scale_shift: i32) -> ExperimentInput {
    let (graph, eulerize) = config.generate(scale_shift);
    let assignment = LdgPartitioner::new(config.partitions).partition(&graph);
    ExperimentInput { config, graph, assignment, eulerize, scale_shift }
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The whole graph as one Phase-1 working partition (no remote edges) —
/// the single-partition workload shape used by the Phase-1 kernel benches.
pub fn single_working_partition(g: &Graph) -> Vec<WorkingPartition> {
    let a = PartitionAssignment::from_labels(vec![0; g.num_vertices() as usize], 1)
        .expect("single-label assignment is always valid");
    let pg = PartitionedGraph::from_assignment(g, &a).expect("assignment covers the graph");
    pg.partitions().iter().map(WorkingPartition::from_partition).collect()
}

/// Level-0 working partitions for a `parts`-way round-robin vertex split —
/// the multi-partition workload shape used by the Phase-1 kernel benches.
pub fn round_robin_working_partitions(g: &Graph, parts: u32) -> Vec<WorkingPartition> {
    let labels: Vec<u32> = (0..g.num_vertices()).map(|v| (v % parts as u64) as u32).collect();
    let a = PartitionAssignment::from_labels(labels, parts).expect("labels in range");
    let pg = PartitionedGraph::from_assignment(g, &a).expect("assignment covers the graph");
    pg.partitions().iter().map(WorkingPartition::from_partition).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_gen::configs::PAPER_CONFIGS;

    #[test]
    fn prepared_input_is_eulerian_and_partitioned() {
        let input = prepared_input(PAPER_CONFIGS[0], -8);
        assert!(euler_graph::is_eulerian(&input.graph).is_ok());
        assert_eq!(input.assignment.num_partitions(), PAPER_CONFIGS[0].partitions);
        assert_eq!(input.assignment.num_vertices(), input.graph.num_vertices());
    }

    #[test]
    fn default_scale_shift_shrinks_the_paper_sizes() {
        // The compiled-in default must shrink (not grow) the paper
        // configurations so every harness stays laptop-sized out of the box.
        // Guards against someone bumping the constant past zero.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(
                DEFAULT_SCALE_SHIFT < 0,
                "default scale shift must shrink the inputs, got {DEFAULT_SCALE_SHIFT}"
            );
        }
    }

    #[test]
    fn secs_formats_three_decimals() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
