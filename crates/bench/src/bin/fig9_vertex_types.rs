//! Reproduces Fig. 9: the composition of every partition at the start of each
//! merge level of G50/P8 — odd/even boundary vertices, internal vertices, and
//! remote edges.

use euler_bench::{parse_scale_shift, prepared_input};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig};
use euler_gen::configs::GraphConfig;
use euler_metrics::{Report, Table};

fn main() {
    let shift = parse_scale_shift();
    let config = GraphConfig::by_name("G50/P8").expect("known config");
    let input = prepared_input(config, shift);
    let (_, run) =
        run_with_backend(&input.graph, &input.assignment, &EulerConfig::default(), &InProcessBackend::new())
            .expect("eulerized");

    let mut report = Report::new("fig9_vertex_types");
    report.note(format!("G50/P8 scaled with scale_shift = {shift}; counts at the start of each level"));
    let mut table = Table::new(
        "Fig. 9: vertices and edges per partition, per level (G50/P8)",
        &["Level", "Partition", "Even internal", "Even boundary", "Odd boundary", "Local edges", "Remote edges"],
    );
    for r in &run.per_partition {
        table.row(&[
            r.level.to_string(),
            r.partition.to_string(),
            r.counts.even_internal.to_string(),
            r.counts.even_boundary.to_string(),
            r.counts.odd_boundary.to_string(),
            r.counts.local_edges.to_string(),
            r.counts.remote_edges.to_string(),
        ]);
    }
    report.add_table(table);
    let ratios: Vec<String> = run
        .level(0)
        .iter()
        .map(|r| format!("{:.1}", r.counts.remote_edges as f64 / r.counts.total_vertices().max(1) as f64))
        .collect();
    report.note(format!(
        "remote-edge : vertex ratio per leaf partition (paper observes ~7x): [{}]",
        ratios.join(", ")
    ));
    println!("{}", report.render());
}
