//! Overhead measurement for the `EulerPipeline` API redesign.
//!
//! The redesign routed every driver through one shared merge-tree walk
//! behind the builder API. This harness checks the abstraction costs
//! nothing: it times the same workloads through (a) the `Graph`-free core
//! walk `run_on_partitioned` over a pre-built partition view — the leanest
//! path there is — (b) the mid-level `run_with_backend` call (adds the
//! Eulerian pre-check and partition-view construction), and (c) the full
//! `EulerPipeline` builder with its `GraphSource` / staged-output plumbing,
//! and writes the paired timings to `BENCH_pipeline.json`.
//!
//! The `out_of_core` section exercises the zero-`Graph` spine: an mmap'd
//! `.ecsr` source partitioned by streaming LDG, once unbounded and once
//! under a fragment `memory_budget` far below the total fragment bytes,
//! recording the real peak resident fragment Longs and the spill traffic
//! (and asserting the two runs' circuits are bit-identical).
//!
//! The `w_streaming` section replays the same mmap workload through the
//! one-pass W-streaming Phase 1 (`streaming_phase1(true)`), recording the
//! chain machine's exact peak-resident traversal Longs next to the dense
//! run's wall time and asserting circuit validity in-bench.
//!
//! The `fault_tolerance` section times the distributed wire-transport path
//! on the R-MAT workload three ways — checkpointing off, checkpointing on,
//! and a kill-and-resume recovery — asserting all three stay bit-identical
//! to the in-process run.
//!
//! Usage: `cargo run --release -p euler-bench --bin bench_pipeline [reps]`
//! (default 5 repetitions; the minimum over reps is reported).

use euler_core::{
    run_on_partitioned, run_with_backend, EulerConfig, EulerPipeline, InProcessBackend,
    Parallelism,
};
use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use euler_gen::synthetic;
use euler_graph::{Graph, InMemorySource, PartitionAssignment, PartitionedGraph};
use euler_metrics::json::Value;
use euler_partition::{LdgPartitioner, Partitioner};
use std::time::Instant;

/// Minimum wall time over `reps` runs of `f`, plus the edge count of the last
/// run's circuit (sanity check that every path does the same work).
fn time_runs(reps: u32, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut edges = 0;
    for _ in 0..reps {
        let start = Instant::now();
        edges = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, edges)
}

fn bench_workload(name: &str, g: &Graph, assignment: &PartitionAssignment, reps: u32) -> Value {
    let config = EulerConfig::default();

    let pg = PartitionedGraph::from_assignment(g, assignment).unwrap();
    let (direct_s, direct_edges) = time_runs(reps, || {
        let (result, _) = run_on_partitioned(&pg, &config, &InProcessBackend::new()).unwrap();
        result.total_edges()
    });
    let (mid_s, mid_edges) = time_runs(reps, || {
        let (result, _) = run_with_backend(g, assignment, &config, &InProcessBackend::new()).unwrap();
        result.total_edges()
    });
    // The builder pipeline, constructed once (the graph copy into the
    // InMemorySource happens at build time); each run exercises the
    // source/partition staging plus the shared walk.
    let pipeline = EulerPipeline::builder()
        .graph(g)
        .assignment(assignment.clone())
        .config(config.clone())
        .build()
        .unwrap();
    let (builder_s, builder_edges) = time_runs(reps, || {
        pipeline.run().unwrap().circuit.result.total_edges()
    });
    // The deterministic intra-partition walker through the same builder: its
    // win lives on the narrow top levels (and multi-core hosts); here it is
    // recorded so regressions in the mode's plumbing overhead show up.
    let intra_pipeline = EulerPipeline::builder()
        .graph(g)
        .assignment(assignment.clone())
        .config(config.clone())
        .backend(InProcessBackend::new().with_parallelism(Parallelism::IntraPartition).with_threads(8))
        .build()
        .unwrap();
    let (intra_s, intra_edges) = time_runs(reps, || {
        intra_pipeline.run().unwrap().circuit.result.total_edges()
    });

    assert_eq!(direct_edges, mid_edges, "paths must cover the same edges");
    assert_eq!(direct_edges, builder_edges, "paths must cover the same edges");
    assert_eq!(direct_edges, intra_edges, "paths must cover the same edges");
    // The builder and run_with_backend do the same work (Eulerian check +
    // partition-view build + walk); run_on_partitioned is the floor that
    // skips both graph-side steps.
    let overhead = builder_s / mid_s - 1.0;
    println!(
        "{name}: {} edges, {} parts | run_on_partitioned {direct_s:.3}s | \
         run_with_backend {mid_s:.3}s | builder {builder_s:.3}s | builder overhead {:+.1}% | \
         intra-parallel[8t] {intra_s:.3}s",
        g.num_edges(),
        assignment.num_partitions(),
        overhead * 100.0
    );
    Value::obj(vec![
        ("workload", Value::str(name)),
        ("edges", Value::Num(g.num_edges() as f64)),
        ("partitions", Value::Num(assignment.num_partitions() as f64)),
        ("run_on_partitioned_seconds", Value::Num(direct_s)),
        ("run_with_backend_seconds", Value::Num(mid_s)),
        ("pipeline_builder_seconds", Value::Num(builder_s)),
        ("builder_overhead_fraction", Value::Num(overhead)),
        ("intra_parallel_8t_seconds", Value::Num(intra_s)),
    ])
}

fn main() {
    // At least one repetition, or the reported minima would be infinite.
    let reps: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5).max(1);

    let (rmat, _) = eulerize(&RmatGenerator::new(16).with_avg_degree(8.0).with_seed(11).generate());
    let torus = synthetic::torus_grid(354, 354);
    let workloads: Vec<(&str, &Graph, u32)> =
        vec![("rmat16_eulerized_8_parts", &rmat, 8), ("torus_354x354_4_parts", &torus, 4)];

    let mut rows = Vec::new();
    for (name, g, parts) in workloads {
        let assignment = LdgPartitioner::new(parts).partition(g);
        rows.push(bench_workload(name, g, &assignment, reps));
    }

    // Sanity check the file-source staging too: load a mid-sized edge list
    // through the chunked reader and compare against the resident source.
    let dir = std::env::temp_dir().join("euler_bench_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("torus.el");
    euler_graph::io::write_edge_list_file(&torus, &path).expect("write edge list");
    let a4 = LdgPartitioner::new(4).partition(&torus);
    let file_pipeline = EulerPipeline::builder()
        .source(euler_graph::EdgeListFileSource::new(&path))
        .assignment(a4.clone())
        .build()
        .unwrap();
    let (file_s, file_edges) = time_runs(reps, || {
        file_pipeline.run().unwrap().circuit.result.total_edges()
    });
    let mem_pipeline =
        EulerPipeline::builder().source(InMemorySource::new(torus.clone())).assignment(a4).build().unwrap();
    let (mem_s, mem_edges) = time_runs(reps, || {
        mem_pipeline.run().unwrap().circuit.result.total_edges()
    });
    assert_eq!(file_edges, mem_edges);
    println!(
        "graph_source: edge-list file {file_s:.3}s vs in-memory {mem_s:.3}s (chunked load included)"
    );
    rows.push(Value::obj(vec![
        ("workload", Value::str("torus_354x354_source_comparison")),
        ("edges", Value::Num(torus.num_edges() as f64)),
        ("partitions", Value::Num(4.0)),
        ("edge_list_file_source_seconds", Value::Num(file_s)),
        ("in_memory_source_seconds", Value::Num(mem_s)),
    ]));
    std::fs::remove_file(&path).ok();

    // --- Out-of-core section: the zero-Graph spine under a fragment budget.
    // An mmap'd .ecsr source partitioned by *streaming* LDG (no Graph ever
    // materialised), once with unbounded fragment memory and once with a
    // budget far below the total fragment bytes — recording the real peak
    // resident fragment Longs and the spill traffic alongside wall time.
    // Bit-identity between the two runs is asserted in-bench.
    let csr_path = dir.join("torus.ecsr");
    euler_graph::write_csr_file(&torus, &csr_path).expect("write .ecsr");
    let streamed_pipeline = |budget: Option<u64>| {
        let mut b = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&csr_path).expect("open .ecsr"))
            .partitioner(LdgPartitioner::new(4))
            .config(EulerConfig::default().sequential());
        if let Some(longs) = budget {
            b = b.memory_budget(longs);
        }
        b.build().unwrap()
    };
    let unbounded = streamed_pipeline(None);
    let mut last_unbounded = None;
    let (unbounded_s, unbounded_edges) = time_runs(reps, || {
        let run = unbounded.run().unwrap();
        let edges = run.circuit.result.total_edges();
        last_unbounded = Some(run);
        edges
    });
    let reference = last_unbounded.expect("at least one repetition ran");
    let budget = reference.circuit.fragment_disk_longs / 8;
    let bounded = streamed_pipeline(Some(budget));
    let mut last_bounded = None;
    let (bounded_s, bounded_edges) = time_runs(reps, || {
        let run = bounded.run().unwrap();
        let edges = run.circuit.result.total_edges();
        last_bounded = Some(run);
        edges
    });
    let spilled = last_bounded.expect("at least one repetition ran");
    assert_eq!(unbounded_edges, bounded_edges);
    assert_eq!(
        spilled.circuit.result.circuits, reference.circuit.result.circuits,
        "spill-backed circuits must be bit-identical"
    );
    assert!(
        reference.partition.partitioner.contains("streamed"),
        "the bench must exercise the zero-Graph path, got {}",
        reference.partition.partitioner
    );
    let stats = spilled.circuit.fragment_stats;
    println!(
        "out_of_core: streamed-ldg mmap run {unbounded_s:.3}s unbounded vs {bounded_s:.3}s \
         under a {budget}-Long budget | peak resident {} of {} Longs | {} fragments spilled \
         ({} Longs written, {} reloaded)",
        stats.peak_resident_longs,
        spilled.circuit.fragment_disk_longs,
        stats.spilled_fragments,
        stats.spill_write_longs,
        stats.spill_read_longs,
    );
    let out_of_core = Value::obj(vec![
        ("workload", Value::str("torus_354x354_mmap_streamed_ldg_4_parts")),
        ("edges", Value::Num(torus.num_edges() as f64)),
        ("memory_budget_longs", Value::Num(budget as f64)),
        ("unbounded_seconds", Value::Num(unbounded_s)),
        ("bounded_seconds", Value::Num(bounded_s)),
        ("fragment_disk_longs", Value::Num(spilled.circuit.fragment_disk_longs as f64)),
        ("peak_resident_longs", Value::Num(stats.peak_resident_longs as f64)),
        (
            "unbounded_peak_resident_longs",
            Value::Num(reference.circuit.fragment_stats.peak_resident_longs as f64),
        ),
        ("spilled_fragments", Value::Num(stats.spilled_fragments as f64)),
        ("spill_write_longs", Value::Num(stats.spill_write_longs as f64)),
        ("spill_read_longs", Value::Num(stats.spill_read_longs as f64)),
        ("spill_errors", Value::Num(stats.spill_errors as f64)),
        // Merge-tree-aware eviction: the pipeline installs a read schedule,
        // so every eviction is scheduled (FIFO counts zero) and the shadow
        // simulation reports the reload Longs saved over plain FIFO.
        ("evictions_scheduled", Value::Num(stats.evictions_scheduled as f64)),
        ("evictions_fifo", Value::Num(stats.evictions_fifo as f64)),
        ("reload_longs_avoided", Value::Num(stats.reload_longs_avoided as f64)),
    ]);

    // --- W-streaming section: same mmap'd .ecsr + streaming-LDG workload,
    // but Phase 1 replaced by the one-pass chain machine — no dense arena,
    // only O(n log n) resident traversal Longs. Timed against the dense
    // bounded run above; circuit validity (Euler circuit over the exact
    // edge multiset) is asserted in-bench, and the machine's exact
    // peak-resident-Longs counter is recorded next to the dense path's
    // fragment peak so the RAM-vs-wall-time trade is visible in one row.
    let wstream_pipeline = EulerPipeline::builder()
        .source(euler_graph::MmapCsrSource::open(&csr_path).expect("open .ecsr"))
        .partitioner(LdgPartitioner::new(4))
        .config(EulerConfig::default().sequential())
        .streaming_phase1(true)
        .memory_budget(budget)
        .build()
        .unwrap();
    let mut last_wstream = None;
    let (wstream_s, wstream_edges) = time_runs(reps, || {
        let run = wstream_pipeline.run().unwrap();
        let edges = run.circuit.result.total_edges();
        last_wstream = Some(run);
        edges
    });
    let wstream_run = last_wstream.expect("at least one repetition ran");
    assert_eq!(wstream_edges, unbounded_edges, "w-streaming must cover the same edge multiset");
    euler_core::verify::verify_result(&torus, &wstream_run.circuit.result)
        .expect("w-streaming circuit must verify against the input graph");
    let wstats = wstream_run.merge.wstream.expect("streaming_phase1 run reports WStreamStats");
    assert_eq!(wstats.edges_ingested, torus.num_edges() as u64);
    println!(
        "w_streaming: one-pass chain machine {wstream_s:.3}s vs dense bounded {bounded_s:.3}s | \
         peak traversal state {} Longs (dense arena would hold all {} edges) | {} fragments \
         from {} flushes",
        wstats.peak_resident_longs,
        torus.num_edges(),
        wstats.fragments_emitted,
        wstats.open_chain_flushes,
    );
    let w_streaming = Value::obj(vec![
        ("workload", Value::str("torus_354x354_mmap_streamed_ldg_4_parts_wstream")),
        ("edges", Value::Num(torus.num_edges() as f64)),
        ("memory_budget_longs", Value::Num(budget as f64)),
        ("wstream_seconds", Value::Num(wstream_s)),
        ("dense_bounded_seconds", Value::Num(bounded_s)),
        ("peak_resident_longs", Value::Num(wstats.peak_resident_longs as f64)),
        ("entries_streamed", Value::Num(wstats.entries_streamed as f64)),
        ("edges_ingested", Value::Num(wstats.edges_ingested as f64)),
        ("fragments_emitted", Value::Num(wstats.fragments_emitted as f64)),
        ("cycles_emitted", Value::Num(wstats.cycles_emitted as f64)),
        ("open_chain_flushes", Value::Num(wstats.open_chain_flushes as f64)),
        ("residual_local_edges", Value::Num(wstats.residual_local_edges as f64)),
        ("residual_remote_edges", Value::Num(wstats.residual_remote_edges as f64)),
        (
            "spilled_fragments",
            Value::Num(wstream_run.circuit.fragment_stats.spilled_fragments as f64),
        ),
    ]);
    std::fs::remove_file(&csr_path).ok();

    // --- Fault-tolerance section: the distributed (wire-transport) path on
    // the standard R-MAT input. Three configurations of the same run —
    // checkpointing off, checkpointing on, and a kill-and-resume where a
    // worker dies at superstep 1 and the fleet rolls back — timed against
    // each other, with bit-identity to the in-process run asserted in-bench.
    let rmat_assignment = LdgPartitioner::new(8).partition(&rmat);
    let in_proc_reference = EulerPipeline::builder()
        .graph(&rmat)
        .assignment(rmat_assignment.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let ckpt_dir = dir.join("ft-ckpts");
    let distributed = |checkpoint: bool, plan: Option<euler_bsp::FaultPlan>| {
        let mut backend = euler_core::BspBackend::with_engine(euler_bsp::BspConfig::with_workers(2))
            .with_transport(std::sync::Arc::new(euler_bsp::MemTransport));
        if checkpoint {
            backend = backend.checkpoint_dir(&ckpt_dir);
        }
        if let Some(plan) = plan {
            backend = backend.with_fault_plan(plan);
        }
        EulerPipeline::builder()
            .graph(&rmat)
            .assignment(rmat_assignment.clone())
            .backend(backend)
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    let mut ft_runs = Vec::new();
    let mut ft_row = vec![
        ("workload", Value::str("rmat16_eulerized_8_parts_2_workers_mem_transport")),
        ("edges", Value::Num(rmat.num_edges() as f64)),
    ];
    for (label, checkpoint, plan) in [
        ("checkpoint_off", false, None),
        ("checkpoint_on", true, None),
        ("kill_and_resume", true, Some(euler_bsp::FaultPlan::kill_at(1, 1))),
    ] {
        let mut last = None;
        let (secs, _) = time_runs(reps, || {
            let run = distributed(checkpoint, plan);
            let edges = run.circuit.result.total_edges();
            last = Some(run);
            edges
        });
        let run = last.expect("at least one repetition ran");
        assert_eq!(
            run.circuit.result.circuits, in_proc_reference.circuit.result.circuits,
            "distributed `{label}` run must be bit-identical to the in-process run"
        );
        assert_eq!(run.merge.total_transfer_longs, in_proc_reference.merge.total_transfer_longs);
        let recovery = run.merge.engine.as_ref().expect("engine stats").recovery;
        if plan.is_some() {
            assert!(recovery.restarts >= 1, "the injected kill was never observed");
        }
        println!(
            "fault_tolerance/{label}: {secs:.3}s | restarts {} | checkpoint Longs written {} \
             restored {}",
            recovery.restarts, recovery.checkpoint_longs_written, recovery.checkpoint_longs_restored
        );
        ft_row.push(match label {
            "checkpoint_off" => ("checkpoint_off_seconds", Value::Num(secs)),
            "checkpoint_on" => ("checkpoint_on_seconds", Value::Num(secs)),
            _ => ("kill_and_resume_seconds", Value::Num(secs)),
        });
        ft_runs.push((label, recovery));
    }
    let (_, ckpt_recovery) = ft_runs[1];
    let (_, kill_recovery) = ft_runs[2];
    ft_row.push(("checkpoint_longs_written", Value::Num(ckpt_recovery.checkpoint_longs_written as f64)));
    ft_row.push(("kill_restarts", Value::Num(kill_recovery.restarts as f64)));
    ft_row.push((
        "kill_checkpoint_longs_restored",
        Value::Num(kill_recovery.checkpoint_longs_restored as f64),
    ));
    let fault_tolerance = Value::obj(ft_row);

    let doc = Value::obj(vec![
        ("experiment", Value::str("pipeline_api_overhead")),
        (
            "description",
            Value::str(
                "End-to-end wall time of the same runs through the Graph-free core walk \
                 run_on_partitioned (over a pre-built partition view), the mid-level \
                 run_with_backend call, and the EulerPipeline builder; minimum over \
                 repetitions. The builder must add no measurable overhead over \
                 run_with_backend, which does the same graph-side work. The out_of_core \
                 section runs the zero-Graph spine (mmap .ecsr + streaming LDG) with and \
                 without a fragment memory_budget, recording peak resident fragment Longs \
                 and spill traffic; bit-identity between the two runs is asserted in-bench. \
                 The w_streaming section replays the same workload through the one-pass \
                 W-streaming Phase 1 (streaming_phase1), recording the chain machine's exact \
                 peak-resident traversal Longs against the dense run's wall time; circuit \
                 validity over the full edge multiset is asserted in-bench. \
                 The fault_tolerance section times the distributed wire-transport path with \
                 checkpointing off, on, and through a kill-and-resume recovery, asserting \
                 bit-identity to the in-process run in all three.",
            ),
        ),
        ("repetitions", Value::Num(reps as f64)),
        ("results", Value::Arr(rows)),
        ("out_of_core", out_of_core),
        ("w_streaming", w_streaming),
        ("fault_tolerance", fault_tolerance),
    ]);
    std::fs::write("BENCH_pipeline.json", doc.to_pretty() + "\n").expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
