//! Overhead measurement for the `EulerPipeline` API redesign.
//!
//! The redesign routed every driver through one shared merge-tree walk
//! behind the builder API. This harness checks the abstraction costs
//! nothing: it times the same workloads through (a) the `Graph`-free core
//! walk `run_on_partitioned` over a pre-built partition view — the leanest
//! path there is — (b) the mid-level `run_with_backend` call (adds the
//! Eulerian pre-check and partition-view construction), and (c) the full
//! `EulerPipeline` builder with its `GraphSource` / staged-output plumbing,
//! and writes the paired timings to `BENCH_pipeline.json`.
//!
//! The `out_of_core` section exercises the zero-`Graph` spine: an mmap'd
//! `.ecsr` source partitioned by streaming LDG, once unbounded and once
//! under a fragment `memory_budget` far below the total fragment bytes,
//! recording the real peak resident fragment Longs and the spill traffic
//! (and asserting the two runs' circuits are bit-identical).
//!
//! Usage: `cargo run --release -p euler-bench --bin bench_pipeline [reps]`
//! (default 5 repetitions; the minimum over reps is reported).

use euler_core::{
    run_on_partitioned, run_with_backend, EulerConfig, EulerPipeline, InProcessBackend,
    Parallelism,
};
use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use euler_gen::synthetic;
use euler_graph::{Graph, InMemorySource, PartitionAssignment, PartitionedGraph};
use euler_metrics::json::Value;
use euler_partition::{LdgPartitioner, Partitioner};
use std::time::Instant;

/// Minimum wall time over `reps` runs of `f`, plus the edge count of the last
/// run's circuit (sanity check that every path does the same work).
fn time_runs(reps: u32, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut edges = 0;
    for _ in 0..reps {
        let start = Instant::now();
        edges = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, edges)
}

fn bench_workload(name: &str, g: &Graph, assignment: &PartitionAssignment, reps: u32) -> Value {
    let config = EulerConfig::default();

    let pg = PartitionedGraph::from_assignment(g, assignment).unwrap();
    let (direct_s, direct_edges) = time_runs(reps, || {
        let (result, _) = run_on_partitioned(&pg, &config, &InProcessBackend::new()).unwrap();
        result.total_edges()
    });
    let (mid_s, mid_edges) = time_runs(reps, || {
        let (result, _) = run_with_backend(g, assignment, &config, &InProcessBackend::new()).unwrap();
        result.total_edges()
    });
    // The builder pipeline, constructed once (the graph copy into the
    // InMemorySource happens at build time); each run exercises the
    // source/partition staging plus the shared walk.
    let pipeline = EulerPipeline::builder()
        .graph(g)
        .assignment(assignment.clone())
        .config(config)
        .build()
        .unwrap();
    let (builder_s, builder_edges) = time_runs(reps, || {
        pipeline.run().unwrap().circuit.result.total_edges()
    });
    // The deterministic intra-partition walker through the same builder: its
    // win lives on the narrow top levels (and multi-core hosts); here it is
    // recorded so regressions in the mode's plumbing overhead show up.
    let intra_pipeline = EulerPipeline::builder()
        .graph(g)
        .assignment(assignment.clone())
        .config(config)
        .backend(InProcessBackend::new().with_parallelism(Parallelism::IntraPartition).with_threads(8))
        .build()
        .unwrap();
    let (intra_s, intra_edges) = time_runs(reps, || {
        intra_pipeline.run().unwrap().circuit.result.total_edges()
    });

    assert_eq!(direct_edges, mid_edges, "paths must cover the same edges");
    assert_eq!(direct_edges, builder_edges, "paths must cover the same edges");
    assert_eq!(direct_edges, intra_edges, "paths must cover the same edges");
    // The builder and run_with_backend do the same work (Eulerian check +
    // partition-view build + walk); run_on_partitioned is the floor that
    // skips both graph-side steps.
    let overhead = builder_s / mid_s - 1.0;
    println!(
        "{name}: {} edges, {} parts | run_on_partitioned {direct_s:.3}s | \
         run_with_backend {mid_s:.3}s | builder {builder_s:.3}s | builder overhead {:+.1}% | \
         intra-parallel[8t] {intra_s:.3}s",
        g.num_edges(),
        assignment.num_partitions(),
        overhead * 100.0
    );
    Value::obj(vec![
        ("workload", Value::str(name)),
        ("edges", Value::Num(g.num_edges() as f64)),
        ("partitions", Value::Num(assignment.num_partitions() as f64)),
        ("run_on_partitioned_seconds", Value::Num(direct_s)),
        ("run_with_backend_seconds", Value::Num(mid_s)),
        ("pipeline_builder_seconds", Value::Num(builder_s)),
        ("builder_overhead_fraction", Value::Num(overhead)),
        ("intra_parallel_8t_seconds", Value::Num(intra_s)),
    ])
}

fn main() {
    // At least one repetition, or the reported minima would be infinite.
    let reps: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5).max(1);

    let (rmat, _) = eulerize(&RmatGenerator::new(16).with_avg_degree(8.0).with_seed(11).generate());
    let torus = synthetic::torus_grid(354, 354);
    let workloads: Vec<(&str, &Graph, u32)> =
        vec![("rmat16_eulerized_8_parts", &rmat, 8), ("torus_354x354_4_parts", &torus, 4)];

    let mut rows = Vec::new();
    for (name, g, parts) in workloads {
        let assignment = LdgPartitioner::new(parts).partition(g);
        rows.push(bench_workload(name, g, &assignment, reps));
    }

    // Sanity check the file-source staging too: load a mid-sized edge list
    // through the chunked reader and compare against the resident source.
    let dir = std::env::temp_dir().join("euler_bench_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("torus.el");
    euler_graph::io::write_edge_list_file(&torus, &path).expect("write edge list");
    let a4 = LdgPartitioner::new(4).partition(&torus);
    let file_pipeline = EulerPipeline::builder()
        .source(euler_graph::EdgeListFileSource::new(&path))
        .assignment(a4.clone())
        .build()
        .unwrap();
    let (file_s, file_edges) = time_runs(reps, || {
        file_pipeline.run().unwrap().circuit.result.total_edges()
    });
    let mem_pipeline =
        EulerPipeline::builder().source(InMemorySource::new(torus.clone())).assignment(a4).build().unwrap();
    let (mem_s, mem_edges) = time_runs(reps, || {
        mem_pipeline.run().unwrap().circuit.result.total_edges()
    });
    assert_eq!(file_edges, mem_edges);
    println!(
        "graph_source: edge-list file {file_s:.3}s vs in-memory {mem_s:.3}s (chunked load included)"
    );
    rows.push(Value::obj(vec![
        ("workload", Value::str("torus_354x354_source_comparison")),
        ("edges", Value::Num(torus.num_edges() as f64)),
        ("partitions", Value::Num(4.0)),
        ("edge_list_file_source_seconds", Value::Num(file_s)),
        ("in_memory_source_seconds", Value::Num(mem_s)),
    ]));
    std::fs::remove_file(&path).ok();

    // --- Out-of-core section: the zero-Graph spine under a fragment budget.
    // An mmap'd .ecsr source partitioned by *streaming* LDG (no Graph ever
    // materialised), once with unbounded fragment memory and once with a
    // budget far below the total fragment bytes — recording the real peak
    // resident fragment Longs and the spill traffic alongside wall time.
    // Bit-identity between the two runs is asserted in-bench.
    let csr_path = dir.join("torus.ecsr");
    euler_graph::write_csr_file(&torus, &csr_path).expect("write .ecsr");
    let streamed_pipeline = |budget: Option<u64>| {
        let mut b = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&csr_path).expect("open .ecsr"))
            .partitioner(LdgPartitioner::new(4))
            .config(EulerConfig::default().sequential());
        if let Some(longs) = budget {
            b = b.memory_budget(longs);
        }
        b.build().unwrap()
    };
    let unbounded = streamed_pipeline(None);
    let mut last_unbounded = None;
    let (unbounded_s, unbounded_edges) = time_runs(reps, || {
        let run = unbounded.run().unwrap();
        let edges = run.circuit.result.total_edges();
        last_unbounded = Some(run);
        edges
    });
    let reference = last_unbounded.expect("at least one repetition ran");
    let budget = reference.circuit.fragment_disk_longs / 8;
    let bounded = streamed_pipeline(Some(budget));
    let mut last_bounded = None;
    let (bounded_s, bounded_edges) = time_runs(reps, || {
        let run = bounded.run().unwrap();
        let edges = run.circuit.result.total_edges();
        last_bounded = Some(run);
        edges
    });
    let spilled = last_bounded.expect("at least one repetition ran");
    assert_eq!(unbounded_edges, bounded_edges);
    assert_eq!(
        spilled.circuit.result.circuits, reference.circuit.result.circuits,
        "spill-backed circuits must be bit-identical"
    );
    assert!(
        reference.partition.partitioner.contains("streamed"),
        "the bench must exercise the zero-Graph path, got {}",
        reference.partition.partitioner
    );
    let stats = spilled.circuit.fragment_stats;
    println!(
        "out_of_core: streamed-ldg mmap run {unbounded_s:.3}s unbounded vs {bounded_s:.3}s \
         under a {budget}-Long budget | peak resident {} of {} Longs | {} fragments spilled \
         ({} Longs written, {} reloaded)",
        stats.peak_resident_longs,
        spilled.circuit.fragment_disk_longs,
        stats.spilled_fragments,
        stats.spill_write_longs,
        stats.spill_read_longs,
    );
    let out_of_core = Value::obj(vec![
        ("workload", Value::str("torus_354x354_mmap_streamed_ldg_4_parts")),
        ("edges", Value::Num(torus.num_edges() as f64)),
        ("memory_budget_longs", Value::Num(budget as f64)),
        ("unbounded_seconds", Value::Num(unbounded_s)),
        ("bounded_seconds", Value::Num(bounded_s)),
        ("fragment_disk_longs", Value::Num(spilled.circuit.fragment_disk_longs as f64)),
        ("peak_resident_longs", Value::Num(stats.peak_resident_longs as f64)),
        (
            "unbounded_peak_resident_longs",
            Value::Num(reference.circuit.fragment_stats.peak_resident_longs as f64),
        ),
        ("spilled_fragments", Value::Num(stats.spilled_fragments as f64)),
        ("spill_write_longs", Value::Num(stats.spill_write_longs as f64)),
        ("spill_read_longs", Value::Num(stats.spill_read_longs as f64)),
        ("spill_errors", Value::Num(stats.spill_errors as f64)),
    ]);
    std::fs::remove_file(&csr_path).ok();

    let doc = Value::obj(vec![
        ("experiment", Value::str("pipeline_api_overhead")),
        (
            "description",
            Value::str(
                "End-to-end wall time of the same runs through the Graph-free core walk \
                 run_on_partitioned (over a pre-built partition view), the mid-level \
                 run_with_backend call, and the EulerPipeline builder; minimum over \
                 repetitions. The builder must add no measurable overhead over \
                 run_with_backend, which does the same graph-side work. The out_of_core \
                 section runs the zero-Graph spine (mmap .ecsr + streaming LDG) with and \
                 without a fragment memory_budget, recording peak resident fragment Longs \
                 and spill traffic; bit-identity between the two runs is asserted in-bench.",
            ),
        ),
        ("repetitions", Value::Num(reps as f64)),
        ("results", Value::Arr(rows)),
        ("out_of_core", out_of_core),
    ]);
    std::fs::write("BENCH_pipeline.json", doc.to_pretty() + "\n").expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
