//! Reproduces Fig. 5: total time versus user compute time for each graph of
//! the G-family, run on the distributed BSP engine with the Spark-like
//! platform cost model. The paper's observation — weak scaling is inefficient
//! and platform overhead is a large fraction of total time — is judged on the
//! shape of the two series.

use euler_bench::{harness::secs, parse_scale_shift, prepared_input};
use euler_bsp::{BspConfig, PlatformCostModel};
use euler_core::{run_with_backend, BspBackend, EulerConfig};
use euler_gen::configs::PAPER_CONFIGS;
use euler_metrics::{Report, Series, Table};

fn main() {
    let shift = parse_scale_shift();
    let mut report = Report::new("fig5_scaling");
    report.note(format!(
        "scale_shift = {shift}; total time = measured wall time + modelled Spark-like \
         platform overhead (scheduling, shuffle, object creation); compute time = measured \
         user compute inside Phase 1/2"
    ));
    let mut total_series = Series::new("total_time_s");
    let mut compute_series = Series::new("compute_time_s");
    let mut table = Table::new(
        "Fig. 5: total vs compute time per graph",
        &["Graph", "Parts", "Supersteps", "Compute (s)", "Wall (s)", "Modelled total (s)", "Shuffle bytes"],
    );
    for (i, config) in PAPER_CONFIGS.iter().enumerate() {
        let input = prepared_input(*config, shift);
        let backend = BspBackend::with_engine(
            BspConfig::one_worker_per_partition().with_cost_model(PlatformCostModel::spark_like()),
        );
        let (_, run) = run_with_backend(&input.graph, &input.assignment, &EulerConfig::default(), &backend)
            .expect("eulerized input");
        let stats = run.engine.as_ref().expect("BSP backend reports engine stats");
        let compute = stats.total_compute_time();
        let total = stats.modelled_total_time();
        table.row(&[
            config.name.to_string(),
            config.partitions.to_string(),
            stats.num_supersteps().to_string(),
            secs(compute),
            secs(stats.total_wall_time),
            secs(total),
            stats.total_remote_bytes().to_string(),
        ]);
        total_series.push(config.name, i as f64, total.as_secs_f64());
        compute_series.push(config.name, i as f64, compute.as_secs_f64());
    }
    report.add_table(table);
    report.add_series(total_series);
    report.add_series(compute_series);
    println!("{}", report.render());
}
