//! Reproduces Fig. 2: the merge tree built by Phase 2's greedy maximal
//! matching, shown for the paper's Fig.-1 example and for the G-family.

use euler_bench::{parse_scale_shift, prepared_input};
use euler_core::MergeTree;
use euler_gen::configs::PAPER_CONFIGS;
use euler_gen::synthetic::paper_fig1;
use euler_graph::{MetaGraph, PartitionedGraph};
use euler_metrics::{Report, Table};

fn main() {
    let shift = parse_scale_shift();
    let mut report = Report::new("fig2_merge_tree");

    // The worked example of Fig. 1/2.
    let (g, a) = paper_fig1();
    let pg = PartitionedGraph::from_assignment(&g, &a).expect("fig1 assignment covers the graph");
    let meta = MetaGraph::from_partitioned(&pg);
    let tree = MergeTree::build(&meta);
    report.note("Fig. 1 example graph (4 partitions):");
    report.note(tree.render());

    let mut table = Table::new(
        "Merge tree shape per input graph",
        &["Graph", "Parts", "Merge levels", "Phase-1 supersteps (paper: 2,3,3,4)"],
    );
    for config in PAPER_CONFIGS {
        let input = prepared_input(config, shift);
        let pg = PartitionedGraph::from_assignment(&input.graph, &input.assignment).expect("covers");
        let tree = MergeTree::build(&MetaGraph::from_partitioned(&pg));
        table.row(&[
            config.name.to_string(),
            config.partitions.to_string(),
            tree.height().to_string(),
            tree.num_supersteps().to_string(),
        ]);
    }
    report.add_table(table);
    println!("{}", report.render());
}
