//! Before/after measurements for the Phase-1 kernel.
//!
//! Two experiments share this binary:
//!
//! 1. **Dense vs reference** — the retained hash-map reference kernel
//!    (`euler_core::phase1::reference::run_phase1_reference`, the "before")
//!    against the dense CSR-arena kernel (`euler_core::phase1::run_phase1`,
//!    the "after") over single partitions up to 1M+ local edges.
//! 2. **Intra-partition parallel** — the sequential dense kernel on a
//!    reused [`Phase1Arena`] against the deterministic wave-speculation
//!    walker (`run_phase1_parallel`, 8 threads) on the same workloads, plus
//!    the allocation-churn saving of arena reuse itself (fresh-allocation
//!    `run_phase1` vs `run_phase1_with_arena`). The walker's output must be
//!    bit-identical to sequential, and an untimed full-content pass asserts
//!    exactly that (ids, kinds, edges, residual coarse edges) on every
//!    workload. **Note:** the parallel speedup is only
//!    observable on a multi-core host — `host_available_parallelism` is
//!    recorded alongside the numbers.
//!
//! Everything goes to `BENCH_phase1.json`.
//!
//! Usage: `cargo run --release -p euler-bench --bin bench_phase1 [reps]`
//! (default 5 repetitions; the minimum over reps is reported).

use euler_bench::{round_robin_working_partitions, single_working_partition};
use euler_core::fragment::FragmentStore;
use euler_core::phase1::reference::run_phase1_reference;
use euler_core::phase1::{run_phase1, run_phase1_parallel, run_phase1_with_arena};
use euler_core::{Phase1Arena, WorkingPartition};
use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use euler_gen::synthetic;
use euler_metrics::json::Value;
use std::time::Instant;

/// Threads the parallel experiment requests (speedup requires the host to
/// actually have them; the JSON records the host's parallelism).
const PARALLEL_THREADS: usize = 8;

/// Minimum wall time over `reps` runs of `kernel` across all partitions of
/// the workload, and the fragment count of the last run (sanity check that
/// the kernels do the same work).
fn time_kernel(
    template: &[WorkingPartition],
    reps: u32,
    mut kernel: impl FnMut(&mut WorkingPartition, &FragmentStore),
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut fragments = 0;
    for _ in 0..reps {
        let mut wps: Vec<WorkingPartition> = template.to_vec();
        let store = FragmentStore::new();
        let start = Instant::now();
        for wp in &mut wps {
            kernel(wp, &store);
        }
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        fragments = store.len();
    }
    (best, fragments)
}

fn main() {
    // At least one repetition, or the reported minima would be infinite.
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5)
        .max(1);
    let (rmat_1m, _) = eulerize(&RmatGenerator::new(18).with_avg_degree(8.0).with_seed(7).generate());
    let torus_1m = synthetic::torus_grid(708, 708);
    let (rmat_4p, _) = eulerize(&RmatGenerator::new(16).with_avg_degree(8.0).with_seed(11).generate());
    let workloads: Vec<(&str, Vec<WorkingPartition>)> = vec![
        ("rmat18_eulerized_1_partition", single_working_partition(&rmat_1m)),
        ("torus_708x708_1_partition", single_working_partition(&torus_1m)),
        ("rmat16_eulerized_4_partitions", round_robin_working_partitions(&rmat_4p, 4)),
    ];

    // --- Experiment 1: dense kernel vs hash-map reference. -----------------
    let mut rows = Vec::new();
    for (name, template) in &workloads {
        let local_edges: u64 = template.iter().map(|wp| wp.local_edges.len() as u64).sum();
        let (ref_s, ref_frags) =
            time_kernel(template, reps, |wp, store| {
                run_phase1_reference(wp, store);
            });
        let (dense_s, dense_frags) = time_kernel(template, reps, |wp, store| {
            run_phase1(wp, store);
        });
        assert_eq!(ref_frags, dense_frags, "kernels must produce identical fragment counts");
        let speedup = ref_s / dense_s;
        println!(
            "{name}: {local_edges} local edges | reference {ref_s:.3}s | dense {dense_s:.3}s | {speedup:.2}x"
        );
        rows.push(Value::obj(vec![
            ("workload", Value::str(*name)),
            ("partitions", Value::Num(template.len() as f64)),
            ("local_edges", Value::Num(local_edges as f64)),
            ("fragments", Value::Num(dense_frags as f64)),
            ("reference_seconds", Value::Num(ref_s)),
            ("dense_seconds", Value::Num(dense_s)),
            ("speedup", Value::Num(speedup)),
        ]));
    }

    // --- Experiment 1b: the mergeInto splice-storm. -------------------------
    // A star of cycles forces ~k internal cycles to splice into one pending
    // fragment: the Vec-splice reference pays Θ(k) tail-shifting per merge
    // (Θ(k²) total), the splice-order index links each in O(1)+O(|cycle|).
    // Sizes triple so super-linear scaling is visible in the "before" column.
    let mut storm_rows = Vec::new();
    for &k in &[1_000u64, 4_000, 16_000] {
        let g = synthetic::star_of_cycles(k);
        let template = single_working_partition(&g);
        let local_edges: u64 = template.iter().map(|wp| wp.local_edges.len() as u64).sum();
        let (ref_s, ref_frags) = time_kernel(&template, reps, |wp, store| {
            run_phase1_reference(wp, store);
        });
        let (dense_s, dense_frags) = time_kernel(&template, reps, |wp, store| {
            run_phase1(wp, store);
        });
        assert_eq!(ref_frags, dense_frags, "kernels must produce identical fragment counts");
        // One untimed run for the splice-index counters (identical for both
        // kernels by construction; the dense one is cheaper to rerun).
        let splice = {
            let mut wps = template.to_vec();
            let store = FragmentStore::new();
            let mut acc = euler_core::phase1::SpliceStats::default();
            for wp in &mut wps {
                let out = run_phase1(wp, &store);
                acc.pivot_lookups += out.splice.pivot_lookups;
                acc.linked_splices += out.splice.linked_splices;
                acc.materialization_longs += out.splice.materialization_longs;
            }
            acc
        };
        let speedup = ref_s / dense_s;
        println!(
            "star_of_cycles_{k}: {local_edges} local edges | {} linked splices | \
             reference {ref_s:.3}s | dense {dense_s:.3}s | {speedup:.2}x",
            splice.linked_splices
        );
        storm_rows.push(Value::obj(vec![
            ("workload", Value::str(format!("star_of_cycles_{k}"))),
            ("core_cycle_len", Value::Num(k as f64)),
            ("local_edges", Value::Num(local_edges as f64)),
            ("fragments", Value::Num(dense_frags as f64)),
            ("pivot_lookups", Value::Num(splice.pivot_lookups as f64)),
            ("linked_splices", Value::Num(splice.linked_splices as f64)),
            ("materialization_longs", Value::Num(splice.materialization_longs as f64)),
            ("reference_seconds", Value::Num(ref_s)),
            ("dense_seconds", Value::Num(dense_s)),
            ("speedup", Value::Num(speedup)),
        ]));
    }

    // --- Experiment 2: arena reuse + intra-partition parallel walker. -------
    // The 1M-edge R-MAT configs are the headline: the 4-way round-robin
    // split is boundary-heavy (many short OB-path walks — the shape the
    // wave walker accelerates), the single partition is one giant spliced
    // cycle (inherently sequential walk; the walker must degrade gracefully,
    // never diverge).
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let par_workloads: Vec<(&str, Vec<WorkingPartition>)> = vec![
        ("rmat18_eulerized_4_partitions", round_robin_working_partitions(&rmat_1m, 4)),
        ("rmat18_eulerized_1_partition", single_working_partition(&rmat_1m)),
        ("torus_708x708_4_partitions", round_robin_working_partitions(&torus_1m, 4)),
    ];
    let mut par_rows = Vec::new();
    for (name, template) in &par_workloads {
        let local_edges: u64 = template.iter().map(|wp| wp.local_edges.len() as u64).sum();
        let (alloc_s, alloc_frags) = time_kernel(template, reps, |wp, store| {
            run_phase1(wp, store);
        });
        let mut seq_arena = Phase1Arena::new();
        let (seq_s, seq_frags) = time_kernel(template, reps, |wp, store| {
            run_phase1_with_arena(wp, store, &mut seq_arena);
        });
        let mut par_arena = Phase1Arena::new();
        let (par_s, par_frags) = time_kernel(template, reps, |wp, store| {
            run_phase1_parallel(wp, store, &mut par_arena, PARALLEL_THREADS);
        });
        assert_eq!(seq_frags, alloc_frags, "arena reuse must not change the fragment count");
        assert_eq!(par_frags, seq_frags, "the wave walker must match the fragment count");
        // Untimed full content check behind the JSON's bit-identity claim:
        // every fragment of a parallel run equals the sequential one.
        {
            let mut seq_wps = template.to_vec();
            let mut par_wps = template.to_vec();
            let seq_store = FragmentStore::new();
            let par_store = FragmentStore::new();
            for wp in &mut seq_wps {
                run_phase1_with_arena(wp, &seq_store, &mut seq_arena);
            }
            for wp in &mut par_wps {
                run_phase1_parallel(wp, &par_store, &mut par_arena, PARALLEL_THREADS);
            }
            // Zero-copy comparison through `with_all` — `snapshot` would
            // deep-clone both stores just to diff them.
            seq_store.with_all(|seq_frags| {
                par_store.with_all(|par_frags| {
                    assert_eq!(par_frags.len(), seq_frags.len());
                    for (p, s) in par_frags.iter().zip(seq_frags) {
                        assert_eq!(p.id, s.id, "{name}: fragment ids diverged");
                        assert_eq!(p.kind, s.kind, "{name}: fragment kinds diverged");
                        assert_eq!(
                            p.edges, s.edges,
                            "{name}: the wave walker must match bit for bit"
                        );
                    }
                })
            });
            assert_eq!(
                seq_wps.iter().map(|w| w.local_edges.clone()).collect::<Vec<_>>(),
                par_wps.iter().map(|w| w.local_edges.clone()).collect::<Vec<_>>(),
                "{name}: residual coarse edges diverged"
            );
        }
        let arena_speedup = alloc_s / seq_s;
        let parallel_speedup = seq_s / par_s;
        println!(
            "{name}: {local_edges} local edges | fresh-alloc {alloc_s:.3}s | arena {seq_s:.3}s \
             ({arena_speedup:.2}x) | parallel[{PARALLEL_THREADS}t] {par_s:.3}s ({parallel_speedup:.2}x)"
        );
        par_rows.push(Value::obj(vec![
            ("workload", Value::str(*name)),
            ("partitions", Value::Num(template.len() as f64)),
            ("local_edges", Value::Num(local_edges as f64)),
            ("fragments", Value::Num(par_frags as f64)),
            ("fresh_alloc_seconds", Value::Num(alloc_s)),
            ("sequential_arena_seconds", Value::Num(seq_s)),
            ("parallel_seconds", Value::Num(par_s)),
            ("arena_reuse_speedup", Value::Num(arena_speedup)),
            ("parallel_speedup", Value::Num(parallel_speedup)),
        ]));
    }

    let doc = Value::obj(vec![
        ("experiment", Value::str("phase1_dense_vs_reference")),
        (
            "description",
            Value::str(
                "Phase-1 kernel wall time, hash-map reference (before) vs dense CSR-arena \
                 rewrite (after); minimum over repetitions",
            ),
        ),
        ("repetitions", Value::Num(reps as f64)),
        ("results", Value::Arr(rows)),
        (
            "splice_storm",
            Value::obj(vec![
                ("experiment", Value::str("phase1_merge_into_splice_storm")),
                (
                    "description",
                    Value::str(
                        "Hub-heavy star-of-cycles workload: ~k internal cycles all splice into \
                         one pending fragment. Vec-splice reference (before, Theta(k^2) tail \
                         shifts) vs the splice-order index (after, O(1) pivot lookup + \
                         O(|cycle|) link-in); minimum over repetitions.",
                    ),
                ),
                ("repetitions", Value::Num(reps as f64)),
                ("results", Value::Arr(storm_rows)),
            ]),
        ),
        (
            "parallel",
            Value::obj(vec![
                ("experiment", Value::str("phase1_intra_partition_parallel")),
                (
                    "description",
                    Value::str(
                        "Sequential dense kernel on a reused Phase1Arena vs the deterministic \
                         wave-speculation walker (run_phase1_parallel) at the requested thread \
                         count, plus the arena-reuse saving over fresh allocation; minimum over \
                         repetitions. Outputs are asserted bit-identical. Parallel speedup \
                         requires host_available_parallelism >= requested threads.",
                    ),
                ),
                ("requested_threads", Value::Num(PARALLEL_THREADS as f64)),
                ("host_available_parallelism", Value::Num(host_threads as f64)),
                ("repetitions", Value::Num(reps as f64)),
                ("results", Value::Arr(par_rows)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_phase1.json", doc.to_pretty() + "\n").expect("write BENCH_phase1.json");
    println!("wrote BENCH_phase1.json");
}
