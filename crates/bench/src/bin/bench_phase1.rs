//! Before/after measurement for the dense Phase-1 rewrite.
//!
//! Runs the retained hash-map reference kernel
//! (`euler_core::phase1::reference::run_phase1_reference`, the "before") and
//! the dense CSR-arena kernel (`euler_core::phase1::run_phase1`, the
//! "after") over single partitions up to 1M+ local edges — an Eulerized
//! R-MAT graph and a torus, plus a 4-way partitioned R-MAT whose partitions
//! are timed together — and writes the paired timings to
//! `BENCH_phase1.json`.
//!
//! Usage: `cargo run --release -p euler-bench --bin bench_phase1 [reps]`
//! (default 5 repetitions; the minimum over reps is reported).

use euler_bench::{round_robin_working_partitions, single_working_partition};
use euler_core::fragment::FragmentStore;
use euler_core::phase1::reference::run_phase1_reference;
use euler_core::phase1::run_phase1;
use euler_core::WorkingPartition;
use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use euler_gen::synthetic;
use euler_metrics::json::Value;
use std::time::Instant;

/// Minimum wall time over `reps` runs of `kernel` across all partitions of
/// the workload, and the fragment count of the last run (sanity check that
/// both kernels do the same work).
fn time_kernel(
    template: &[WorkingPartition],
    reps: u32,
    kernel: impl Fn(&mut WorkingPartition, &FragmentStore),
) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut fragments = 0;
    for _ in 0..reps {
        let mut wps: Vec<WorkingPartition> = template.to_vec();
        let store = FragmentStore::new();
        let start = Instant::now();
        for wp in &mut wps {
            kernel(wp, &store);
        }
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        fragments = store.len();
    }
    (best, fragments)
}

fn main() {
    // At least one repetition, or the reported minima would be infinite.
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5)
        .max(1);
    let workloads: Vec<(&str, Vec<WorkingPartition>)> = {
        let (rmat_1m, _) = eulerize(&RmatGenerator::new(18).with_avg_degree(8.0).with_seed(7).generate());
        let torus_1m = synthetic::torus_grid(708, 708);
        let (rmat_4p, _) = eulerize(&RmatGenerator::new(16).with_avg_degree(8.0).with_seed(11).generate());
        vec![
            ("rmat18_eulerized_1_partition", single_working_partition(&rmat_1m)),
            ("torus_708x708_1_partition", single_working_partition(&torus_1m)),
            ("rmat16_eulerized_4_partitions", round_robin_working_partitions(&rmat_4p, 4)),
        ]
    };

    let mut rows = Vec::new();
    for (name, template) in &workloads {
        let local_edges: u64 = template.iter().map(|wp| wp.local_edges.len() as u64).sum();
        let (ref_s, ref_frags) =
            time_kernel(template, reps, |wp, store| {
                run_phase1_reference(wp, store);
            });
        let (dense_s, dense_frags) = time_kernel(template, reps, |wp, store| {
            run_phase1(wp, store);
        });
        assert_eq!(ref_frags, dense_frags, "kernels must produce identical fragment counts");
        let speedup = ref_s / dense_s;
        println!(
            "{name}: {local_edges} local edges | reference {ref_s:.3}s | dense {dense_s:.3}s | {speedup:.2}x"
        );
        rows.push(Value::obj(vec![
            ("workload", Value::str(*name)),
            ("partitions", Value::Num(template.len() as f64)),
            ("local_edges", Value::Num(local_edges as f64)),
            ("fragments", Value::Num(dense_frags as f64)),
            ("reference_seconds", Value::Num(ref_s)),
            ("dense_seconds", Value::Num(dense_s)),
            ("speedup", Value::Num(speedup)),
        ]));
    }

    let doc = Value::obj(vec![
        ("experiment", Value::str("phase1_dense_vs_reference")),
        (
            "description",
            Value::str(
                "Phase-1 kernel wall time, hash-map reference (before) vs dense CSR-arena \
                 rewrite (after); minimum over repetitions",
            ),
        ),
        ("repetitions", Value::Num(reps as f64)),
        ("results", Value::Arr(rows)),
    ]);
    std::fs::write("BENCH_phase1.json", doc.to_pretty() + "\n").expect("write BENCH_phase1.json");
    println!("wrote BENCH_phase1.json");
}
