//! Reproduces Fig. 6: the split of user compute time per partition per merge
//! level for the G50/P8 graph — copy source partition, copy sink partition,
//! create partition object, Phase-1 tour.

use euler_bench::{parse_scale_shift, prepared_input};
use euler_bsp::BspConfig;
use euler_core::{run_with_backend, BspBackend, EulerConfig};
use euler_gen::configs::GraphConfig;
use euler_metrics::{Report, Table};

fn main() {
    let shift = parse_scale_shift();
    let config = GraphConfig::by_name("G50/P8").expect("known config");
    let input = prepared_input(config, shift);
    let backend = BspBackend::with_engine(BspConfig::one_worker_per_partition());
    let (_, run) = run_with_backend(&input.graph, &input.assignment, &EulerConfig::default(), &backend)
        .expect("eulerized input");
    let engine = run.engine.as_ref().expect("BSP backend reports engine stats");

    let mut report = Report::new("fig6_time_split");
    report.note(format!("G50/P8 scaled with scale_shift = {shift}; one executor per partition"));
    let mut table = Table::new(
        "Fig. 6: user compute split per partition per level (ms)",
        &["Level", "Partition", "Copy source", "Create object + copy sink", "Phase 1 tour", "Other"],
    );
    for step in &engine.supersteps {
        for (partition, breakdown) in &step.per_partition_compute {
            let ms = |k: &str| format!("{:.2}", breakdown.get(k).as_secs_f64() * 1e3);
            let copy_sink = breakdown.get("create_partition_object") + breakdown.get("copy_sink_partition");
            table.row(&[
                step.superstep.to_string(),
                format!("P{partition}"),
                ms("copy_source_partition"),
                format!("{:.2}", copy_sink.as_secs_f64() * 1e3),
                ms("phase1_tour"),
                ms("uncategorised"),
            ]);
        }
    }
    report.add_table(table);
    println!("{}", report.render());
}
