//! Reproduces Fig. 4: the degree distribution of the raw R-MAT graph versus
//! its Eulerized counterpart (log-bucketed), plus the extra-edge fraction.

use euler_bench::parse_scale_shift;
use euler_gen::configs::GraphConfig;
use euler_gen::degree::DegreeHistogram;
use euler_gen::eulerize::eulerize;
use euler_metrics::{Report, Series, Table};

fn main() {
    let shift = parse_scale_shift();
    // The paper's Fig. 4 uses the 10M-vertex / 50M-edge input; we use the
    // scaled G20 configuration.
    let config = GraphConfig::by_name("G20/P2").expect("known config");
    let raw = config.generate_raw(shift);
    let (eulerized, info) = eulerize(&raw);

    let mut report = Report::new("fig4_degree_distribution");
    report.note(format!(
        "raw RMAT: |V|={} |E|={}; eulerized: |E|={} (extra edges {:.1}%, paper reports ~5%)",
        raw.num_vertices(),
        raw.num_edges(),
        eulerized.num_edges(),
        info.extra_edge_fraction() * 100.0
    ));

    let h_raw = DegreeHistogram::of(&raw);
    let h_eul = DegreeHistogram::of(&eulerized);
    report.note(format!(
        "total-variation distance between the two degree distributions: {:.4}",
        h_raw.total_variation_distance(&h_eul)
    ));

    let mut s_raw = Series::new("rmat_degree_distribution");
    for (bucket, count) in h_raw.log_buckets() {
        s_raw.push(format!("deg~{bucket}"), bucket as f64, count as f64);
    }
    let mut s_eul = Series::new("eulerian_degree_distribution");
    for (bucket, count) in h_eul.log_buckets() {
        s_eul.push(format!("deg~{bucket}"), bucket as f64, count as f64);
    }
    let mut table = Table::new(
        "Degree distribution (log2 buckets): vertices per bucket",
        &["Degree bucket", "RMAT", "Eulerized"],
    );
    for (bucket, count) in h_raw.log_buckets() {
        table.row(&[bucket.to_string(), count.to_string(), h_eul.log_buckets().iter().find(|(b, _)| *b == bucket).map(|(_, c)| *c).unwrap_or(0).to_string()]);
    }
    report.add_table(table);
    report.add_series(s_raw);
    report.add_series(s_eul);
    println!("{}", report.render());
}
