//! Load-path comparison for the `.ecsr` mmap loader (ROADMAP: "mmap /
//! streaming graph loading").
//!
//! For ≥1M-edge workloads this harness writes the same graph as a plain-text
//! edge list and as a binary `.ecsr` file, then times every way the pipeline
//! can get from a file to runnable input:
//!
//! * **text parse** — `EdgeListFileSource::load` (chunked parse + builder;
//!   what the pipeline consumes from a text source);
//! * **mmap open, validated** — `MmapCsrSource::open`: full checksum +
//!   structure pass, yielding the mapped CSR view the pipeline's direct
//!   slicing path consumes as-is (no `Graph` is ever built);
//! * **mmap open, trusted** — `MmapCsrSource::open_trusted`: header checks
//!   only, nothing paged in eagerly;
//! * **mmap → Graph** — validated open plus exact `Graph` reconstruction,
//!   for callers that do want the resident graph back;
//! * **partition slicing** — `PartitionedGraph::from_assignment` over the
//!   resident graph vs. `CsrFile::partitioned` cutting the partition-centric
//!   view straight from the mapped sections.
//!
//! Results (minimum over reps) go to `BENCH_load.json`. The headline
//! `mmap_speedup_over_text` compares the two pipeline-ready loads (text
//! parse vs. validated mmap open) and is expected to be >= 5x.
//!
//! Usage: `cargo run --release -p euler-bench --bin bench_load [reps]`
//! (default 3 repetitions).

use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use euler_gen::synthetic;
use euler_graph::{
    write_csr_file, EdgeListFileSource, Graph, GraphSource, MmapCsrSource, PartitionedGraph,
};
use euler_metrics::json::Value;
use euler_partition::{LdgPartitioner, Partitioner};
use std::path::Path;
use std::time::Instant;

/// Minimum wall time over `reps` runs of `f`, plus the last run's check sum.
fn time_runs<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        out = Some(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out.expect("reps >= 1"))
}

fn bench_workload(name: &str, g: &Graph, dir: &Path, reps: u32) -> Value {
    let el = dir.join(format!("{name}.el"));
    let ecsr = dir.join(format!("{name}.ecsr"));
    euler_graph::io::write_edge_list_file(g, &el).expect("write edge list");
    write_csr_file(g, &ecsr).expect("write csr file");
    let el_bytes = std::fs::metadata(&el).expect("stat .el").len();
    let ecsr_bytes = std::fs::metadata(&ecsr).expect("stat .ecsr").len();

    let (text_s, text_graph) =
        time_runs(reps, || EdgeListFileSource::new(&el).load().expect("text parse"));
    let (open_s, opened) = time_runs(reps, || MmapCsrSource::open(&ecsr).expect("open .ecsr"));
    let (trusted_open_s, _) =
        time_runs(reps, || MmapCsrSource::open_trusted(&ecsr).expect("open .ecsr"));
    let (to_graph_s, mmap_graph) = time_runs(reps, || {
        MmapCsrSource::open(&ecsr).expect("open .ecsr").load().expect("mmap load")
    });
    assert_eq!(text_graph.num_edges(), g.num_edges(), "text parse changed the graph");
    assert_eq!(opened.csr_file().num_edges(), g.num_edges(), "mmap open changed the graph");
    assert_eq!(mmap_graph.num_edges(), g.num_edges(), "mmap load changed the graph");
    assert_eq!(mmap_graph.num_vertices(), g.num_vertices());

    // Partition slicing: classic path needs the resident graph; the direct
    // path cuts partitions from the mapped sections without one. Both start
    // from an already-opened input so the timings compare the same work.
    let assignment = LdgPartitioner::new(8).partition(g);
    let (part_graph_s, pg_mem) = time_runs(reps, || {
        PartitionedGraph::from_assignment(&mmap_graph, &assignment).expect("partition graph")
    });
    let slicer = MmapCsrSource::open_trusted(&ecsr).expect("open .ecsr");
    let (part_slice_s, pg_csr) = time_runs(reps, || {
        slicer.csr_file().partitioned(&assignment).expect("slice partitions")
    });
    assert_eq!(pg_csr.cut_edges(), pg_mem.cut_edges(), "slicing paths disagree");
    assert_eq!(pg_csr.num_edges(), pg_mem.num_edges());

    let speedup = text_s / open_s;
    println!(
        "{name}: {} edges | text parse {text_s:.3}s | mmap open {open_s:.3}s ({speedup:.1}x) | \
         trusted open {trusted_open_s:.4}s | mmap->Graph {to_graph_s:.3}s | \
         partition from-graph {part_graph_s:.3}s vs direct-slice {part_slice_s:.3}s",
        g.num_edges(),
    );
    std::fs::remove_file(&el).ok();
    std::fs::remove_file(&ecsr).ok();
    Value::obj(vec![
        ("workload", Value::str(name)),
        ("vertices", Value::Num(g.num_vertices() as f64)),
        ("edges", Value::Num(g.num_edges() as f64)),
        ("edge_list_bytes", Value::Num(el_bytes as f64)),
        ("ecsr_bytes", Value::Num(ecsr_bytes as f64)),
        ("text_parse_seconds", Value::Num(text_s)),
        ("mmap_open_validated_seconds", Value::Num(open_s)),
        ("mmap_open_trusted_seconds", Value::Num(trusted_open_s)),
        ("mmap_to_graph_seconds", Value::Num(to_graph_s)),
        ("mmap_speedup_over_text", Value::Num(speedup)),
        ("partition_from_graph_seconds", Value::Num(part_graph_s)),
        ("partition_direct_slice_seconds", Value::Num(part_slice_s)),
    ])
}

fn main() {
    let reps: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3).max(1);
    let dir = std::env::temp_dir().join("euler_bench_load");
    std::fs::create_dir_all(&dir).expect("temp dir");

    let (rmat, _) =
        eulerize(&RmatGenerator::new(18).with_avg_degree(8.0).with_seed(11).generate());
    let torus = synthetic::torus_grid(708, 708);
    assert!(rmat.num_edges() >= 1_000_000, "rmat workload must have >= 1M edges");
    assert!(torus.num_edges() >= 1_000_000, "torus workload must have >= 1M edges");

    let mut rows = Vec::new();
    for (name, g) in [("rmat18_eulerized", &rmat), ("torus_708x708", &torus)] {
        rows.push(bench_workload(name, g, &dir, reps));
    }

    let doc = Value::obj(vec![
        ("experiment", Value::str("graph_load_paths")),
        (
            "description",
            Value::str(
                "Wall time from an on-disk graph to pipeline-ready input at >= 1M edges: \
                 chunked text edge-list parse (yields a Graph) vs. memory-mapped .ecsr open \
                 (yields the CSR view the direct slicing path consumes; validated = checksum \
                 + structural pass, trusted = header only), plus the mmap->Graph exact \
                 reconstruction and the partition-view build from a resident graph vs. \
                 sliced directly from the mapped sections; minimum over repetitions.",
            ),
        ),
        ("repetitions", Value::Num(reps as f64)),
        ("results", Value::Arr(rows)),
    ]);
    std::fs::write("BENCH_load.json", doc.to_pretty() + "\n").expect("write BENCH_load.json");
    println!("wrote BENCH_load.json");
}
