//! Reproduces Fig. 8: cumulative and average partition memory state (in
//! Longs) per merge level, for the current algorithm, the ideal constant
//! case, and the proposed Sec.-5 heuristics — both from measured runs and
//! from the analytical model, for G40/P8 and G50/P8.

use euler_bench::{parse_scale_shift, prepared_input};
use euler_core::memory_model::{ideal_series, model_series};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig, MergeStrategy};
use euler_gen::configs::GraphConfig;
use euler_metrics::{Report, Series, Table};

fn main() {
    let shift = parse_scale_shift();
    let mut report = Report::new("fig8_memory_state");
    report.note(format!("scale_shift = {shift}; memory in 8-byte Longs, per merge level"));
    for name in ["G40/P8", "G50/P8"] {
        let config = GraphConfig::by_name(name).expect("known config");
        let input = prepared_input(config, shift);
        let (_, baseline_run) =
            run_with_backend(&input.graph, &input.assignment, &EulerConfig::default(), &InProcessBackend::new())
                .expect("eulerized");
        let trace = baseline_run.level_trace();

        let current = model_series(&trace, MergeStrategy::Duplicated);
        let proposed = model_series(&trace, MergeStrategy::Deferred);
        let ideal = ideal_series(&trace);

        let mut table = Table::new(
            format!("Fig. 8 ({name}): memory state per level (Longs)"),
            &["Level", "Cumu. Current", "Avg. Current", "Cumu. Ideal", "Avg. Ideal", "Cumu. Proposed", "Avg. Proposed"],
        );
        for level in 0..trace.len() {
            table.row(&[
                level.to_string(),
                current.cumulative[level].to_string(),
                format!("{:.0}", current.average[level]),
                ideal.cumulative[level].to_string(),
                format!("{:.0}", ideal.average[level]),
                proposed.cumulative[level].to_string(),
                format!("{:.0}", proposed.average[level]),
            ]);
        }
        report.add_table(table);

        // Also report the *measured* series under the actually-implemented strategies.
        for strategy in MergeStrategy::all() {
            let (_, run) = run_with_backend(
                &input.graph,
                &input.assignment,
                &EulerConfig::default().with_merge_strategy(strategy),
                &InProcessBackend::new(),
            )
            .expect("eulerized");
            let mut s = Series::new(format!("{name} measured cumulative ({strategy})"));
            for (level, longs) in run.cumulative_memory_by_level().iter().enumerate() {
                s.push(format!("L{level}"), level as f64, *longs as f64);
            }
            report.add_series(s);
        }
    }
    println!("{}", report.render());
}
