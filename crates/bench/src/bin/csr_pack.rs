//! `csr-pack`: convert a plain-text edge list into the binary `.ecsr` CSR
//! format (spec: `docs/FORMAT.md`), ready for `euler_graph::MmapCsrSource`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p euler-bench --bin csr_pack -- <input.el> <output.ecsr>
//! cargo run --release -p euler-bench --bin csr_pack -- --selftest
//! ```
//!
//! `--selftest` generates a small Eulerian graph, round-trips it through a
//! pack + mmap reopen in a temp directory, and fails loudly on any mismatch —
//! the CI smoke for the whole packing path.

use euler_bench::pack_edge_list;
use euler_graph::{GraphSource, MmapCsrSource};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: csr_pack <input.el> <output.ecsr> | csr_pack --selftest");
    ExitCode::from(2)
}

fn pack(input: &Path, output: &Path) -> bool {
    match pack_edge_list(input, output) {
        Ok(stats) => {
            println!(
                "packed {} -> {}: {} vertices, {} edges | {} -> {} bytes ({:.2}x) | \
                 parse {:.3}s, write {:.3}s",
                input.display(),
                output.display(),
                stats.num_vertices,
                stats.num_edges,
                stats.input_bytes,
                stats.output_bytes,
                stats.output_bytes as f64 / stats.input_bytes.max(1) as f64,
                stats.parse_time.as_secs_f64(),
                stats.write_time.as_secs_f64(),
            );
            true
        }
        Err(e) => {
            eprintln!("csr_pack: {e}");
            false
        }
    }
}

fn selftest() -> bool {
    let dir = std::env::temp_dir().join("euler_csr_pack_selftest");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let el = dir.join("selftest.el");
    let ecsr = dir.join("selftest.ecsr");

    let g = euler_gen::synthetic::torus_grid(40, 40);
    euler_graph::io::write_edge_list_file(&g, &el).expect("write edge list");
    if !pack(&el, &ecsr) {
        return false;
    }
    let reloaded = MmapCsrSource::open(&ecsr).expect("reopen packed file").load().expect("load");
    assert_eq!(reloaded.num_vertices(), g.num_vertices(), "vertex count changed");
    assert_eq!(reloaded.num_edges(), g.num_edges(), "edge count changed");
    for v in g.vertices() {
        assert_eq!(reloaded.neighbors(v), g.neighbors(v), "adjacency of {v} changed");
    }
    println!("selftest ok: pack -> mmap reopen reproduced the graph exactly");
    std::fs::remove_file(&el).ok();
    std::fs::remove_file(&ecsr).ok();
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ok = match args.as_slice() {
        [flag] if flag == "--selftest" => selftest(),
        [input, output] => pack(&PathBuf::from(input), &PathBuf::from(output)),
        _ => return usage(),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
