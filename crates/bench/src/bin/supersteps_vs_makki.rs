//! Coordination-cost comparison (§2.2 / §4.3): the partition-centric
//! algorithm needs ⌈log n⌉ + 1 supersteps (2, 3, 3, 4 for 2, 3, 4, 8
//! partitions), while the Makki-style vertex-centric walker needs O(|E|)
//! supersteps with a single active vertex.

use euler_baseline::MakkiRunner;
use euler_bench::{parse_scale_shift, prepared_input};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig};
use euler_gen::configs::PAPER_CONFIGS;
use euler_metrics::{Report, Table};

fn main() {
    let shift = parse_scale_shift();
    let mut report = Report::new("supersteps_vs_makki");
    report.note(format!(
        "scale_shift = {}; Makki uses one superstep per edge traversal",
        shift - 2
    ));
    let mut table = Table::new(
        "Coordination cost: partition-centric vs Makki",
        &["Graph", "|E|", "Parts", "Partition-centric supersteps", "Makki supersteps", "Makki messages"],
    );
    for config in PAPER_CONFIGS {
        // Makki is O(|E|) supersteps, so shrink its input two further steps to
        // keep the harness fast; superstep counts are reported per graph.
        let input = prepared_input(config, shift - 2);
        let (_, run) =
            run_with_backend(&input.graph, &input.assignment, &EulerConfig::default(), &InProcessBackend::new())
                .expect("eulerized");
        let makki = MakkiRunner::new().run(&input.graph).expect("eulerized");
        table.row(&[
            config.name.to_string(),
            input.graph.num_edges().to_string(),
            config.partitions.to_string(),
            run.supersteps.to_string(),
            makki.supersteps.to_string(),
            makki.messages.to_string(),
        ]);
    }
    report.add_table(table);
    println!("{}", report.render());
}
