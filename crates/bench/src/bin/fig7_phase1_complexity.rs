//! Reproduces Fig. 7: expected Phase-1 complexity O(|B|+|I|+|L|) versus the
//! observed Phase-1 time, per partition and per level, for G40/P8 and G50/P8,
//! with a least-squares trend line and the correlation coefficient.

use euler_bench::{parse_scale_shift, prepared_input};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig};
use euler_gen::configs::GraphConfig;
use euler_metrics::{Report, Series, Table};

fn main() {
    let shift = parse_scale_shift();
    let mut report = Report::new("fig7_phase1_complexity");
    report.note(format!("scale_shift = {shift}; x = |B|+|I|+|L| per partition, y = observed Phase-1 time"));
    for name in ["G40/P8", "G50/P8"] {
        let config = GraphConfig::by_name(name).expect("known config");
        let input = prepared_input(config, shift);
        // Sequential within a level so per-partition timings are undisturbed.
        let (_, run) = run_with_backend(
            &input.graph,
            &input.assignment,
            &EulerConfig::default().sequential(),
            &InProcessBackend::new(),
        )
        .expect("eulerized input");
        let mut series = Series::new(format!("{name} phase1_time_ms_vs_complexity"));
        let mut table = Table::new(
            format!("Fig. 7 ({name}): expected vs observed Phase-1 time"),
            &["Level", "Partition", "B+I+L", "Phase-1 time (ms)"],
        );
        for r in &run.per_partition {
            series.push(
                format!("L{}:{}", r.level, r.partition),
                r.complexity as f64,
                r.phase1_time.as_secs_f64() * 1e3,
            );
            table.row(&[
                r.level.to_string(),
                r.partition.to_string(),
                r.complexity.to_string(),
                format!("{:.3}", r.phase1_time.as_secs_f64() * 1e3),
            ]);
        }
        if let Some((slope, intercept)) = series.linear_fit() {
            report.note(format!(
                "{name}: trend line y = {slope:.3e}*x + {intercept:.3}, correlation r = {:.3}",
                series.correlation().unwrap_or(f64::NAN)
            ));
        }
        report.add_table(table);
        report.add_series(series);
    }
    println!("{}", report.render());
}
