//! Reproduces Table 1: characteristics of the input Eulerian graphs
//! (|V|, bi-directed |E|, Σ|B_i|, partition count, cut fraction, imbalance).

use euler_bench::{parse_scale_shift, prepared_input};
use euler_gen::configs::PAPER_CONFIGS;
use euler_metrics::{Report, Table};
use euler_partition::PartitionQuality;

fn main() {
    let shift = parse_scale_shift();
    let mut report = Report::new("table1_graph_characteristics");
    report.note(format!(
        "scaled reproduction of the paper's G-family (scale_shift = {shift}); \
         paper sizes are 20M-49M vertices on 8 VMs, this run keeps the partition \
         counts, average degree 5 and cut regimes"
    ));
    let mut table = Table::new(
        "Table 1: Characteristics of input Eulerian graphs",
        &["Graph", "|V|", "|E| (bidirected)", "Sum |Bi|", "Parts (n)", "Sum|Ri|/|E| %", "|Vi| Imbal. %"],
    );
    for config in PAPER_CONFIGS {
        let input = prepared_input(config, shift);
        let quality = PartitionQuality::evaluate(&input.graph, &input.assignment);
        table.push_row(quality.table1_row(config.name));
    }
    report.add_table(table);
    println!("{}", report.render());
}
