//! Criterion bench (ablation): the three §5 merge strategies on the same
//! input — the runtime side of the Fig.-8 memory comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig, MergeStrategy};
use euler_gen::configs::GraphConfig;
use euler_partition::{LdgPartitioner, Partitioner};
use std::hint::black_box;

fn merge_strategies(c: &mut Criterion) {
    let (g, _) = GraphConfig::by_name("G40/P8").unwrap().generate(-6);
    let a = LdgPartitioner::new(8).partition(&g);
    let mut group = c.benchmark_group("merge_strategy_ablation");
    group.sample_size(10);
    for strategy in MergeStrategy::all() {
        let config = EulerConfig::default().with_merge_strategy(strategy);
        group.bench_with_input(BenchmarkId::new("pipeline", strategy.name()), &config, |b, cfg| {
            b.iter(|| black_box(run_with_backend(&g, &a, cfg, &InProcessBackend::new()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, merge_strategies);
criterion_main!(benches);
