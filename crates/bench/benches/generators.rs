//! Criterion bench: the R-MAT generator and the Eulerizer (the paper's input
//! preparation pipeline, §4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use std::hint::black_box;

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    for scale in [12u32, 14] {
        group.bench_with_input(BenchmarkId::new("rmat", scale), &scale, |b, &s| {
            b.iter(|| black_box(RmatGenerator::new(s).with_seed(7).generate()))
        });
        let g = RmatGenerator::new(scale).with_seed(7).generate();
        group.bench_with_input(BenchmarkId::new("eulerize", scale), &g, |b, g| {
            b.iter(|| black_box(eulerize(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, generators);
criterion_main!(benches);
