//! Criterion bench: sequential baselines (Hierholzer, Fleury) versus the
//! partition-centric pipeline on the same graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_baseline::{fleury_circuit, hierholzer_circuit};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig};
use euler_gen::synthetic;
use euler_partition::{LdgPartitioner, Partitioner};
use std::hint::black_box;

fn baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let torus = synthetic::torus_grid(40, 40);
    group.bench_function(BenchmarkId::new("hierholzer", torus.num_edges()), |b| {
        b.iter(|| black_box(hierholzer_circuit(&torus).unwrap()))
    });
    let small = synthetic::torus_grid(10, 10);
    group.bench_function(BenchmarkId::new("fleury", small.num_edges()), |b| {
        b.iter(|| black_box(fleury_circuit(&small).unwrap()))
    });
    let a = LdgPartitioner::new(4).partition(&torus);
    group.bench_function(BenchmarkId::new("partition_centric_4_parts", torus.num_edges()), |b| {
        b.iter(|| black_box(run_with_backend(&torus, &a, &EulerConfig::default(), &InProcessBackend::new()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
