//! Criterion bench: the full partition-centric pipeline (Phases 1-3) on the
//! scaled G-family — the per-graph cost underlying Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_core::{run_with_backend, InProcessBackend, EulerConfig};
use euler_gen::configs::PAPER_CONFIGS;
use euler_partition::{LdgPartitioner, Partitioner};
use std::hint::black_box;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_g_family");
    group.sample_size(10);
    for config in &PAPER_CONFIGS[..3] {
        let (g, _) = config.generate(-6);
        let a = LdgPartitioner::new(config.partitions).partition(&g);
        group.bench_with_input(BenchmarkId::new("phases_1_to_3", config.name), &(&g, &a), |b, (g, a)| {
            b.iter(|| black_box(run_with_backend(g, a, &EulerConfig::default(), &InProcessBackend::new()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
