//! Criterion bench: the Phase-1 kernel on a single partition, across
//! partition sizes — the computational core whose O(|B|+|I|+|L|) behaviour
//! Fig. 7 validates. Each workload is benched twice: the dense flat-array
//! kernel (`run_phase1`) against the retained hash-map reference
//! (`run_phase1_reference`), so the speedup of the CSR-arena rewrite stays
//! visible. `cargo run --release -p euler-bench --bin bench_phase1` produces
//! the committed `BENCH_phase1.json` from the same pairing at 1M-edge scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_bench::single_working_partition;
use euler_core::fragment::FragmentStore;
use euler_core::phase1::reference::run_phase1_reference;
use euler_core::phase1::run_phase1;
use euler_core::WorkingPartition;
use euler_gen::eulerize::eulerize;
use euler_gen::rmat::RmatGenerator;
use euler_gen::synthetic;
use euler_graph::Graph;
use std::hint::black_box;

fn single_partition(g: &Graph) -> WorkingPartition {
    single_working_partition(g).into_iter().next().expect("one partition")
}

fn phase1_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_single_partition");
    group.sample_size(20);
    for side in [16u64, 32, 64] {
        let g = synthetic::torus_grid(side, side);
        let template = single_partition(&g);
        group.bench_with_input(
            BenchmarkId::new("dense_torus", g.num_edges()),
            &template,
            |b, t| {
                b.iter(|| {
                    let store = FragmentStore::new();
                    let mut wp = t.clone();
                    black_box(run_phase1(&mut wp, &store));
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference_torus", g.num_edges()),
            &template,
            |b, t| {
                b.iter(|| {
                    let store = FragmentStore::new();
                    let mut wp = t.clone();
                    black_box(run_phase1_reference(&mut wp, &store));
                })
            },
        );
    }
    for scale in [10u32, 12] {
        let (g, _) = eulerize(&RmatGenerator::new(scale).with_seed(7).generate());
        let template = single_partition(&g);
        group.bench_with_input(
            BenchmarkId::new("dense_rmat_eulerized", g.num_edges()),
            &template,
            |b, t| {
                b.iter(|| {
                    let store = FragmentStore::new();
                    let mut wp = t.clone();
                    black_box(run_phase1(&mut wp, &store));
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference_rmat_eulerized", g.num_edges()),
            &template,
            |b, t| {
                b.iter(|| {
                    let store = FragmentStore::new();
                    let mut wp = t.clone();
                    black_box(run_phase1_reference(&mut wp, &store));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, phase1_kernel);
criterion_main!(benches);
