//! Criterion bench: the Phase-1 kernel on a single partition, across
//! partition sizes — the computational core whose O(|B|+|I|+|L|) behaviour
//! Fig. 7 validates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_core::fragment::FragmentStore;
use euler_core::phase1::run_phase1;
use euler_core::WorkingPartition;
use euler_gen::synthetic;
use euler_graph::{PartitionAssignment, PartitionedGraph};
use std::hint::black_box;

fn phase1_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_single_partition");
    group.sample_size(20);
    for side in [16u64, 32, 64] {
        let g = synthetic::torus_grid(side, side);
        let a = PartitionAssignment::from_labels(vec![0; (side * side) as usize], 1).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let template = WorkingPartition::from_partition(&pg.partitions()[0]);
        group.bench_with_input(BenchmarkId::new("torus_local_edges", g.num_edges()), &template, |b, t| {
            b.iter(|| {
                let store = FragmentStore::new();
                let mut wp = t.clone();
                black_box(run_phase1(&mut wp, &store));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, phase1_kernel);
criterion_main!(benches);
