//! Criterion bench: the three partitioners (ParHIP substitutes) on an
//! Eulerized R-MAT graph.

use criterion::{criterion_group, criterion_main, Criterion};
use euler_gen::configs::GraphConfig;
use euler_partition::{BfsPartitioner, HashPartitioner, LdgPartitioner, Partitioner};
use std::hint::black_box;

fn partitioners(c: &mut Criterion) {
    let (g, _) = GraphConfig::by_name("G40/P8").unwrap().generate(-6);
    let mut group = c.benchmark_group("partitioners_8_way");
    group.sample_size(10);
    group.bench_function("hash", |b| b.iter(|| black_box(HashPartitioner::new(8).partition(&g))));
    group.bench_function("ldg", |b| b.iter(|| black_box(LdgPartitioner::new(8).partition(&g))));
    group.bench_function("bfs", |b| b.iter(|| black_box(BfsPartitioner::new(8).partition(&g))));
    group.finish();
}

criterion_group!(benches, partitioners);
criterion_main!(benches);
