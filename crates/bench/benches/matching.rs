//! Criterion bench: greedy maximal weighted matching and merge-tree
//! construction over meta-graphs of growing size (Alg. 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use euler_core::merge_tree::{greedy_maximal_matching, MergeTree};
use euler_graph::{MetaGraph, PartitionId};
use std::hint::black_box;

fn random_meta(n: u32) -> MetaGraph {
    let vertices: Vec<PartitionId> = (0..n).map(PartitionId).collect();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            // Deterministic pseudo-weights.
            pairs.push((PartitionId(i), PartitionId(j), ((i * 31 + j * 17) % 97 + 1) as u64));
        }
    }
    MetaGraph::from_weights(vertices, &pairs)
}

fn matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_tree");
    group.sample_size(20);
    for n in [8u32, 32, 128] {
        let meta = random_meta(n);
        group.bench_with_input(BenchmarkId::new("greedy_matching", n), &meta, |b, m| {
            b.iter(|| black_box(greedy_maximal_matching(&m.edges)))
        });
        group.bench_with_input(BenchmarkId::new("build_tree", n), &meta, |b, m| {
            b.iter(|| black_box(MergeTree::build(m)))
        });
    }
    group.finish();
}

criterion_group!(benches, matching);
criterion_main!(benches);
