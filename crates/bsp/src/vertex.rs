//! Vertex-centric (Pregel-style) execution on top of the BSP semantics.
//!
//! Used by the Makki baseline: the algorithm keeps a single active vertex per
//! superstep, which is exactly the behaviour the paper criticises (superstep
//! count proportional to the number of edges, all but one machine idle). The
//! runner here executes faithfully superstep-by-superstep and reports the
//! same statistics as the partition engine, so the coordination-cost
//! comparison of the `supersteps_vs_makki` harness is apples-to-apples.

use crate::program::{VertexContext, VertexProgram};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration for the vertex-centric runner.
#[derive(Clone, Copy, Debug)]
pub struct VertexEngineConfig {
    /// Safety bound on supersteps. Makki needs `O(|E|)` supersteps, so this
    /// must be at least the number of directed edges plus slack.
    pub max_supersteps: u64,
}

impl Default for VertexEngineConfig {
    fn default() -> Self {
        VertexEngineConfig { max_supersteps: 10_000_000 }
    }
}

/// Statistics of a vertex-centric run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VertexEngineStats {
    /// Number of supersteps executed (the coordination cost).
    pub supersteps: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Total compute invocations (active vertices summed over supersteps).
    pub vertex_activations: u64,
    /// Wall-clock time.
    pub wall_time: Duration,
    /// Maximum number of simultaneously active vertices in any superstep —
    /// Makki's is 1, which is the paper's utilisation argument.
    pub max_active_vertices: u64,
}

/// Runs a [`VertexProgram`] over `num_vertices` vertices until quiescence.
///
/// `initial` provides the starting state of every vertex. Initially every
/// vertex is active; a vertex that votes to halt is reactivated by incoming
/// messages, exactly as in Pregel.
pub fn run_vertex_program<P: VertexProgram>(
    program: &P,
    mut states: Vec<P::VertexState>,
    config: VertexEngineConfig,
) -> (Vec<P::VertexState>, VertexEngineStats) {
    let n = states.len();
    let mut halted = vec![false; n];
    let mut inboxes: Vec<Vec<P::Message>> = (0..n).map(|_| Vec::new()).collect();
    let mut stats = VertexEngineStats::default();
    let start = Instant::now();

    for superstep in 0..config.max_supersteps {
        let active: Vec<usize> = (0..n).filter(|&v| !halted[v] || !inboxes[v].is_empty()).collect();
        if active.is_empty() {
            break;
        }
        stats.supersteps = superstep + 1;
        stats.max_active_vertices = stats.max_active_vertices.max(active.len() as u64);
        let mut outgoing: Vec<(u64, P::Message)> = Vec::new();
        for v in active {
            let inbox = std::mem::take(&mut inboxes[v]);
            let mut ctx = VertexContext::new(superstep as u32, v as u64);
            let out = program.compute(&mut ctx, &mut states[v], &inbox);
            stats.vertex_activations += 1;
            halted[v] = ctx.voted_to_halt();
            outgoing.extend(out);
        }
        for (to, msg) in outgoing {
            stats.messages += 1;
            assert!((to as usize) < n, "message to unknown vertex {to}");
            inboxes[to as usize].push(msg);
        }
    }
    stats.wall_time = start.elapsed();
    (states, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VertexContext;

    /// Token passing around a ring of `n` vertices: only the token holder is
    /// active, like Makki's single-walker pattern.
    struct TokenRing {
        n: u64,
        hops: u64,
    }

    impl VertexProgram for TokenRing {
        type VertexState = u64; // number of times this vertex held the token
        type Message = u64; // remaining hops

        fn compute(&self, ctx: &mut VertexContext, state: &mut u64, messages: &[u64]) -> Vec<(u64, u64)> {
            let incoming: Option<u64> = messages.first().copied();
            let holding = if ctx.superstep == 0 && ctx.vertex == 0 {
                Some(self.hops)
            } else {
                incoming
            };
            ctx.vote_to_halt();
            match holding {
                Some(0) | None => vec![],
                Some(remaining) => {
                    *state += 1;
                    vec![((ctx.vertex + 1) % self.n, remaining - 1)]
                }
            }
        }
    }

    #[test]
    fn token_ring_takes_one_superstep_per_hop() {
        let program = TokenRing { n: 5, hops: 12 };
        let (states, stats) = run_vertex_program(&program, vec![0u64; 5], VertexEngineConfig::default());
        // 12 sends + the final receive-and-stop superstep.
        assert_eq!(stats.supersteps, 13);
        assert_eq!(stats.messages, 12);
        assert_eq!(states.iter().sum::<u64>(), 12);
        // Single-walker utilisation: only the first superstep has all vertices
        // active (initial activation), afterwards exactly one.
        assert_eq!(stats.max_active_vertices, 5);
    }

    #[test]
    fn all_halt_immediately_without_messages() {
        struct Noop;
        impl VertexProgram for Noop {
            type VertexState = ();
            type Message = ();
            fn compute(&self, ctx: &mut VertexContext, _s: &mut (), _m: &[()]) -> Vec<(u64, ())> {
                ctx.vote_to_halt();
                vec![]
            }
        }
        let (_, stats) = run_vertex_program(&Noop, vec![(); 10], VertexEngineConfig::default());
        assert_eq!(stats.supersteps, 1);
        assert_eq!(stats.vertex_activations, 10);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn max_supersteps_bound() {
        struct Bouncer;
        impl VertexProgram for Bouncer {
            type VertexState = ();
            type Message = ();
            fn compute(&self, ctx: &mut VertexContext, _s: &mut (), _m: &[()]) -> Vec<(u64, ())> {
                ctx.vote_to_halt();
                vec![(ctx.vertex ^ 1, ())] // 0 <-> 1 forever
            }
        }
        let (_, stats) = run_vertex_program(&Bouncer, vec![(), ()], VertexEngineConfig { max_supersteps: 20 });
        assert_eq!(stats.supersteps, 20);
    }
}
