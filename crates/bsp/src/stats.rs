//! Execution statistics collected by the BSP engine.
//!
//! These mirror the quantities the paper extracts from its Spark runs: user
//! compute time per partition (split into labelled phases, Fig. 6), bytes
//! moved between workers per superstep, superstep (coordination) counts, and
//! per-partition memory state in Longs (Fig. 8/9).

use crate::fault::RecoveryStats;
use euler_metrics::{MemoryState, TimeBreakdown};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statistics of one superstep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SuperstepStats {
    /// Superstep index (0-based).
    pub superstep: u32,
    /// Number of partitions that executed (were active) this superstep.
    pub active_partitions: usize,
    /// Wall-clock time of the whole superstep (parallel execution + barrier).
    pub wall_time: Duration,
    /// Sum of per-partition compute time (the paper's "user compute time").
    pub compute_time: Duration,
    /// Per-partition compute-time breakdown, keyed by engine partition index.
    pub per_partition_compute: Vec<(u32, TimeBreakdown)>,
    /// Messages whose source and destination live on the same worker.
    pub local_messages: u64,
    /// Bytes of those local messages.
    pub local_bytes: u64,
    /// Messages crossing worker boundaries (the "shuffle").
    pub remote_messages: u64,
    /// Bytes crossing worker boundaries.
    pub remote_bytes: u64,
    /// Memory state reported by the partitions this superstep.
    pub memory: MemoryState,
}

impl SuperstepStats {
    /// Creates empty stats for superstep `s`.
    pub fn new(superstep: u32) -> Self {
        SuperstepStats { superstep, memory: MemoryState::new(superstep), ..Default::default() }
    }

    /// Total messages routed this superstep.
    pub fn total_messages(&self) -> u64 {
        self.local_messages + self.remote_messages
    }

    /// Total bytes routed this superstep.
    pub fn total_bytes(&self) -> u64 {
        self.local_bytes + self.remote_bytes
    }
}

/// Aggregated statistics of a whole engine run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Per-superstep statistics in order.
    pub supersteps: Vec<SuperstepStats>,
    /// Number of workers used.
    pub num_workers: usize,
    /// Total wall-clock time of the run.
    pub total_wall_time: Duration,
    /// Modelled platform overhead added by the cost model (scheduling,
    /// serialisation, shuffle, barriers). Kept separate from measured time.
    pub modelled_platform_overhead: Duration,
    /// Fault-tolerance counters (worker restarts, heartbeat misses,
    /// checkpoint traffic). All zero for in-process engine runs; populated
    /// by the distributed coordinator.
    pub recovery: RecoveryStats,
}

impl EngineStats {
    /// Number of supersteps executed (the paper's coordination cost).
    pub fn num_supersteps(&self) -> u32 {
        self.supersteps.len() as u32
    }

    /// Total user compute time across all supersteps and partitions.
    pub fn total_compute_time(&self) -> Duration {
        self.supersteps.iter().map(|s| s.compute_time).sum()
    }

    /// Total bytes shuffled across workers.
    pub fn total_remote_bytes(&self) -> u64 {
        self.supersteps.iter().map(|s| s.remote_bytes).sum()
    }

    /// Total messages (local + remote).
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.total_messages()).sum()
    }

    /// The "total time" in the sense of Fig. 5: measured wall time plus the
    /// modelled platform overhead.
    pub fn modelled_total_time(&self) -> Duration {
        self.total_wall_time + self.modelled_platform_overhead
    }

    /// Memory snapshots per superstep (Fig. 8 input).
    pub fn memory_by_superstep(&self) -> Vec<&MemoryState> {
        self.supersteps.iter().map(|s| &s.memory).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_totals() {
        let mut s = SuperstepStats::new(2);
        s.local_messages = 3;
        s.remote_messages = 4;
        s.local_bytes = 100;
        s.remote_bytes = 50;
        assert_eq!(s.total_messages(), 7);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.superstep, 2);
        assert_eq!(s.memory.level, 2);
    }

    #[test]
    fn engine_stats_aggregation() {
        let mut e = EngineStats::default();
        let mut s0 = SuperstepStats::new(0);
        s0.compute_time = Duration::from_millis(10);
        s0.remote_bytes = 1000;
        let mut s1 = SuperstepStats::new(1);
        s1.compute_time = Duration::from_millis(5);
        s1.remote_bytes = 500;
        s1.local_messages = 2;
        e.supersteps = vec![s0, s1];
        e.total_wall_time = Duration::from_millis(20);
        e.modelled_platform_overhead = Duration::from_millis(30);

        assert_eq!(e.num_supersteps(), 2);
        assert_eq!(e.total_compute_time(), Duration::from_millis(15));
        assert_eq!(e.total_remote_bytes(), 1500);
        assert_eq!(e.total_messages(), 2);
        assert_eq!(e.modelled_total_time(), Duration::from_millis(50));
        assert_eq!(e.memory_by_superstep().len(), 2);
    }
}
