//! Fault-tolerance policy, fault injection, and recovery accounting.
//!
//! [`FaultPolicy`] is the coordinator's knob set: heartbeat cadence,
//! dead-worker timeout, connect/send retry bounds, and the restart budget.
//! [`FaultPlan`] is the *injection* side used by the fault-tolerance test
//! harness: kill worker *k* at superstep *s*, drop or delay the *n*-th
//! coordinator send. [`RecoveryStats`] is what actually happened — surfaced
//! through `EngineStats::recovery` and the pipeline's run report.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Coordinator-side fault-tolerance configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// How often a busy worker emits heartbeats.
    pub heartbeat_interval: Duration,
    /// Silence (no frame, no heartbeat) after which a worker awaited at a
    /// barrier is declared dead.
    pub heartbeat_timeout: Duration,
    /// Total worker restarts (respawn + restore or full restart) the
    /// coordinator will attempt before giving up on the run.
    pub max_worker_restarts: u32,
    /// Connect attempts when dialing (workers → coordinator endpoint).
    pub connect_attempts: u32,
    /// Linear backoff between connect attempts.
    pub connect_backoff: Duration,
    /// Retries for a failed coordinator send before declaring the worker
    /// dead.
    pub send_retries: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_secs(5),
            max_worker_restarts: 3,
            connect_attempts: 20,
            connect_backoff: Duration::from_millis(10),
            send_retries: 2,
        }
    }
}

impl FaultPolicy {
    /// Sets the heartbeat cadence.
    pub fn with_heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Sets the dead-worker silence threshold.
    pub fn with_heartbeat_timeout(mut self, d: Duration) -> Self {
        self.heartbeat_timeout = d;
        self
    }

    /// Sets the restart budget.
    pub fn with_max_worker_restarts(mut self, n: u32) -> Self {
        self.max_worker_restarts = n;
        self
    }
}

/// How an injected kill takes a worker down.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillMode {
    /// The worker exits its loop and drops the connection (thread workers —
    /// a thread cannot be SIGKILLed individually).
    Exit,
    /// The worker stalls at the kill point so the coordinator can SIGKILL
    /// the whole process mid-superstep (process workers).
    Stall,
}

/// A scripted fault, for the fault-injection harness. The default plan
/// injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill worker `.0` when it receives the Start of superstep `.1`.
    pub kill: Option<(u32, u32)>,
    /// How the kill is delivered (meaningful only with `kill`).
    pub kill_mode: Option<KillMode>,
    /// Drop the n-th (0-based) coordinator→worker frame instead of sending
    /// it; the silent worker is then recovered via the heartbeat timeout.
    pub drop_nth_send: Option<u64>,
    /// Delay the n-th (0-based) coordinator→worker frame by the given
    /// duration before sending it.
    pub delay_nth_send: Option<(u64, Duration)>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan to kill `worker` at `superstep`.
    pub fn kill_at(worker: u32, superstep: u32) -> Self {
        FaultPlan { kill: Some((worker, superstep)), ..Default::default() }
    }

    /// Plan to drop the n-th coordinator send.
    pub fn drop_send(n: u64) -> Self {
        FaultPlan { drop_nth_send: Some(n), ..Default::default() }
    }

    /// Plan to delay the n-th coordinator send by `d`.
    pub fn delay_send(n: u64, d: Duration) -> Self {
        FaultPlan { delay_nth_send: Some((n, d)), ..Default::default() }
    }

    /// Whether this plan injects anything at all.
    pub fn is_none(&self) -> bool {
        self.kill.is_none() && self.drop_nth_send.is_none() && self.delay_nth_send.is_none()
    }
}

/// Recovery counters of one run — what fault tolerance actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Workers respawned after a detected death.
    pub restarts: u64,
    /// Recoveries that had no usable checkpoint and replayed the whole run
    /// from the level-0 seed instead.
    pub full_restarts: u64,
    /// Heartbeat timeouts that declared a worker dead.
    pub heartbeat_misses: u64,
    /// Coordinator send attempts retried after a transport error.
    pub send_retries: u64,
    /// Checkpoint files written by workers.
    pub checkpoints_written: u64,
    /// Stale/partial checkpoint files detected and ignored at restore time.
    pub checkpoints_ignored: u64,
    /// Longs of checkpoint state written across the run.
    pub checkpoint_longs_written: u64,
    /// Longs of checkpoint state read back during restores.
    pub checkpoint_longs_restored: u64,
}

impl RecoveryStats {
    /// Whether any recovery machinery fired during the run.
    pub fn any_recovery(&self) -> bool {
        self.restarts > 0 || self.full_restarts > 0 || self.heartbeat_misses > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = FaultPolicy::default();
        assert!(p.heartbeat_timeout > p.heartbeat_interval);
        assert!(p.max_worker_restarts > 0);
        assert!(p.connect_attempts > 0);
    }

    #[test]
    fn plan_constructors() {
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::kill_at(2, 1).kill, Some((2, 1)));
        assert!(!FaultPlan::kill_at(2, 1).is_none());
        assert_eq!(FaultPlan::drop_send(5).drop_nth_send, Some(5));
        assert_eq!(
            FaultPlan::delay_send(3, Duration::from_millis(7)).delay_nth_send,
            Some((3, Duration::from_millis(7)))
        );
    }

    #[test]
    fn recovery_stats_detects_recovery() {
        assert!(!RecoveryStats::default().any_recovery());
        let s = RecoveryStats { restarts: 1, ..Default::default() };
        assert!(s.any_recovery());
    }
}
