//! Versioned, checksummed checkpoint files for superstep state.
//!
//! A checkpoint is a flat sequence of u64 words inside a small versioned
//! container, written atomically (temp file + rename) so a crash mid-write
//! never leaves a file that restores:
//!
//! ```text
//! word 0  magic   0x45434B50_54303141  ("ECKPT01A")
//! word 1  version CHECKPOINT_VERSION
//! word 2  len     number of payload words
//! word 3  check   word-folded FNV-1a over the payload
//! words 4..4+len  payload
//! ```
//!
//! Restore is paranoid by design: a torn write, wrong magic, foreign
//! version, truncated payload, or checksum mismatch yields a typed
//! [`CheckpointError`] — the caller treats the file as absent rather than
//! trusting it. The payload layout is the caller's business; this module
//! only guarantees "either the exact words written, or a typed refusal".

use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Container magic ("ECKPT01A" squeezed into a u64).
pub const CHECKPOINT_MAGIC: u64 = 0x4543_4B50_5430_3141;
/// Current container version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Typed reasons a checkpoint file cannot be restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file does not exist.
    Missing,
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file was written by an incompatible container version.
    UnsupportedVersion(u64),
    /// The file ends before the declared payload does (torn write).
    Truncated,
    /// The payload does not match its checksum (corrupted write).
    ChecksumMismatch,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Missing => write!(f, "checkpoint file missing"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "torn checkpoint (truncated payload)"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            CheckpointError::Missing
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// Word-folded FNV-1a (the same fold the CSR file format uses).
fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical checkpoint file name for `worker` at `superstep` — the state
/// *entering* that superstep.
pub fn checkpoint_file(dir: &Path, worker: u32, superstep: u32) -> PathBuf {
    dir.join(format!("ckpt-w{worker}-s{superstep}.bin"))
}

/// Atomically writes `words` to `path` (temp file in the same directory,
/// then rename). Returns the total Longs written including the container
/// header.
pub fn write_checkpoint(path: &Path, words: &[u64]) -> Result<u64, CheckpointError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        let mut buf = Vec::with_capacity(8 * (4 + words.len()));
        for w in
            [CHECKPOINT_MAGIC, CHECKPOINT_VERSION, words.len() as u64, fnv1a_words(words)]
        {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        for w in words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        f.write_all(&buf)?;
        f.sync_all().ok();
    }
    fs::rename(&tmp, path)?;
    Ok(4 + words.len() as u64)
}

/// Reads and fully validates a checkpoint, returning its payload words.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u64>, CheckpointError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 32 {
        return Err(CheckpointError::Truncated);
    }
    // A torn write from a killed worker must surface as a typed error, so
    // every word read is bounds-checked rather than indexed.
    let word = |i: usize| {
        bytes
            .get(8 * i..8 * i + 8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(CheckpointError::Truncated)
    };
    if word(0)? != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if word(1)? != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(word(1)?));
    }
    let len = word(2)? as usize;
    // Checked arithmetic: a corrupt length word must not overflow the
    // size computation (a debug-build panic is still a panic).
    let need =
        len.checked_add(4).and_then(|n| n.checked_mul(8)).ok_or(CheckpointError::Truncated)?;
    if bytes.len() < need {
        return Err(CheckpointError::Truncated);
    }
    let words: Vec<u64> = (0..len).map(|i| word(4 + i)).collect::<Result<_, _>>()?;
    if fnv1a_words(&words) != word(3)? {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("euler-ckpt-test-{}-{tag}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip() {
        let dir = temp_dir("roundtrip");
        let path = checkpoint_file(&dir, 3, 7);
        let words: Vec<u64> = (0..1000).map(|i| i * 31 + 7).collect();
        let longs = write_checkpoint(&path, &words).unwrap();
        assert_eq!(longs, 4 + 1000);
        assert_eq!(read_checkpoint(&path).unwrap(), words);
        assert!(path.file_name().unwrap().to_str().unwrap().contains("w3-s7"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_payload_roundtrip() {
        let dir = temp_dir("empty");
        let path = checkpoint_file(&dir, 0, 0);
        write_checkpoint(&path, &[]).unwrap();
        assert!(read_checkpoint(&path).unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_typed() {
        let dir = temp_dir("missing");
        assert!(matches!(
            read_checkpoint(&checkpoint_file(&dir, 0, 99)),
            Err(CheckpointError::Missing)
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_is_detected_and_refused() {
        let dir = temp_dir("torn");
        let path = checkpoint_file(&dir, 1, 1);
        write_checkpoint(&path, &[1, 2, 3, 4, 5]).unwrap();
        // Simulate a torn write: chop the file mid-payload.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        assert!(matches!(read_checkpoint(&path), Err(CheckpointError::Truncated)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_tag_is_refused() {
        let dir = temp_dir("version");
        let path = checkpoint_file(&dir, 1, 2);
        write_checkpoint(&path, &[9, 9, 9]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..16].copy_from_slice(&99u64.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_bit_is_refused() {
        let dir = temp_dir("corrupt");
        let path = checkpoint_file(&dir, 1, 3);
        write_checkpoint(&path, &[10, 20, 30]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x80;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_checkpoint(&path), Err(CheckpointError::ChecksumMismatch)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arbitrary_garbage_is_refused_not_panicked() {
        let dir = temp_dir("garbage");
        let path = checkpoint_file(&dir, 2, 0);
        fs::write(&path, b"not a checkpoint").unwrap();
        assert!(matches!(read_checkpoint(&path), Err(CheckpointError::Truncated)));
        fs::write(&path, vec![0xAB; 64]).unwrap();
        assert!(matches!(read_checkpoint(&path), Err(CheckpointError::BadMagic)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let dir = temp_dir("atomic");
        let path = checkpoint_file(&dir, 0, 1);
        write_checkpoint(&path, &[1]).unwrap();
        write_checkpoint(&path, &[2, 3]).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), vec![2, 3]);
        assert!(!path.with_extension("tmp").exists(), "temp file must not linger");
        fs::remove_dir_all(&dir).ok();
    }
}
