//! Per-level memory tracking across an engine run.
//!
//! Fig. 8 of the paper plots the cumulative and average partition state (in
//! Longs) per merge level for the current algorithm, an ideal constant-memory
//! case, and the proposed Sec.-5 heuristics. [`MemoryTracker`] collects the
//! per-level snapshots from which those series are produced.

use euler_metrics::MemoryState;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Thread-safe collector of per-level memory snapshots.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    inner: Arc<Mutex<Vec<MemoryState>>>,
}

/// A finished, immutable view of the tracked memory states.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MemoryTimeline {
    /// One snapshot per level, in level order.
    pub levels: Vec<MemoryState>,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the memory state of `partition` (in Longs) at `level`.
    /// Creates the level snapshot on first use.
    pub fn record(&self, level: u32, partition: impl Into<String>, longs: u64) {
        let mut states = self.inner.lock();
        while states.len() <= level as usize {
            let l = states.len() as u32;
            states.push(MemoryState::new(l));
        }
        states[level as usize].record(partition, longs);
    }

    /// Returns the snapshots collected so far.
    pub fn timeline(&self) -> MemoryTimeline {
        MemoryTimeline { levels: self.inner.lock().clone() }
    }
}

impl MemoryTimeline {
    /// Cumulative Longs per level (solid lines of Fig. 8).
    pub fn cumulative(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.cumulative()).collect()
    }

    /// Average Longs per active partition per level (dashed lines of Fig. 8).
    pub fn average(&self) -> Vec<f64> {
        self.levels.iter().map(|l| l.average()).collect()
    }

    /// Number of levels recorded.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Peak single-partition memory across the whole run: the quantity that
    /// must fit on one machine (§4.3's scaling limit).
    pub fn peak_partition(&self) -> u64 {
        self.levels.iter().map(|l| l.max_partition()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_level() {
        let t = MemoryTracker::new();
        t.record(0, "P0", 100);
        t.record(0, "P1", 200);
        t.record(1, "P1", 250);
        let timeline = t.timeline();
        assert_eq!(timeline.num_levels(), 2);
        assert_eq!(timeline.cumulative(), vec![300, 250]);
        assert_eq!(timeline.average(), vec![150.0, 250.0]);
        assert_eq!(timeline.peak_partition(), 250);
    }

    #[test]
    fn levels_created_on_demand() {
        let t = MemoryTracker::new();
        t.record(3, "P7", 10);
        let timeline = t.timeline();
        assert_eq!(timeline.num_levels(), 4);
        assert_eq!(timeline.cumulative(), vec![0, 0, 0, 10]);
    }

    #[test]
    fn tracker_is_shareable_across_threads() {
        let t = MemoryTracker::new();
        std::thread::scope(|s| {
            for i in 0..4u32 {
                let t = t.clone();
                s.spawn(move || t.record(0, format!("P{i}"), 100 * (i as u64 + 1)));
            }
        });
        let timeline = t.timeline();
        assert_eq!(timeline.cumulative(), vec![1000]);
        assert_eq!(timeline.levels[0].num_partitions(), 4);
    }

    #[test]
    fn empty_timeline() {
        let t = MemoryTracker::new();
        assert_eq!(t.timeline().num_levels(), 0);
        assert_eq!(t.timeline().peak_partition(), 0);
    }
}
