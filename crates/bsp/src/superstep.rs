//! Execution of a single superstep across workers.
//!
//! Each superstep the engine launches one OS thread per worker (mirroring how
//! a Spark stage launches tasks on executors); every worker runs the program
//! on its active partitions sequentially, then all workers join at the barrier
//! (thread join). Messages produced during the superstep are classified as
//! local (same worker) or remote (crossing workers, i.e. the shuffle) and are
//! delivered only after the barrier, giving exact BSP semantics.

use crate::message::Envelope;
use crate::program::{PartitionContext, PartitionProgram};
use crate::stats::SuperstepStats;
use crate::worker::PartitionPlacement;
use std::time::Instant;

/// Result of executing one superstep.
pub(crate) struct SuperstepOutcome {
    /// Statistics of this superstep.
    pub stats: SuperstepStats,
    /// Messages to deliver at the start of the next superstep.
    pub outgoing: Vec<Envelope>,
    /// Updated halt flags per partition.
    pub halted: Vec<bool>,
}

/// Work item for one partition on one worker.
struct Task<S> {
    partition: u32,
    state: S,
    inbox: Vec<Envelope>,
}

/// Result of one partition's execution.
struct TaskResult<S> {
    partition: u32,
    state: S,
    halted: bool,
    breakdown: euler_metrics::TimeBreakdown,
    memory_longs: Option<u64>,
    outgoing: Vec<Envelope>,
    compute: std::time::Duration,
}

/// Executes superstep `superstep` of `program`.
///
/// `states[p]` holds the state of partition `p` (always `Some` on entry and
/// exit), `inboxes[p]` the messages addressed to it, and `halted[p]` whether
/// it voted to halt earlier. A halted partition with an empty inbox is
/// skipped (stays halted).
pub(crate) fn execute_superstep<P: PartitionProgram>(
    program: &P,
    superstep: u32,
    states: &mut [Option<P::State>],
    inboxes: &mut [Vec<Envelope>],
    halted: &[bool],
    placement: &PartitionPlacement,
    worker_threads: Option<std::num::NonZeroUsize>,
) -> SuperstepOutcome {
    let num_partitions = states.len();
    debug_assert_eq!(inboxes.len(), num_partitions);
    debug_assert_eq!(halted.len(), num_partitions);

    let wall_start = Instant::now();
    let mut stats = SuperstepStats::new(superstep);
    let mut new_halted: Vec<bool> = halted.to_vec();

    // Build per-worker task lists, taking ownership of the involved states.
    let mut per_worker: Vec<Vec<Task<P::State>>> = (0..placement.num_workers()).map(|_| Vec::new()).collect();
    for p in 0..num_partitions {
        let inbox = std::mem::take(&mut inboxes[p]);
        let active = !halted[p] || !inbox.is_empty();
        if !active {
            continue;
        }
        let state = states[p].take().expect("state present for every partition");
        let worker = placement.worker_of(p as u32);
        per_worker[worker.index()].push(Task { partition: p as u32, state, inbox });
    }
    stats.active_partitions = per_worker.iter().map(|t| t.len()).sum();

    // One thread per worker with at least one task; tasks on a worker run
    // sequentially, workers run in parallel, and the barrier is the join.
    let results: Vec<TaskResult<P::State>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (widx, tasks) in per_worker.into_iter().enumerate() {
            if tasks.is_empty() {
                continue;
            }
            let worker = crate::message::WorkerId(widx as u32);
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(tasks.len());
                for task in tasks {
                    let mut state = task.state;
                    let mut ctx =
                        PartitionContext::new(superstep, task.partition, worker, worker_threads);
                    let t0 = Instant::now();
                    let outgoing = program.superstep(&mut ctx, &mut state, task.inbox);
                    let compute = t0.elapsed();
                    let (halted, breakdown, memory_longs) = ctx.finish();
                    out.push(TaskResult {
                        partition: task.partition,
                        state,
                        halted,
                        breakdown,
                        memory_longs,
                        outgoing,
                        compute,
                    });
                }
                out
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
    });

    // Barrier passed: put states back, aggregate stats, route messages.
    let mut outgoing_all = Vec::new();
    for r in results {
        let p = r.partition as usize;
        states[p] = Some(r.state);
        new_halted[p] = r.halted;
        stats.compute_time += r.compute;
        if let Some(longs) = r.memory_longs {
            stats.memory.record(format!("P{}", r.partition), longs);
        }
        let mut breakdown = r.breakdown;
        let categorised = breakdown.total();
        if r.compute > categorised {
            breakdown.add("uncategorised", r.compute - categorised);
        }
        stats.per_partition_compute.push((r.partition, breakdown));
        for env in r.outgoing {
            if placement.colocated(env.from, env.to) {
                stats.local_messages += 1;
                stats.local_bytes += env.len() as u64;
            } else {
                stats.remote_messages += 1;
                stats.remote_bytes += env.len() as u64;
            }
            outgoing_all.push(env);
        }
    }
    stats.per_partition_compute.sort_by_key(|(p, _)| *p);
    stats.wall_time = wall_start.elapsed();

    SuperstepOutcome { stats, outgoing: outgoing_all, halted: new_halted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;

    /// Program: every partition sends its partition index to partition 0 and
    /// halts.
    struct SendToZero;

    impl PartitionProgram for SendToZero {
        type State = u64;

        fn superstep(
            &self,
            ctx: &mut PartitionContext,
            state: &mut u64,
            messages: Vec<Envelope>,
        ) -> Vec<Envelope> {
            *state += messages.len() as u64;
            ctx.report_memory_longs(*state);
            ctx.vote_to_halt();
            if ctx.superstep == 0 && ctx.partition != 0 {
                vec![Envelope::new(ctx.partition, 0, 1, vec![0u8; 8])]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn superstep_routes_and_accounts_messages() {
        let program = SendToZero;
        let placement = PartitionPlacement::round_robin(4, 2);
        let mut states: Vec<Option<u64>> = vec![Some(0); 4];
        let mut inboxes: Vec<Vec<Envelope>> = vec![vec![]; 4];
        let halted = vec![false; 4];

        let outcome = execute_superstep(&program, 0, &mut states, &mut inboxes, &halted, &placement, None);
        assert_eq!(outcome.stats.active_partitions, 4);
        assert_eq!(outcome.outgoing.len(), 3);
        // Partition 2 is colocated with 0 (worker 0); partitions 1 and 3 are not.
        assert_eq!(outcome.stats.local_messages, 1);
        assert_eq!(outcome.stats.remote_messages, 2);
        assert_eq!(outcome.stats.remote_bytes, 16);
        assert!(outcome.halted.iter().all(|&h| h));
        assert!(states.iter().all(|s| s.is_some()));
        assert_eq!(outcome.stats.memory.cumulative(), 0); // all states are 0
        assert_eq!(outcome.stats.per_partition_compute.len(), 4);
    }

    #[test]
    fn halted_partitions_without_messages_are_skipped() {
        let program = SendToZero;
        let placement = PartitionPlacement::round_robin(2, 2);
        let mut states: Vec<Option<u64>> = vec![Some(0), Some(0)];
        let mut inboxes: Vec<Vec<Envelope>> = vec![vec![], vec![]];
        let halted = vec![true, true];
        let outcome = execute_superstep(&program, 1, &mut states, &mut inboxes, &halted, &placement, None);
        assert_eq!(outcome.stats.active_partitions, 0);
        assert!(outcome.outgoing.is_empty());
    }

    #[test]
    fn incoming_message_reactivates_halted_partition() {
        let program = SendToZero;
        let placement = PartitionPlacement::round_robin(2, 1);
        let mut states: Vec<Option<u64>> = vec![Some(0), Some(0)];
        let mut inboxes: Vec<Vec<Envelope>> = vec![vec![Envelope::new(1, 0, 1, vec![1u8; 8])], vec![]];
        let halted = vec![true, true];
        let outcome = execute_superstep(&program, 1, &mut states, &mut inboxes, &halted, &placement, None);
        assert_eq!(outcome.stats.active_partitions, 1);
        assert_eq!(states[0], Some(1)); // consumed one message
    }
}
