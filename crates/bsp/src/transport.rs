//! The wire-transport seam: framed, checksummed connections between the
//! coordinator and its workers.
//!
//! The engine's original deployment simulates every worker inside one
//! process; this module is what makes "distributed" real. A [`Transport`]
//! hands out [`Listener`]s and [`Connection`]s over one of three substrates:
//!
//! * [`MemTransport`] — the in-memory channel path (worker threads in this
//!   process, frames over `std::sync::mpsc`).
//! * [`TcpTransport`] — loopback TCP sockets (`std::net` only, per the
//!   offline-shim constraint), the path worker *processes* connect over.
//! * [`UnixTransport`] — Unix-domain sockets in a private temp directory.
//!
//! Every frame on a socket transport is length-prefixed and checksummed:
//!
//! ```text
//! magic   u32  0x45_55_4C_52 ("EULR")
//! version u16  FRAME_VERSION
//! kind    u16  message discriminant (opaque to this layer)
//! len     u32  payload bytes (<= MAX_FRAME_BYTES)
//! check   u64  FNV-1a over kind, len and payload
//! payload [u8; len]
//! ```
//!
//! Decoding garbage yields a typed [`FrameError`] — bad magic, foreign
//! version, truncated header/payload, oversized length (rejected **before**
//! any allocation), checksum mismatch — never a panic and never an
//! over-allocation. The in-memory transport carries the same frames through
//! the same codec, so both impls share one hardening test surface.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Frame magic: `"EULR"` as a big-endian u32.
pub const FRAME_MAGIC: u32 = 0x4555_4C52;
/// Current frame-format version.
pub const FRAME_VERSION: u16 = 1;
/// Upper bound on a frame payload. A length field above this is rejected as
/// [`FrameError::LengthOverflow`] before any buffer is allocated.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;
/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_BYTES: usize = 20;

/// Typed decode/transport errors. Garbage input maps to one of these —
/// never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: u32,
    },
    /// The frame was written by an incompatible format version.
    UnsupportedVersion {
        /// The version tag found.
        found: u16,
    },
    /// The stream ended inside a frame header or payload.
    Truncated {
        /// Bytes expected to complete the frame.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length field exceeds [`MAX_FRAME_BYTES`]; rejected before
    /// allocating.
    LengthOverflow {
        /// The declared payload length.
        declared: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// No frame arrived within the requested timeout.
    Timeout,
    /// An underlying I/O error (message kept, `std::io::Error` is not
    /// comparable).
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:#010x}"),
            FrameError::UnsupportedVersion { found } => {
                write!(f, "unsupported frame version {found}")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::LengthOverflow { declared } => {
                write!(f, "frame length {declared} exceeds cap {MAX_FRAME_BYTES}")
            }
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Timeout => write!(f, "timed out waiting for a frame"),
            FrameError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e.to_string())
    }
}

/// FNV-1a over a byte slice — the frame payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a continued from a prior digest, for chaining over several slices.
fn fnv1a_with(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The frame checksum: FNV-1a chained over the kind, the declared length and
/// the payload, so a flipped bit anywhere past the version field is caught
/// (a corrupted `kind` would otherwise decode fine and misroute the frame).
fn frame_checksum(kind: u16, len: u32, payload: &[u8]) -> u64 {
    let mut h = fnv1a_with(0xcbf2_9ce4_8422_2325, &kind.to_le_bytes());
    h = fnv1a_with(h, &len.to_le_bytes());
    fnv1a_with(h, payload)
}

/// Encodes one frame (header + payload) into a byte vector.
pub fn encode_frame(kind: u16, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(FrameError::LengthOverflow { declared: payload.len() as u64 });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(kind, payload.len() as u32, payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Reads a fixed-size little-endian field at byte offset `at`, surfacing a
/// short slice as [`FrameError::Truncated`] — decode paths must turn
/// garbage input into typed errors, never panics.
fn le_field<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], FrameError> {
    bytes
        .get(at..at.saturating_add(N))
        .and_then(|s| s.try_into().ok())
        .ok_or(FrameError::Truncated { expected: at.saturating_add(N), got: bytes.len() })
}

/// Decodes one frame from the front of `bytes`, returning
/// `(kind, payload, consumed)`.
pub fn decode_frame(bytes: &[u8]) -> Result<(u16, Vec<u8>, usize), FrameError> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated { expected: FRAME_HEADER_BYTES, got: bytes.len() });
    }
    let magic = u32::from_le_bytes(le_field(bytes, 0)?);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(le_field(bytes, 4)?);
    if version != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let kind = u16::from_le_bytes(le_field(bytes, 6)?);
    let len = u32::from_le_bytes(le_field(bytes, 8)?);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::LengthOverflow { declared: len as u64 });
    }
    let check = u64::from_le_bytes(le_field(bytes, 12)?);
    let total = FRAME_HEADER_BYTES + len as usize;
    let payload = bytes
        .get(FRAME_HEADER_BYTES..total)
        .ok_or(FrameError::Truncated { expected: total, got: bytes.len() })?
        .to_vec();
    if frame_checksum(kind, len, &payload) != check {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((kind, payload, total))
}

/// Reads one frame from a blocking stream. Returns [`FrameError::Closed`]
/// when the peer hangs up exactly at a frame boundary, `Truncated` when it
/// hangs up mid-frame, and `Timeout` when the stream's read timeout fires.
fn read_frame_stream(r: &mut impl Read) -> Result<(u16, Vec<u8>), FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_or(r, &mut header, true)?;
    let magic = u32::from_le_bytes(le_field(&header, 0)?);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(le_field(&header, 4)?);
    if version != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let kind = u16::from_le_bytes(le_field(&header, 6)?);
    let len = u32::from_le_bytes(le_field(&header, 8)?);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::LengthOverflow { declared: len as u64 });
    }
    let check = u64::from_le_bytes(le_field(&header, 12)?);
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    if frame_checksum(kind, len, &payload) != check {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((kind, payload))
}

/// `read_exact` with typed errors: EOF at offset 0 of the header is a clean
/// close; EOF anywhere else is a truncation; `WouldBlock`/`TimedOut` is a
/// timeout.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], eof_is_close: bool) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(buf.get_mut(filled..).unwrap_or(&mut [])) {
            Ok(0) => {
                return if eof_is_close && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated { expected: buf.len(), got: filled })
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(FrameError::Timeout);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Locks a mutex, tolerating poisoning. A panic on some other thread must
/// not cascade into a second panic here: the guarded transport state
/// (queues, stream halves, the listener registry) stays structurally
/// valid across a poisoned lock, and the panicking worker's failure
/// surfaces through its own join/heartbeat path instead.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bidirectional framed channel to one peer. `send` and `recv_timeout`
/// lock independent halves, so a heartbeat thread can transmit while the
/// main loop blocks on receive.
pub trait Connection: Send + Sync {
    /// Sends one frame.
    fn send(&self, kind: u16, payload: &[u8]) -> Result<(), FrameError>;
    /// Receives one frame, blocking at most `timeout` (`None` blocks
    /// indefinitely). A quiet timeout returns [`FrameError::Timeout`].
    fn recv_timeout(&self, timeout: Option<Duration>) -> Result<(u16, Vec<u8>), FrameError>;
    /// Arms a timeout for subsequent [`send`](Connection::send) calls: a
    /// send that cannot make progress within `timeout` (a stalled peer whose
    /// socket buffers are full) fails with [`FrameError::Timeout`] instead
    /// of blocking forever. `None` (the default) restores indefinite
    /// blocking; `Some(Duration::ZERO)` is rejected by the OS socket layer.
    /// Transports whose sends cannot block (in-memory queues) ignore this.
    fn set_send_timeout(&self, timeout: Option<Duration>) {
        let _ = timeout;
    }
}

/// Accepts inbound worker connections on an endpoint.
pub trait Listener: Send {
    /// The endpoint string workers pass to [`Transport::connect`]
    /// (e.g. `tcp:127.0.0.1:41234`, `unix:/tmp/…/w.sock`, `mem:3`).
    fn endpoint(&self) -> String;
    /// Accepts one connection, waiting at most `timeout`.
    fn accept(&self, timeout: Duration) -> Result<Box<dyn Connection>, FrameError>;
}

/// A connection factory: one of the three substrates above.
pub trait Transport: Send + Sync {
    /// Substrate name (`"mem"`, `"tcp"`, `"unix"`), for reports.
    fn name(&self) -> &'static str;
    /// Opens a listener on a fresh endpoint.
    fn listen(&self) -> Result<Box<dyn Listener>, FrameError>;
    /// Connects to a listener's endpoint.
    fn connect(&self, endpoint: &str) -> Result<Box<dyn Connection>, FrameError>;
    /// Whether endpoints are reachable from *other processes* (sockets yes,
    /// in-memory channels no).
    fn supports_processes(&self) -> bool {
        false
    }
}

/// Connects with bounded retry and linear backoff — worker processes race
/// the coordinator's `accept`, and the first attempts may land early.
///
/// The backoff sleeps only *between* attempts: once the final attempt has
/// failed there is nothing left to retry, so the error surfaces immediately
/// instead of after one more (useless) backoff period.
pub fn connect_with_retry(
    transport: &dyn Transport,
    endpoint: &str,
    attempts: u32,
    backoff: Duration,
) -> Result<Box<dyn Connection>, FrameError> {
    let attempts = attempts.max(1);
    let mut last = FrameError::Io("no connect attempts were made".into());
    for attempt in 0..attempts {
        match transport.connect(endpoint) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        if attempt + 1 < attempts {
            std::thread::sleep(retry_delay(backoff, attempt));
        }
    }
    Err(last)
}

/// Linear-backoff delay after failed attempt `attempt` (0-based):
/// `backoff * (attempt + 1)`, saturating — huge attempt counts or backoffs
/// clamp to `Duration::MAX` instead of panicking in `Duration`'s `Mul<u32>`.
fn retry_delay(backoff: Duration, attempt: u32) -> Duration {
    backoff.saturating_mul(attempt.saturating_add(1))
}

/// Connects to an endpoint by scheme (`tcp:`/`unix:`/`mem:`) — what the
/// `euler-worker` binary uses, since it only receives the endpoint string.
pub fn connect_endpoint(
    endpoint: &str,
    attempts: u32,
    backoff: Duration,
) -> Result<Box<dyn Connection>, FrameError> {
    let transport: Box<dyn Transport> = if endpoint.starts_with("tcp:") {
        Box::new(TcpTransport)
    } else if endpoint.starts_with("unix:") {
        Box::new(UnixTransport::new())
    } else if endpoint.starts_with("mem:") {
        Box::new(MemTransport)
    } else {
        return Err(FrameError::Io(format!("unknown endpoint scheme: {endpoint}")));
    };
    connect_with_retry(transport.as_ref(), endpoint, attempts, backoff)
}

// ---------------------------------------------------------------------------
// In-memory transport.
// ---------------------------------------------------------------------------

/// One direction of an in-memory connection: frames as encoded byte vectors
/// (the same codec as the socket paths, so corruption tests cover both).
type MemFrame = Vec<u8>;
/// A connect request: the dialing side's two channel halves.
type MemDial = (mpsc::Sender<MemFrame>, mpsc::Receiver<MemFrame>);

struct MemRegistry {
    /// endpoint token → queue of connect requests.
    pending: Mutex<HashMap<u64, mpsc::Sender<MemDial>>>,
    next_token: AtomicU64,
}

fn mem_registry() -> &'static MemRegistry {
    static REG: OnceLock<MemRegistry> = OnceLock::new();
    REG.get_or_init(|| MemRegistry {
        pending: Mutex::new(HashMap::new()),
        next_token: AtomicU64::new(1),
    })
}

/// The in-memory channel transport: worker threads in this process,
/// `mpsc` queues underneath, frames through the same codec as the sockets.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemTransport;

struct MemListener {
    token: u64,
    accept_rx: Mutex<mpsc::Receiver<MemDial>>,
}

impl Drop for MemListener {
    fn drop(&mut self) {
        lock_unpoisoned(&mem_registry().pending).remove(&self.token);
    }
}

struct MemConnection {
    tx: Mutex<Option<mpsc::Sender<MemFrame>>>,
    rx: Mutex<mpsc::Receiver<MemFrame>>,
}

impl Connection for MemConnection {
    fn send(&self, kind: u16, payload: &[u8]) -> Result<(), FrameError> {
        let frame = encode_frame(kind, payload)?;
        let guard = lock_unpoisoned(&self.tx);
        match guard.as_ref() {
            Some(tx) => tx.send(frame).map_err(|_| FrameError::Closed),
            None => Err(FrameError::Closed),
        }
    }

    fn recv_timeout(&self, timeout: Option<Duration>) -> Result<(u16, Vec<u8>), FrameError> {
        let rx = lock_unpoisoned(&self.rx);
        let frame = match timeout {
            None => rx.recv().map_err(|_| FrameError::Closed)?,
            Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => FrameError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => FrameError::Closed,
            })?,
        };
        let (kind, payload, _) = decode_frame(&frame)?;
        Ok((kind, payload))
    }
}

impl Listener for MemListener {
    fn endpoint(&self) -> String {
        format!("mem:{}", self.token)
    }

    fn accept(&self, timeout: Duration) -> Result<Box<dyn Connection>, FrameError> {
        let rx = lock_unpoisoned(&self.accept_rx);
        let (peer_tx, my_rx) = rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => FrameError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => FrameError::Closed,
        })?;
        Ok(Box::new(MemConnection { tx: Mutex::new(Some(peer_tx)), rx: Mutex::new(my_rx) }))
    }
}

impl Transport for MemTransport {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn listen(&self) -> Result<Box<dyn Listener>, FrameError> {
        let reg = mem_registry();
        let token = reg.next_token.fetch_add(1, Ordering::Relaxed);
        let (accept_tx, accept_rx) = mpsc::channel();
        lock_unpoisoned(&reg.pending).insert(token, accept_tx);
        Ok(Box::new(MemListener { token, accept_rx: Mutex::new(accept_rx) }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Connection>, FrameError> {
        let token: u64 = endpoint
            .strip_prefix("mem:")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| FrameError::Io(format!("bad mem endpoint: {endpoint}")))?;
        let accept_tx = {
            let reg = lock_unpoisoned(&mem_registry().pending);
            reg.get(&token).cloned().ok_or(FrameError::Closed)?
        };
        // Two directed queues; the listener side gets (its tx = our rx's tx).
        let (to_listener_tx, to_listener_rx) = mpsc::channel();
        let (to_dialer_tx, to_dialer_rx) = mpsc::channel();
        accept_tx.send((to_dialer_tx, to_listener_rx)).map_err(|_| FrameError::Closed)?;
        Ok(Box::new(MemConnection {
            tx: Mutex::new(Some(to_listener_tx)),
            rx: Mutex::new(to_dialer_rx),
        }))
    }
}

// ---------------------------------------------------------------------------
// Socket transports (TCP loopback + Unix domain).
// ---------------------------------------------------------------------------

/// A connection over any paired `Read`/`Write` stream halves with settable
/// read and write timeouts. Both timeouts are armed through the same
/// OS-socket seam (`set_read_timeout`/`set_write_timeout` closures captured
/// at construction), and both surface expiry as [`FrameError::Timeout`].
struct StreamConnection<R: Read + Send, W: Write + Send> {
    reader: Mutex<R>,
    writer: Mutex<W>,
    set_timeout: Box<dyn Fn(Option<Duration>) -> std::io::Result<()> + Send + Sync>,
    set_write_timeout: Box<dyn Fn(Option<Duration>) -> std::io::Result<()> + Send + Sync>,
    /// The send timeout requested via [`Connection::set_send_timeout`],
    /// armed on the socket at the next `send`.
    send_timeout: Mutex<Option<Duration>>,
}

impl<R: Read + Send, W: Write + Send> Connection for StreamConnection<R, W> {
    fn send(&self, kind: u16, payload: &[u8]) -> Result<(), FrameError> {
        let frame = encode_frame(kind, payload)?;
        let timeout = *lock_unpoisoned(&self.send_timeout);
        let mut w = lock_unpoisoned(&self.writer);
        (self.set_write_timeout)(timeout)?;
        write_all_or(&mut *w, &frame)?;
        match w.flush() {
            Ok(()) => Ok(()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(FrameError::Timeout)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn recv_timeout(&self, timeout: Option<Duration>) -> Result<(u16, Vec<u8>), FrameError> {
        let mut r = lock_unpoisoned(&self.reader);
        (self.set_timeout)(timeout)?;
        read_frame_stream(&mut *r)
    }

    fn set_send_timeout(&self, timeout: Option<Duration>) {
        *lock_unpoisoned(&self.send_timeout) = timeout;
    }
}

/// `write_all` with typed errors: `WouldBlock`/`TimedOut` from an armed send
/// timeout surfaces as [`FrameError::Timeout`] (a stalled peer can no longer
/// block a coordinator send past every `FaultPolicy` deadline); a peer that
/// vanished mid-write surfaces as `Closed`/`Io`.
fn write_all_or(w: &mut impl Write, buf: &[u8]) -> Result<(), FrameError> {
    let mut written = 0usize;
    while written < buf.len() {
        match w.write(buf.get(written..).unwrap_or(&[])) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(n) => written += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(FrameError::Timeout);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

fn tcp_connection(stream: TcpStream) -> Result<Box<dyn Connection>, FrameError> {
    stream.set_nodelay(true).ok();
    let reader = stream.try_clone()?;
    let read_handle = stream.try_clone()?;
    let write_handle = stream.try_clone()?;
    Ok(Box::new(StreamConnection {
        reader: Mutex::new(reader),
        writer: Mutex::new(stream),
        set_timeout: Box::new(move |t| read_handle.set_read_timeout(t)),
        set_write_timeout: Box::new(move |t| write_handle.set_write_timeout(t)),
        send_timeout: Mutex::new(None),
    }))
}

/// Loopback TCP transport (`127.0.0.1`, ephemeral ports).
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpTransport;

struct TcpListenerWrap {
    listener: TcpListener,
}

impl Listener for TcpListenerWrap {
    fn endpoint(&self) -> String {
        match self.listener.local_addr() {
            Ok(a) => format!("tcp:{a}"),
            Err(_) => "tcp:?".to_string(),
        }
    }

    fn accept(&self, timeout: Duration) -> Result<Box<dyn Connection>, FrameError> {
        // `std::net` has no accept timeout; poll in non-blocking mode.
        self.listener.set_nonblocking(true)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.listener.set_nonblocking(false)?;
                    stream.set_nonblocking(false)?;
                    return tcp_connection(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        self.listener.set_nonblocking(false)?;
                        return Err(FrameError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    self.listener.set_nonblocking(false)?;
                    return Err(e.into());
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn listen(&self) -> Result<Box<dyn Listener>, FrameError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        Ok(Box::new(TcpListenerWrap { listener }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Connection>, FrameError> {
        let addr = endpoint
            .strip_prefix("tcp:")
            .ok_or_else(|| FrameError::Io(format!("bad tcp endpoint: {endpoint}")))?;
        let stream = TcpStream::connect(addr)?;
        tcp_connection(stream)
    }

    fn supports_processes(&self) -> bool {
        true
    }
}

/// Unix-domain-socket transport; socket files live in a fresh private temp
/// directory, removed when the listener drops.
#[derive(Clone, Debug, Default)]
pub struct UnixTransport;

impl UnixTransport {
    /// Creates the transport (no state; sockets are per-listener).
    pub fn new() -> Self {
        UnixTransport
    }
}

struct UnixListenerWrap {
    listener: UnixListener,
    dir: std::path::PathBuf,
    path: std::path::PathBuf,
}

impl Drop for UnixListenerWrap {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
        std::fs::remove_dir(&self.dir).ok();
    }
}

fn unix_connection(stream: UnixStream) -> Result<Box<dyn Connection>, FrameError> {
    let reader = stream.try_clone()?;
    let read_handle = stream.try_clone()?;
    let write_handle = stream.try_clone()?;
    Ok(Box::new(StreamConnection {
        reader: Mutex::new(reader),
        writer: Mutex::new(stream),
        set_timeout: Box::new(move |t| read_handle.set_read_timeout(t)),
        set_write_timeout: Box::new(move |t| write_handle.set_write_timeout(t)),
        send_timeout: Mutex::new(None),
    }))
}

impl Listener for UnixListenerWrap {
    fn endpoint(&self) -> String {
        format!("unix:{}", self.path.display())
    }

    fn accept(&self, timeout: Duration) -> Result<Box<dyn Connection>, FrameError> {
        self.listener.set_nonblocking(true)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.listener.set_nonblocking(false)?;
                    stream.set_nonblocking(false)?;
                    return unix_connection(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        self.listener.set_nonblocking(false)?;
                        return Err(FrameError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    self.listener.set_nonblocking(false)?;
                    return Err(e.into());
                }
            }
        }
    }
}

static UNIX_SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

impl Transport for UnixTransport {
    fn name(&self) -> &'static str {
        "unix"
    }

    fn listen(&self) -> Result<Box<dyn Listener>, FrameError> {
        let dir = std::env::temp_dir().join(format!(
            "euler-uds-{}-{}",
            std::process::id(),
            UNIX_SOCK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("coordinator.sock");
        let listener = UnixListener::bind(&path)?;
        Ok(Box::new(UnixListenerWrap { listener, dir, path }))
    }

    fn connect(&self, endpoint: &str) -> Result<Box<dyn Connection>, FrameError> {
        let path = endpoint
            .strip_prefix("unix:")
            .ok_or_else(|| FrameError::Io(format!("bad unix endpoint: {endpoint}")))?;
        let stream = UnixStream::connect(path)?;
        unix_connection(stream)
    }

    fn supports_processes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello frames".to_vec();
        let frame = encode_frame(7, &payload).unwrap();
        let (kind, got, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(got, payload);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn empty_payload_roundtrip() {
        let frame = encode_frame(0, &[]).unwrap();
        let (kind, got, consumed) = decode_frame(&frame).unwrap();
        assert_eq!((kind, got.len(), consumed), (0, 0, FRAME_HEADER_BYTES));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[0] ^= 0xFF;
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadMagic { .. })));
    }

    #[test]
    fn foreign_version_is_typed() {
        let mut frame = encode_frame(1, b"x").unwrap();
        frame[4] = 0xEE;
        frame[5] = 0xEE;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::UnsupportedVersion { found: 0xEEEE })
        ));
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let frame = encode_frame(1, b"abcdef").unwrap();
        assert!(matches!(decode_frame(&frame[..10]), Err(FrameError::Truncated { .. })));
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 2]),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = encode_frame(1, b"x").unwrap();
        // Forge a ludicrous length; decode must refuse without trying to
        // allocate or read that much.
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::LengthOverflow { declared }) if declared == u32::MAX as u64
        ));
        assert!(matches!(
            encode_frame(1, &vec![0u8; MAX_FRAME_BYTES as usize + 1]),
            Err(FrameError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_is_checksum_mismatch() {
        let mut frame = encode_frame(1, b"payload bytes").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(decode_frame(&frame), Err(FrameError::ChecksumMismatch));
    }

    fn exercise_transport(t: &dyn Transport) {
        let listener = t.listen().unwrap();
        let endpoint = listener.endpoint();
        let t2 = endpoint.clone();
        let dialer = std::thread::spawn(move || {
            let conn = connect_endpoint(&t2, 10, Duration::from_millis(5)).unwrap();
            conn.send(3, b"ping").unwrap();
            let (kind, payload) = conn.recv_timeout(Some(Duration::from_secs(5))).unwrap();
            assert_eq!((kind, payload.as_slice()), (4, b"pong".as_slice()));
        });
        let conn = listener.accept(Duration::from_secs(5)).unwrap();
        let (kind, payload) = conn.recv_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!((kind, payload.as_slice()), (3, b"ping".as_slice()));
        conn.send(4, b"pong").unwrap();
        dialer.join().unwrap();
    }

    #[test]
    fn mem_transport_ping_pong() {
        exercise_transport(&MemTransport);
    }

    #[test]
    fn tcp_transport_ping_pong() {
        exercise_transport(&TcpTransport);
    }

    #[test]
    fn unix_transport_ping_pong() {
        exercise_transport(&UnixTransport::new());
    }

    #[test]
    fn recv_timeout_fires() {
        let listener = TcpTransport.listen().unwrap();
        let endpoint = listener.endpoint();
        let _dialer = TcpTransport.connect(&endpoint).unwrap();
        let conn = listener.accept(Duration::from_secs(5)).unwrap();
        let t0 = Instant::now();
        assert_eq!(
            conn.recv_timeout(Some(Duration::from_millis(30))).unwrap_err(),
            FrameError::Timeout
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn closed_peer_is_typed() {
        let listener = TcpTransport.listen().unwrap();
        let endpoint = listener.endpoint();
        let dialer = TcpTransport.connect(&endpoint).unwrap();
        let conn = listener.accept(Duration::from_secs(5)).unwrap();
        drop(dialer);
        assert_eq!(
            conn.recv_timeout(Some(Duration::from_secs(1))).unwrap_err(),
            FrameError::Closed
        );
    }

    #[test]
    fn garbage_stream_never_panics() {
        // A peer that writes raw garbage (not frames) must produce a typed
        // error on the reading side.
        let listener = TcpTransport.listen().unwrap();
        let endpoint = listener.endpoint().strip_prefix("tcp:").unwrap().to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(endpoint).unwrap();
            s.write_all(b"this is definitely not a frame header at all....").unwrap();
        });
        let conn = listener.accept(Duration::from_secs(5)).unwrap();
        let err = conn.recv_timeout(Some(Duration::from_secs(5))).unwrap_err();
        assert!(
            matches!(err, FrameError::BadMagic { .. } | FrameError::Truncated { .. }),
            "unexpected error: {err:?}"
        );
        writer.join().unwrap();
    }

    #[test]
    fn connect_with_retry_eventually_fails_typed() {
        match connect_endpoint("tcp:127.0.0.1:1", 2, Duration::from_millis(1)) {
            Err(FrameError::Io(_)) => {}
            Err(e) => panic!("expected Io error, got {e:?}"),
            Ok(_) => panic!("connect to a closed port unexpectedly succeeded"),
        }
    }

    #[test]
    fn retry_skips_backoff_after_final_attempt() {
        // Two attempts => exactly one inter-attempt sleep (150ms). The old
        // behaviour slept again after the final failure (150 + 300 = 450ms);
        // the fix returns right after the second refusal.
        let t0 = Instant::now();
        let r = connect_with_retry(&TcpTransport, "tcp:127.0.0.1:1", 2, Duration::from_millis(150));
        assert!(r.is_err());
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(140), "one backoff expected, got {elapsed:?}");
        assert!(elapsed < Duration::from_millis(400), "trailing backoff not skipped: {elapsed:?}");

        // A single attempt must never sleep at all, whatever the backoff.
        let t0 = Instant::now();
        let r = connect_with_retry(&TcpTransport, "tcp:127.0.0.1:1", 1, Duration::from_secs(3600));
        assert!(r.is_err());
        assert!(t0.elapsed() < Duration::from_secs(2), "attempts=1 slept on its huge backoff");
    }

    #[test]
    fn retry_delay_saturates_instead_of_panicking() {
        assert_eq!(retry_delay(Duration::from_secs(1), 3), Duration::from_secs(4));
        // `Duration::MAX * 2` panics through `Mul<u32>`; the helper clamps.
        assert_eq!(retry_delay(Duration::MAX, 1), Duration::MAX);
        assert_eq!(retry_delay(Duration::MAX, u32::MAX), Duration::MAX);
        assert_eq!(retry_delay(Duration::from_secs(u64::MAX / 2), u32::MAX), Duration::MAX);
    }

    #[test]
    fn send_timeout_on_unread_socket_is_typed() {
        // The accepting side never reads, so loopback socket buffers fill up
        // and `send` stalls. With a send timeout armed the stall surfaces as
        // FrameError::Timeout instead of blocking forever.
        let listener = TcpTransport.listen().unwrap();
        let endpoint = listener.endpoint();
        let conn = TcpTransport.connect(&endpoint).unwrap();
        let _peer = listener.accept(Duration::from_secs(5)).unwrap();
        conn.set_send_timeout(Some(Duration::from_millis(200)));
        let payload = vec![0xA5u8; 1 << 20];
        let mut saw_timeout = false;
        for _ in 0..64 {
            match conn.send(9, &payload) {
                Ok(()) => continue,
                Err(FrameError::Timeout) => {
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("expected Timeout, got {e:?}"),
            }
        }
        assert!(saw_timeout, "64 MiB into an unread socket without a send timeout firing");
        // Disarming restores the (non-blocking here) small-send path.
        conn.set_send_timeout(None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any (kind, payload) round-trips through the frame codec.
            #[test]
            fn random_frames_roundtrip(
                kind in 0u16..u16::MAX,
                payload in prop::collection::vec(0u64..256u64, 0..512),
            ) {
                let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
                let frame = encode_frame(kind, &payload).unwrap();
                let (k, p, consumed) = decode_frame(&frame).unwrap();
                prop_assert_eq!(k, kind);
                prop_assert_eq!(p, payload);
                prop_assert_eq!(consumed, frame.len());
            }

            /// Flipping any byte of an encoded frame yields a typed error —
            /// never a panic and never a silently different frame. (The
            /// checksum covers kind, length and payload; magic and version
            /// have their own typed rejections.)
            #[test]
            fn any_single_byte_corruption_is_detected(
                kind in 0u16..u16::MAX,
                payload in prop::collection::vec(0u64..256, 0..256),
                pos_seed in 0u64..10_000,
                flip in 1u64..256,
            ) {
                let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
                let mut frame = encode_frame(kind, &payload).unwrap();
                let pos = (pos_seed as usize) % frame.len();
                frame[pos] ^= flip as u8;
                prop_assert!(decode_frame(&frame).is_err(), "corruption at byte {} went undetected", pos);
            }

            /// Any prefix truncation of a valid frame is a typed error.
            #[test]
            fn any_truncation_is_detected(
                kind in 0u16..u16::MAX,
                payload in prop::collection::vec(0u64..256, 1..256),
                cut_seed in 0u64..10_000,
            ) {
                let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
                let frame = encode_frame(kind, &payload).unwrap();
                let cut = (cut_seed as usize) % frame.len();
                prop_assert!(matches!(decode_frame(&frame[..cut]), Err(FrameError::Truncated { .. })));
            }
        }
    }
}
