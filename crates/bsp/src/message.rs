//! Messages exchanged between partitions across workers.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a worker ("machine"/executor) in the BSP engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// A message addressed from one partition to another.
///
/// Payloads are already-serialised bytes: the engine never inspects them, it
/// only routes and *accounts* for them (bytes moved within a worker versus
/// across workers), which is what the paper's platform-overhead analysis needs.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending partition (engine-level partition index).
    pub from: u32,
    /// Receiving partition.
    pub to: u32,
    /// Application-defined tag distinguishing message kinds.
    pub tag: u32,
    /// Serialised payload.
    pub payload: Bytes,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(from: u32, to: u32, tag: u32, payload: impl Into<Bytes>) -> Self {
        Envelope { from, to, tag, payload: payload.into() }
    }

    /// Payload size in bytes (what the shuffle would move).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty (control messages).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Helpers for encoding sequences of 64-bit values into payloads.
///
/// The partition state the algorithm ships around (path maps, boundary
/// vertices, remote edges) is fundamentally a sequence of Longs; encoding them
/// explicitly keeps the byte counts interpretable in the paper's units.
pub mod codec {
    use bytes::{Buf, BufMut, Bytes, BytesMut};

    /// Encodes a slice of u64 values (little endian) into a payload.
    pub fn encode_u64s(values: &[u64]) -> Bytes {
        let mut buf = BytesMut::with_capacity(values.len() * 8);
        for &v in values {
            buf.put_u64_le(v);
        }
        buf.freeze()
    }

    /// Decodes a payload written by [`encode_u64s`].
    pub fn decode_u64s(payload: &Bytes) -> Vec<u64> {
        let mut buf = payload.clone();
        let mut out = Vec::with_capacity(buf.remaining() / 8);
        while buf.remaining() >= 8 {
            out.push(buf.get_u64_le());
        }
        out
    }

    /// Number of Longs a payload of `bytes` bytes represents (rounded up).
    pub fn longs_in(bytes: usize) -> u64 {
        (bytes as u64).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_len_and_flags() {
        let e = Envelope::new(0, 1, 7, vec![1u8, 2, 3]);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert_eq!(e.tag, 7);
        let empty = Envelope::new(1, 0, 0, Vec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_id_display() {
        assert_eq!(format!("{}", WorkerId(3)), "W3");
        assert_eq!(WorkerId(3).index(), 3);
    }

    #[test]
    fn u64_codec_roundtrip() {
        let values = vec![0u64, 1, u64::MAX, 42, 0xDEAD_BEEF];
        let encoded = codec::encode_u64s(&values);
        assert_eq!(encoded.len(), values.len() * 8);
        let decoded = codec::decode_u64s(&encoded);
        assert_eq!(decoded, values);
    }

    #[test]
    fn codec_longs_in_rounds_up() {
        assert_eq!(codec::longs_in(0), 0);
        assert_eq!(codec::longs_in(8), 1);
        assert_eq!(codec::longs_in(9), 2);
    }

    #[test]
    fn empty_payload_decodes_empty() {
        let decoded = codec::decode_u64s(&Bytes::new());
        assert!(decoded.is_empty());
    }
}
