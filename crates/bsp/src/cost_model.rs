//! Platform cost model: turns engine statistics into modelled platform time.
//!
//! The paper's Fig. 5 shows that on Spark only about half of the total job
//! time is user compute; the rest is the platform's shuffle (serialisation,
//! network, disk), task scheduling and barrier synchronisation, and Java
//! object construction — overheads that grow with data volume and task count.
//! Running in-process in Rust we do not pay those costs, so to reproduce the
//! *shape* of Fig. 5/6 the engine pairs its measured statistics with a
//! [`PlatformCostModel`] whose constants are calibrated to the behaviour the
//! paper reports. The modelled overhead is always reported separately from
//! measured time, never mixed into it.

use crate::stats::EngineStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Linear cost model for platform overheads.
///
/// `overhead = Σ_supersteps ( barrier
///                          + tasks · task_schedule
///                          + remote_bytes · per_byte_shuffle
///                          + total_bytes · per_byte_serde
///                          + partition_longs · per_long_object )`
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct PlatformCostModel {
    /// Fixed cost per superstep (stage barrier + driver coordination).
    pub barrier: Duration,
    /// Cost of scheduling and launching one task (one partition execution).
    pub task_schedule: Duration,
    /// Cost per byte moved across workers (network + shuffle write/read).
    pub per_byte_shuffle: Duration,
    /// Cost per byte of serialisation/deserialisation (paid for all messages).
    pub per_byte_serde: Duration,
    /// Cost per Long of partition state for object (re)construction — the
    /// paper's "Create Partition Object" component, which dominates at the
    /// leaf levels (Fig. 6).
    pub per_long_object: Duration,
}

impl PlatformCostModel {
    /// A zero model: modelled overhead is always zero (pure measured mode).
    pub fn zero() -> Self {
        PlatformCostModel {
            barrier: Duration::ZERO,
            task_schedule: Duration::ZERO,
            per_byte_shuffle: Duration::ZERO,
            per_byte_serde: Duration::ZERO,
            per_long_object: Duration::ZERO,
        }
    }

    /// Constants calibrated to the Spark 2.2 behaviour reported in §4.3 of
    /// the paper: seconds-scale task scheduling, shuffle throughput in the
    /// low hundreds of MB/s per executor, and object creation costs that make
    /// "Create Partition Object" comparable to the Phase-1 compute time at
    /// the leaf levels.
    pub fn spark_like() -> Self {
        PlatformCostModel {
            barrier: Duration::from_millis(500),
            task_schedule: Duration::from_millis(120),
            per_byte_shuffle: Duration::from_nanos(8),   // ≈125 MB/s effective shuffle
            per_byte_serde: Duration::from_nanos(4),     // ≈250 MB/s serde
            per_long_object: Duration::from_nanos(25),   // JVM object & GC amortised cost
        }
    }

    /// Modelled overhead for a finished run.
    pub fn overhead(&self, stats: &EngineStats) -> Duration {
        let mut total = Duration::ZERO;
        for s in &stats.supersteps {
            total += self.barrier;
            total += self.task_schedule * s.active_partitions as u32;
            total += mul_duration(self.per_byte_shuffle, s.remote_bytes);
            total += mul_duration(self.per_byte_serde, s.total_bytes());
            total += mul_duration(self.per_long_object, s.memory.cumulative());
        }
        total
    }

    /// Modelled overhead for a single superstep's statistics.
    pub fn superstep_overhead(&self, s: &crate::stats::SuperstepStats) -> Duration {
        self.barrier
            + self.task_schedule * s.active_partitions as u32
            + mul_duration(self.per_byte_shuffle, s.remote_bytes)
            + mul_duration(self.per_byte_serde, s.total_bytes())
            + mul_duration(self.per_long_object, s.memory.cumulative())
    }
}

impl Default for PlatformCostModel {
    fn default() -> Self {
        Self::zero()
    }
}

fn mul_duration(d: Duration, times: u64) -> Duration {
    Duration::from_nanos((d.as_nanos() as u64).saturating_mul(times))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SuperstepStats;

    fn stats_with(active: usize, remote_bytes: u64, longs: u64) -> EngineStats {
        let mut s = SuperstepStats::new(0);
        s.active_partitions = active;
        s.remote_bytes = remote_bytes;
        s.memory.record("P0", longs);
        EngineStats { supersteps: vec![s], num_workers: 1, ..Default::default() }
    }

    #[test]
    fn zero_model_is_zero() {
        let stats = stats_with(8, 1_000_000, 1_000_000);
        assert_eq!(PlatformCostModel::zero().overhead(&stats), Duration::ZERO);
    }

    #[test]
    fn overhead_grows_with_bytes() {
        let m = PlatformCostModel::spark_like();
        let small = m.overhead(&stats_with(1, 1_000, 0));
        let large = m.overhead(&stats_with(1, 1_000_000_000, 0));
        assert!(large > small);
    }

    #[test]
    fn overhead_grows_with_tasks_and_supersteps() {
        let m = PlatformCostModel::spark_like();
        let one = m.overhead(&stats_with(1, 0, 0));
        let eight = m.overhead(&stats_with(8, 0, 0));
        assert!(eight > one);

        let mut two_steps = stats_with(1, 0, 0);
        two_steps.supersteps.push(SuperstepStats::new(1));
        assert!(m.overhead(&two_steps) > one);
    }

    #[test]
    fn superstep_overhead_sums_to_run_overhead() {
        let m = PlatformCostModel::spark_like();
        let mut stats = stats_with(2, 5_000, 10_000);
        let mut s1 = SuperstepStats::new(1);
        s1.active_partitions = 1;
        s1.remote_bytes = 1_000;
        stats.supersteps.push(s1);
        let per_step: Duration = stats.supersteps.iter().map(|s| m.superstep_overhead(s)).sum();
        assert_eq!(per_step, m.overhead(&stats));
    }

    #[test]
    fn object_cost_reflects_partition_longs() {
        let m = PlatformCostModel::spark_like();
        let small = m.overhead(&stats_with(1, 0, 1_000));
        let large = m.overhead(&stats_with(1, 0, 100_000_000));
        assert!(large > small + Duration::from_secs(1));
    }
}
