//! # euler-bsp
//!
//! A Bulk Synchronous Parallel (BSP) execution engine used as the distributed
//! substrate for the partition-centric Euler circuit algorithm — the
//! workspace's stand-in for the Apache Spark cluster of the paper's
//! evaluation.
//!
//! The engine models a commodity cluster:
//!
//! * Each **worker** is an OS thread standing in for one machine/executor,
//!   with its own private state store (no shared mutable state between
//!   workers).
//! * Computation proceeds in **supersteps**: in each superstep every worker
//!   runs user code on the partitions it hosts, may emit messages to other
//!   workers, and then waits at a **barrier**. Messages are delivered in bulk
//!   after the barrier, exactly like Pregel/Giraph/Spark-stage semantics.
//! * All inter-worker traffic is **byte-serialised** through
//!   [`message::Envelope`]s over crossbeam channels, so the engine can report
//!   real serialisation and transfer costs the way the paper separates
//!   user-compute time from platform overhead (Fig. 5/6).
//! * A pluggable [`cost_model::PlatformCostModel`] adds *modelled* per-task
//!   scheduling and shuffle overheads calibrated to the Spark behaviour the
//!   paper reports, so the "Total time vs. Compute time" split of Fig. 5 can
//!   be reproduced on a single host. The measured compute times are always
//!   kept separate from modelled platform time.
//!
//! The two programming models of the paper's related-work discussion are both
//! provided: a partition-centric API ([`program::PartitionProgram`]) used by
//! the main algorithm, and a vertex-centric API ([`program::VertexProgram`])
//! used by the Makki baseline.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cost_model;
pub mod engine;
pub mod fault;
pub mod memory;
pub mod message;
pub mod program;
pub mod stats;
pub mod superstep;
pub mod transport;
pub mod vertex;
pub mod worker;

pub use checkpoint::{checkpoint_file, read_checkpoint, write_checkpoint, CheckpointError};
pub use cost_model::PlatformCostModel;
pub use engine::{BspConfig, BspEngine, RunOutcome, StepRun, WorkerCount};
pub use fault::{FaultPlan, FaultPolicy, KillMode, RecoveryStats};
pub use memory::{MemoryTimeline, MemoryTracker};
pub use message::{Envelope, WorkerId};
pub use program::{PartitionContext, PartitionProgram, VertexContext, VertexProgram};
pub use stats::{EngineStats, SuperstepStats};
pub use transport::{
    connect_endpoint, connect_with_retry, FrameError, MemTransport, TcpTransport, Transport,
    UnixTransport,
};
pub use vertex::{run_vertex_program, VertexEngineConfig, VertexEngineStats};
pub use worker::PartitionPlacement;
