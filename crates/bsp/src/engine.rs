//! The BSP engine: runs a partition program to completion.

use crate::cost_model::PlatformCostModel;
use crate::message::Envelope;
use crate::program::PartitionProgram;
use crate::stats::EngineStats;
use crate::superstep::execute_superstep;
use crate::worker::PartitionPlacement;
use std::time::Instant;

/// Worker-count policy of a [`BspConfig`].
///
/// Previously "one worker per partition" was encoded as the sentinel
/// `num_workers: 0`, which asserted deep inside
/// [`PartitionPlacement::round_robin`] (`num_workers >= 1`) whenever a caller
/// built a placement without resolving the sentinel first. The policy is now
/// a proper enum: an unresolved count cannot be mistaken for a cluster size,
/// the fixed count is a `NonZeroUsize` so a zero-size cluster is
/// unrepresentable, and [`BspConfig::resolved_workers`] is the single
/// resolution point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerCount {
    /// One worker (executor) per partition — the paper's deployment. The
    /// actual count is resolved against the partition count at run time.
    PerPartition,
    /// A fixed cluster size (structurally `>= 1`).
    Fixed(std::num::NonZeroUsize),
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BspConfig {
    /// Number of simulated machines. The paper's deployment uses one executor
    /// per partition; [`BspConfig::one_worker_per_partition`] reproduces that.
    pub workers: WorkerCount,
    /// Platform cost model used to report modelled overhead (never mixed into
    /// measured numbers).
    pub cost_model: PlatformCostModel,
    /// Safety bound on the number of supersteps.
    pub max_supersteps: u32,
    /// Compute threads each worker (simulated machine) may spend on one
    /// partition's program, surfaced to programs as
    /// [`crate::PartitionContext::worker_threads`]. `None` (default) leaves
    /// the budget unspecified — programs fall back to their own policy;
    /// `Some(1)` explicitly models single-core executors (programs must not
    /// parallelise internally); larger values model multi-core executors.
    pub worker_threads: Option<std::num::NonZeroUsize>,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            workers: WorkerCount::Fixed(std::num::NonZeroUsize::new(4).expect("non-zero")),
            cost_model: PlatformCostModel::zero(),
            max_supersteps: 10_000,
            worker_threads: None,
        }
    }
}

impl BspConfig {
    /// Configuration with a fixed number of workers.
    ///
    /// `num_workers == 0` used to panic deep inside the `NonZeroUsize`
    /// construction; a zero-size cluster is meaningless, so it now falls back
    /// to the only sensible adaptive policy,
    /// [`BspConfig::one_worker_per_partition`] (the paper's deployment), and
    /// the worker count resolves against the partition count at run time.
    pub fn with_workers(num_workers: usize) -> Self {
        match std::num::NonZeroUsize::new(num_workers) {
            Some(n) => BspConfig { workers: WorkerCount::Fixed(n), ..Default::default() },
            None => Self::one_worker_per_partition(),
        }
    }

    /// One worker per partition, like the paper's one-executor-per-partition
    /// deployment.
    pub fn one_worker_per_partition() -> Self {
        BspConfig { workers: WorkerCount::PerPartition, ..Default::default() }
    }

    /// The concrete worker count for a run over `num_partitions` partitions
    /// (at least 1, even for an empty partition set).
    pub fn resolved_workers(&self, num_partitions: usize) -> usize {
        match self.workers {
            WorkerCount::PerPartition => num_partitions.max(1),
            WorkerCount::Fixed(n) => n.get(),
        }
    }

    /// Sets the cost model.
    pub fn with_cost_model(mut self, m: PlatformCostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Sets the superstep bound.
    pub fn with_max_supersteps(mut self, n: u32) -> Self {
        self.max_supersteps = n;
        self
    }

    /// Sets the per-worker compute-thread budget (see
    /// [`BspConfig::worker_threads`]). `0` restores the unspecified
    /// default.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = std::num::NonZeroUsize::new(threads);
        self
    }
}

/// Result of an engine run: final per-partition states plus statistics.
pub struct RunOutcome<S> {
    /// Final state of every partition, indexed by engine partition index.
    pub states: Vec<S>,
    /// Collected statistics.
    pub stats: EngineStats,
}

/// The BSP engine.
#[derive(Clone, Debug, Default)]
pub struct BspEngine {
    config: BspConfig,
}

impl BspEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: BspConfig) -> Self {
        BspEngine { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &BspConfig {
        &self.config
    }

    /// Runs `program` over `initial` partition states until every partition
    /// has voted to halt and no messages are in flight (or the superstep bound
    /// is hit). Partition `p`'s state is `initial[p]`.
    pub fn run<P: PartitionProgram>(&self, program: &P, initial: Vec<P::State>) -> RunOutcome<P::State> {
        let num_partitions = initial.len();
        let num_workers = self.config.resolved_workers(num_partitions);
        let placement = PartitionPlacement::round_robin(num_partitions, num_workers);
        self.run_with_placement(program, initial, &placement)
    }

    /// Runs with an explicit partition placement.
    pub fn run_with_placement<P: PartitionProgram>(
        &self,
        program: &P,
        initial: Vec<P::State>,
        placement: &PartitionPlacement,
    ) -> RunOutcome<P::State> {
        let mut run = StepRun::with_placement(self.config, program, initial, placement.clone());
        while run.step() {}
        run.into_outcome()
    }
}

/// A BSP engine run driven one superstep at a time — the adapter external
/// drivers (the Euler pipeline's `BspBackend`) use to interleave engine
/// supersteps with their own per-level bookkeeping.
///
/// A `StepRun` owns everything [`BspEngine::run`] keeps on its stack —
/// program, per-partition states, in-flight inboxes, halt flags and
/// statistics — but hands control back to the caller after every barrier.
/// [`BspEngine::run`]/[`BspEngine::run_with_placement`] are implemented on
/// top of it, so stepped and free-running execution share one superstep loop.
pub struct StepRun<P: PartitionProgram> {
    config: BspConfig,
    program: P,
    placement: PartitionPlacement,
    states: Vec<Option<P::State>>,
    inboxes: Vec<Vec<Envelope>>,
    halted: Vec<bool>,
    stats: EngineStats,
    next_superstep: u32,
    started: Instant,
}

impl<P: PartitionProgram> StepRun<P> {
    /// Creates a stepped run over `initial` partition states, placing
    /// partitions round-robin over the configured worker count (resolved
    /// against the partition count, as in [`BspEngine::run`]).
    pub fn new(config: BspConfig, program: P, initial: Vec<P::State>) -> Self {
        let num_partitions = initial.len();
        let num_workers = config.resolved_workers(num_partitions);
        let placement = PartitionPlacement::round_robin(num_partitions, num_workers);
        Self::with_placement(config, program, initial, placement)
    }

    /// Creates a stepped run with an explicit placement.
    pub fn with_placement(
        config: BspConfig,
        program: P,
        initial: Vec<P::State>,
        placement: PartitionPlacement,
    ) -> Self {
        let num_partitions = initial.len();
        assert_eq!(placement.num_partitions(), num_partitions, "placement must cover all partitions");
        StepRun {
            config,
            program,
            stats: EngineStats { num_workers: placement.num_workers(), ..Default::default() },
            placement,
            states: initial.into_iter().map(Some).collect(),
            inboxes: (0..num_partitions).map(|_| Vec::new()).collect(),
            halted: vec![false; num_partitions],
            next_superstep: 0,
            started: Instant::now(),
        }
    }

    /// The program driving this run.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Number of partitions this run executes over.
    pub fn num_partitions(&self) -> usize {
        self.states.len()
    }

    /// True while another superstep would execute: some partition has not
    /// voted to halt or has messages pending, and the superstep bound has not
    /// been reached.
    pub fn is_active(&self) -> bool {
        self.next_superstep < self.config.max_supersteps
            && self.halted.iter().enumerate().any(|(p, &h)| !h || !self.inboxes[p].is_empty())
    }

    /// Executes one superstep (compute + barrier + message delivery).
    /// Returns `false` — without running anything — once the run is no
    /// longer [`active`](StepRun::is_active).
    pub fn step(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        let outcome = execute_superstep(
            &self.program,
            self.next_superstep,
            &mut self.states,
            &mut self.inboxes,
            &self.halted,
            &self.placement,
            self.config.worker_threads,
        );
        self.halted = outcome.halted;
        let num_partitions = self.states.len();
        for env in outcome.outgoing {
            let to = env.to as usize;
            assert!(to < num_partitions, "message addressed to unknown partition {to}");
            self.inboxes[to].push(env);
        }
        self.stats.supersteps.push(outcome.stats);
        self.next_superstep += 1;
        true
    }

    /// Snapshot of the statistics so far, finalised as a completed run's
    /// would be: wall time measured since construction, modelled platform
    /// overhead applied by the configured cost model.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats.clone();
        stats.total_wall_time = self.started.elapsed();
        stats.modelled_platform_overhead = self.config.cost_model.overhead(&stats);
        stats
    }

    /// Finishes the run, returning final states and finalised statistics.
    pub fn into_outcome(self) -> RunOutcome<P::State> {
        let stats = self.stats();
        let states = self.states.into_iter().map(|s| s.expect("state present")).collect();
        RunOutcome { states, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{codec, Envelope};
    use crate::program::PartitionContext;

    /// Ring-sum program: for `rounds` supersteps every partition sends its
    /// value to the next partition in the ring and adds what it receives.
    struct RingSum {
        rounds: u32,
        num_partitions: u32,
    }

    impl PartitionProgram for RingSum {
        type State = u64;

        fn superstep(&self, ctx: &mut PartitionContext, state: &mut u64, messages: Vec<Envelope>) -> Vec<Envelope> {
            for m in &messages {
                *state += codec::decode_u64s(&m.payload).iter().sum::<u64>();
            }
            ctx.report_memory_longs(1);
            if ctx.superstep >= self.rounds {
                ctx.vote_to_halt();
                return vec![];
            }
            let next = (ctx.partition + 1) % self.num_partitions;
            vec![Envelope::new(ctx.partition, next, 0, codec::encode_u64s(&[ctx.partition as u64 + 1]))]
        }
    }

    #[test]
    fn ring_sum_converges_with_expected_supersteps() {
        let program = RingSum { rounds: 3, num_partitions: 4 };
        let engine = BspEngine::new(BspConfig::with_workers(2));
        let outcome = engine.run(&program, vec![0u64; 4]);
        // Supersteps: 0,1,2 send; superstep 3 receives the last batch, halts.
        assert_eq!(outcome.stats.num_supersteps(), 4);
        // Each partition received its predecessor's value 3 times.
        let expected: Vec<u64> = (0..4u64).map(|p| 3 * ((p + 3) % 4 + 1)).collect();
        assert_eq!(outcome.states, expected);
        assert!(outcome.stats.total_messages() >= 12);
    }

    /// Program that never sends and halts immediately.
    struct HaltNow;
    impl PartitionProgram for HaltNow {
        type State = ();
        fn superstep(&self, ctx: &mut PartitionContext, _state: &mut (), _m: Vec<Envelope>) -> Vec<Envelope> {
            ctx.vote_to_halt();
            vec![]
        }
    }

    #[test]
    fn immediate_halt_takes_one_superstep() {
        let engine = BspEngine::new(BspConfig::with_workers(3));
        let outcome = engine.run(&HaltNow, vec![(); 5]);
        assert_eq!(outcome.stats.num_supersteps(), 1);
        assert_eq!(outcome.states.len(), 5);
    }

    /// Program that never halts — the superstep bound must stop it.
    struct NeverHalt;
    impl PartitionProgram for NeverHalt {
        type State = u32;
        fn superstep(&self, _ctx: &mut PartitionContext, state: &mut u32, _m: Vec<Envelope>) -> Vec<Envelope> {
            *state += 1;
            vec![]
        }
    }

    #[test]
    fn max_supersteps_bound_enforced() {
        let engine = BspEngine::new(BspConfig::with_workers(1).with_max_supersteps(7));
        let outcome = engine.run(&NeverHalt, vec![0u32; 2]);
        assert_eq!(outcome.stats.num_supersteps(), 7);
        assert_eq!(outcome.states, vec![7, 7]);
    }

    #[test]
    fn one_worker_per_partition_mode() {
        let engine = BspEngine::new(BspConfig::one_worker_per_partition());
        let outcome = engine.run(&HaltNow, vec![(); 6]);
        assert_eq!(outcome.stats.num_workers, 6);
    }

    #[test]
    fn per_partition_policy_resolves_before_placement() {
        let config = BspConfig::one_worker_per_partition();
        assert_eq!(config.workers, WorkerCount::PerPartition);
        assert_eq!(config.resolved_workers(5), 5);
        // Even an empty partition set resolves to a valid (>= 1) worker
        // count, so the placement assert can never fire.
        assert_eq!(config.resolved_workers(0), 1);
        let engine = BspEngine::new(config);
        let outcome = engine.run(&HaltNow, Vec::<()>::new());
        assert_eq!(outcome.stats.num_supersteps(), 0);
    }

    #[test]
    fn fixed_policy_resolves_to_itself() {
        let config = BspConfig::with_workers(3);
        let three = std::num::NonZeroUsize::new(3).unwrap();
        assert_eq!(config.workers, WorkerCount::Fixed(three));
        assert_eq!(config.resolved_workers(0), 3);
        assert_eq!(config.resolved_workers(100), 3);
    }

    #[test]
    fn zero_fixed_workers_falls_back_to_one_worker_per_partition() {
        // `with_workers(0)` used to panic via the NonZeroUsize construction;
        // it now degrades to the adaptive per-partition policy.
        let config = BspConfig::with_workers(0);
        assert_eq!(config.workers, WorkerCount::PerPartition);
        assert_eq!(config.resolved_workers(5), 5);
        assert_eq!(config.resolved_workers(0), 1);
        let engine = BspEngine::new(config);
        let outcome = engine.run(&HaltNow, vec![(); 3]);
        assert_eq!(outcome.stats.num_workers, 3);
        assert_eq!(outcome.stats.num_supersteps(), 1);
    }

    #[test]
    fn worker_threads_budget_reaches_the_context() {
        /// Program that records the thread budget its context advertises.
        struct SeeThreads;
        impl PartitionProgram for SeeThreads {
            type State = usize;
            fn superstep(&self, ctx: &mut PartitionContext, state: &mut usize, _m: Vec<Envelope>) -> Vec<Envelope> {
                *state = ctx.worker_threads.map(|n| n.get()).unwrap_or(0);
                ctx.vote_to_halt();
                vec![]
            }
        }
        let engine = BspEngine::new(BspConfig::with_workers(2).with_worker_threads(4));
        let outcome = engine.run(&SeeThreads, vec![0usize; 3]);
        assert_eq!(outcome.states, vec![4, 4, 4]);
        // An explicit 1 is distinguishable from the unspecified default
        // (programs must honour "this machine is single-core").
        let engine = BspEngine::new(BspConfig::with_workers(2).with_worker_threads(1));
        assert_eq!(engine.run(&SeeThreads, vec![0usize; 2]).states, vec![1, 1]);
        assert_eq!(BspConfig::default().worker_threads, None);
        assert_eq!(BspConfig::with_workers(1).with_worker_threads(0).worker_threads, None);
    }

    #[test]
    fn stepped_run_matches_free_running_engine() {
        let program = RingSum { rounds: 3, num_partitions: 4 };
        let free = BspEngine::new(BspConfig::with_workers(2)).run(&program, vec![0u64; 4]);

        let mut run = StepRun::new(BspConfig::with_workers(2), &program, vec![0u64; 4]);
        let mut steps = 0;
        while run.step() {
            steps += 1;
            // Mid-run snapshots stay consistent with the steps taken.
            assert_eq!(run.stats().num_supersteps(), steps);
        }
        assert!(!run.is_active());
        assert!(!run.step(), "stepping an inactive run is a no-op");
        let stepped = run.into_outcome();

        assert_eq!(stepped.states, free.states);
        assert_eq!(stepped.stats.num_supersteps(), free.stats.num_supersteps());
        assert_eq!(stepped.stats.total_messages(), free.stats.total_messages());
        assert_eq!(stepped.stats.num_workers, free.stats.num_workers);
    }

    #[test]
    fn stepped_run_respects_superstep_bound() {
        let mut run = StepRun::new(BspConfig::with_workers(1).with_max_supersteps(4), NeverHalt, vec![0u32; 2]);
        while run.step() {}
        let outcome = run.into_outcome();
        assert_eq!(outcome.stats.num_supersteps(), 4);
        assert_eq!(outcome.states, vec![4, 4]);
    }

    #[test]
    fn cost_model_produces_nonzero_overhead() {
        let engine = BspEngine::new(BspConfig::with_workers(2).with_cost_model(PlatformCostModel::spark_like()));
        let program = RingSum { rounds: 2, num_partitions: 3 };
        let outcome = engine.run(&program, vec![0u64; 3]);
        assert!(outcome.stats.modelled_platform_overhead > std::time::Duration::ZERO);
        assert!(outcome.stats.modelled_total_time() > outcome.stats.total_wall_time);
    }

    #[test]
    fn empty_partition_set_runs_zero_supersteps() {
        let engine = BspEngine::new(BspConfig::default());
        let outcome = engine.run(&HaltNow, Vec::<()>::new());
        assert_eq!(outcome.stats.num_supersteps(), 0);
        assert!(outcome.states.is_empty());
    }
}
