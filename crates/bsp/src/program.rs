//! Programming models: partition-centric and vertex-centric programs.
//!
//! The partition-centric model is the one the paper's algorithm uses — user
//! code sees a whole partition per superstep and can run an arbitrary local
//! algorithm over it before the barrier (Gonzalez et al. "think like a
//! graph"). The vertex-centric model is the classic Pregel abstraction used
//! by the Makki baseline.

use crate::message::{Envelope, WorkerId};
use euler_metrics::{PhaseTimer, TimeBreakdown};

/// Context handed to a [`PartitionProgram`] for one partition in one
/// superstep.
#[derive(Debug)]
pub struct PartitionContext {
    /// Superstep index (0-based).
    pub superstep: u32,
    /// Engine-level partition index this invocation is for.
    pub partition: u32,
    /// Worker hosting this partition.
    pub worker: WorkerId,
    /// Compute threads this worker may spend on the partition's program
    /// ([`crate::BspConfig::worker_threads`]). `None` means the engine
    /// config left the budget unspecified (programs fall back to their own
    /// policy); `Some(1)` explicitly models a single-core executor, which
    /// programs with an internal parallel mode must honour by not
    /// parallelising.
    pub worker_threads: Option<std::num::NonZeroUsize>,
    halted: bool,
    timer: PhaseTimer,
    memory_longs: Option<u64>,
}

impl PartitionContext {
    /// Creates a context (engine-internal).
    pub(crate) fn new(
        superstep: u32,
        partition: u32,
        worker: WorkerId,
        worker_threads: Option<std::num::NonZeroUsize>,
    ) -> Self {
        PartitionContext {
            superstep,
            partition,
            worker,
            worker_threads,
            halted: false,
            timer: PhaseTimer::new(),
            memory_longs: None,
        }
    }

    /// Votes to halt: the partition will not execute in later supersteps
    /// unless it receives a message.
    pub fn vote_to_halt(&mut self) {
        self.halted = true;
    }

    /// Whether this partition voted to halt.
    pub fn voted_to_halt(&self) -> bool {
        self.halted
    }

    /// Runs `f`, accounting its wall time under `label` in the per-partition
    /// compute breakdown (Fig. 6's stacked components).
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        self.timer.time(label, f)
    }

    /// Reports the partition's in-memory state size in Longs after this
    /// superstep (Fig. 8/9 accounting).
    pub fn report_memory_longs(&mut self, longs: u64) {
        self.memory_longs = Some(longs);
    }

    /// Engine-internal: consumes the context, returning (halted, breakdown,
    /// reported memory).
    pub(crate) fn finish(self) -> (bool, TimeBreakdown, Option<u64>) {
        (self.halted, self.timer.finish(), self.memory_longs)
    }
}

/// A partition-centric BSP program.
///
/// The engine owns one `State` per partition; in every superstep it calls
/// [`superstep`](PartitionProgram::superstep) for every active partition with
/// the messages addressed to it, and routes the returned envelopes before the
/// next superstep.
pub trait PartitionProgram: Sync {
    /// Per-partition state owned by the engine between supersteps.
    type State: Send;

    /// Executes one superstep for one partition.
    fn superstep(
        &self,
        ctx: &mut PartitionContext,
        state: &mut Self::State,
        messages: Vec<Envelope>,
    ) -> Vec<Envelope>;
}

/// A shared reference to a program is itself a program, so drivers like
/// [`crate::engine::StepRun`] can either own their program or borrow one
/// (as [`crate::engine::BspEngine::run`] does).
impl<P: PartitionProgram + ?Sized> PartitionProgram for &P {
    type State = P::State;

    fn superstep(
        &self,
        ctx: &mut PartitionContext,
        state: &mut Self::State,
        messages: Vec<Envelope>,
    ) -> Vec<Envelope> {
        (**self).superstep(ctx, state, messages)
    }
}

/// Context handed to a [`VertexProgram`] for one vertex in one superstep.
#[derive(Debug)]
pub struct VertexContext {
    /// Superstep index.
    pub superstep: u32,
    /// The vertex being computed.
    pub vertex: u64,
    halted: bool,
}

impl VertexContext {
    /// Creates a context (engine-internal).
    pub(crate) fn new(superstep: u32, vertex: u64) -> Self {
        VertexContext { superstep, vertex, halted: false }
    }

    /// Votes to halt; the vertex is reactivated by incoming messages.
    pub fn vote_to_halt(&mut self) {
        self.halted = true;
    }

    /// Whether this vertex voted to halt.
    pub fn voted_to_halt(&self) -> bool {
        self.halted
    }
}

/// A vertex-centric (Pregel-style) program, used by the Makki baseline.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type VertexState: Send;
    /// Message type exchanged between vertices.
    type Message: Send + Clone;

    /// Executes one superstep for one vertex, returning messages addressed to
    /// other vertices (by vertex id).
    fn compute(
        &self,
        ctx: &mut VertexContext,
        state: &mut Self::VertexState,
        messages: &[Self::Message],
    ) -> Vec<(u64, Self::Message)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_context_halt_and_memory() {
        let mut ctx = PartitionContext::new(3, 1, WorkerId(0), std::num::NonZeroUsize::new(2));
        assert_eq!(ctx.superstep, 3);
        assert_eq!(ctx.worker_threads, std::num::NonZeroUsize::new(2));
        assert!(!ctx.voted_to_halt());
        ctx.report_memory_longs(123);
        let out = ctx.time("phase1_tour", || 5);
        assert_eq!(out, 5);
        ctx.vote_to_halt();
        let (halted, breakdown, mem) = ctx.finish();
        assert!(halted);
        assert_eq!(mem, Some(123));
        assert_eq!(breakdown.phases(), vec!["phase1_tour"]);
    }

    #[test]
    fn vertex_context_halt() {
        let mut ctx = VertexContext::new(0, 42);
        assert_eq!(ctx.vertex, 42);
        ctx.vote_to_halt();
        assert!(ctx.voted_to_halt());
    }
}
