//! Partition-to-worker placement.
//!
//! The engine simulates a cluster of `num_workers` machines; every engine
//! partition lives on exactly one worker. Placement determines which message
//! traffic is "remote" (counted as shuffle bytes) and how much parallelism a
//! superstep really has (partitions on the same worker execute sequentially,
//! like tasks sharing an executor).

use crate::message::WorkerId;
use serde::{Deserialize, Serialize};

/// Mapping from engine partition index to worker.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct PartitionPlacement {
    map: Vec<WorkerId>,
    num_workers: usize,
}

impl PartitionPlacement {
    /// Places `num_partitions` partitions round-robin over `num_workers`
    /// workers — the paper's setup assigns one executor per partition, which
    /// is the special case `num_workers == num_partitions`.
    pub fn round_robin(num_partitions: usize, num_workers: usize) -> Self {
        assert!(num_workers >= 1, "need at least one worker");
        let map = (0..num_partitions).map(|p| WorkerId((p % num_workers) as u32)).collect();
        PartitionPlacement { map, num_workers }
    }

    /// Explicit placement.
    pub fn explicit(map: Vec<WorkerId>, num_workers: usize) -> Self {
        assert!(num_workers >= 1);
        assert!(map.iter().all(|w| w.index() < num_workers), "worker id out of range");
        PartitionPlacement { map, num_workers }
    }

    /// Worker hosting partition `p`.
    pub fn worker_of(&self, p: u32) -> WorkerId {
        self.map[p as usize]
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.map.len()
    }

    /// Partition indices hosted by worker `w`.
    pub fn partitions_of(&self, w: WorkerId) -> Vec<u32> {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, &h)| h == w)
            .map(|(p, _)| p as u32)
            .collect()
    }

    /// True when the two partitions are on the same worker (their traffic is
    /// local, not shuffle).
    pub fn colocated(&self, a: u32, b: u32) -> bool {
        self.worker_of(a) == self.worker_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_distributes_evenly() {
        let p = PartitionPlacement::round_robin(8, 4);
        assert_eq!(p.num_partitions(), 8);
        assert_eq!(p.num_workers(), 4);
        for w in 0..4 {
            assert_eq!(p.partitions_of(WorkerId(w)).len(), 2);
        }
        assert_eq!(p.worker_of(5), WorkerId(1));
    }

    #[test]
    fn one_partition_per_worker_like_the_paper() {
        let p = PartitionPlacement::round_robin(8, 8);
        for i in 0..8u32 {
            assert_eq!(p.worker_of(i), WorkerId(i));
        }
    }

    #[test]
    fn colocated_detection() {
        let p = PartitionPlacement::round_robin(4, 2);
        assert!(p.colocated(0, 2)); // both on worker 0
        assert!(!p.colocated(0, 1));
    }

    #[test]
    fn explicit_placement_respected() {
        let p = PartitionPlacement::explicit(vec![WorkerId(1), WorkerId(1), WorkerId(0)], 2);
        assert_eq!(p.partitions_of(WorkerId(1)), vec![0, 1]);
        assert_eq!(p.partitions_of(WorkerId(0)), vec![2]);
    }

    #[test]
    #[should_panic(expected = "worker id out of range")]
    fn explicit_placement_validates_ids() {
        PartitionPlacement::explicit(vec![WorkerId(5)], 2);
    }
}
