//! Minimal JSON tree, writer and parser.
//!
//! The build environment has no crates.io access, so the report JSON is
//! hand-rolled here instead of going through `serde_json`. The surface is
//! intentionally tiny: build a [`Value`], pretty-print it, parse it back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always represented as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds an array of strings.
    pub fn str_arr<'a>(items: impl IntoIterator<Item = &'a String>) -> Value {
        Value::Arr(items.into_iter().map(|s| Value::Str(s.clone())).collect())
    }

    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity tokens; follow
                    // JSON.stringify and emit null.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts; deeper (malformed or
/// adversarial) input returns `None` instead of overflowing the stack.
const MAX_DEPTH: u32 = 128;

/// Parses a JSON document. Returns `None` on malformed input.
pub fn parse(input: &str) -> Option<Value> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: u32) -> Option<Value> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Obj(pairs));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Option<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if *b.get(*pos)? != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must pair with `\uXXXX` low
                            // surrogate to form one non-BMP scalar.
                            if b.get(*pos + 1..*pos + 3)? != b"\\u" {
                                return None;
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return None;
                            }
                            *pos += 6;
                            let scalar =
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(scalar)?);
                        } else {
                            // Lone low surrogates are rejected by from_u32.
                            out.push(char::from_u32(code)?);
                        }
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let start = *pos;
                let s = std::str::from_utf8(&b[start..]).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses 4 hex digits at `at`.
fn parse_hex4(b: &[u8], at: usize) -> Option<u32> {
    let hex = b.get(at..at + 4)?;
    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Value> {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // (Rust's f64::from_str alone is laxer — it accepts `+1`, `1.`, `.5`.)
    let start = *pos;
    let mut p = *pos;
    if b.get(p) == Some(&b'-') {
        p += 1;
    }
    let digits = |p: &mut usize| {
        let from = *p;
        while *p < b.len() && b[*p].is_ascii_digit() {
            *p += 1;
        }
        *p > from
    };
    match b.get(p) {
        Some(b'0') => p += 1,
        Some(b'1'..=b'9') => {
            digits(&mut p);
        }
        _ => return None,
    }
    if b.get(p) == Some(&b'.') {
        p += 1;
        if !digits(&mut p) {
            return None;
        }
    }
    if matches!(b.get(p), Some(b'e' | b'E')) {
        p += 1;
        if matches!(b.get(p), Some(b'+' | b'-')) {
            p += 1;
        }
        if !digits(&mut p) {
            return None;
        }
    }
    *pos = p;
    std::str::from_utf8(&b[start..p]).ok()?.parse().ok().map(Value::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj(vec![
            ("name", Value::str("exp \"quoted\"\n")),
            ("count", Value::Num(42.0)),
            ("ratio", Value::Num(0.5)),
            ("flag", Value::Bool(true)),
            ("nothing", Value::Null),
            ("items", Value::Arr(vec![Value::Num(1.0), Value::str("two")])),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(vec![])),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).expect("own output parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_none());
        assert!(parse("[1,]").is_none());
        assert!(parse("\"unterminated").is_none());
        assert!(parse("{}extra").is_none());
    }

    #[test]
    fn numbers_follow_strict_json_grammar() {
        for valid in ["0", "-0", "42", "-1.5", "1e9", "2.5E-3", "1e+2", "0.001"] {
            assert!(parse(valid).is_some(), "{valid} is valid JSON");
        }
        for invalid in ["+1", "1.", ".5", "01", "1e", "1e+", "-", "--1", "0x1"] {
            assert!(parse(invalid).is_none(), "{invalid} is not valid JSON");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let v = Value::Arr(vec![
            Value::Num(f64::NAN),
            Value::Num(f64::INFINITY),
            Value::Num(f64::NEG_INFINITY),
            Value::Num(1.5),
        ]);
        let text = v.to_pretty();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let back = parse(&text).expect("output must stay valid JSON");
        assert_eq!(
            back,
            Value::Arr(vec![Value::Null, Value::Null, Value::Null, Value::Num(1.5)])
        );
    }

    #[test]
    fn surrogate_pairs_parse_and_lone_surrogates_fail() {
        let v = parse(r#""\ud83d\ude00""#).expect("surrogate pair is valid JSON");
        assert_eq!(v, Value::Str("😀".to_string()));
        // Raw (unescaped) multi-byte UTF-8 also passes through.
        assert_eq!(parse(r#""😀""#), Some(Value::Str("😀".to_string())));
        assert!(parse(r#""\ud83d""#).is_none(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_none(), "lone low surrogate");
        assert!(parse(r#""\ud83dA""#).is_none(), "high surrogate + BMP char");
    }

    #[test]
    fn deep_nesting_returns_none_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_none());
        // Within the limit still parses.
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_some());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "s": "x"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert!(v.get("missing").is_none());
    }
}
