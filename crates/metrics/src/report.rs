//! Experiment reports: text tables and collected series.
//!
//! The benchmark harness binaries (`euler-bench`, one per paper table/figure)
//! assemble a [`Report`] and print it; the same structure can be serialised to
//! JSON for post-processing or plotting.

use crate::series::Series;
use serde::{Deserialize, Serialize};

/// A rectangular text table with a header row.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row has one cell per column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics in debug builds if the arity does not match.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len(), "row arity must match columns");
        self.rows.push(cells);
    }

    /// Appends a row built from displayable values.
    pub fn row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// A full experiment report: free-form notes, tables, and series.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Experiment identifier, e.g. `"fig5_scaling"`.
    pub experiment: String,
    /// Free-form notes (parameters, scale factors, substitutions).
    pub notes: Vec<String>,
    /// Tables in presentation order.
    pub tables: Vec<Table>,
    /// Series in presentation order.
    pub series: Vec<Series>,
}

impl Report {
    /// Creates an empty report for the named experiment.
    pub fn new(experiment: impl Into<String>) -> Self {
        Report { experiment: experiment.into(), ..Default::default() }
    }

    /// Adds a note line.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Adds a table.
    pub fn add_table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a series.
    pub fn add_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Renders the whole report as text (notes, tables, series TSV blocks).
    pub fn render(&self) -> String {
        let mut out = format!("### Experiment: {}\n", self.experiment);
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        for s in &self.series {
            out.push('\n');
            out.push_str(&s.to_tsv());
        }
        out
    }

    /// Serialises the report to pretty JSON.
    pub fn to_json(&self) -> String {
        use crate::json::Value;
        let tables = self
            .tables
            .iter()
            .map(|t| {
                Value::obj(vec![
                    ("title", Value::str(&t.title)),
                    ("columns", Value::str_arr(&t.columns)),
                    ("rows", Value::Arr(t.rows.iter().map(Value::str_arr).collect())),
                ])
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|s| {
                Value::obj(vec![
                    ("name", Value::str(&s.name)),
                    (
                        "points",
                        Value::Arr(
                            s.points
                                .iter()
                                .map(|p| {
                                    Value::obj(vec![
                                        ("label", Value::str(&p.label)),
                                        ("x", Value::Num(p.x)),
                                        ("y", Value::Num(p.y)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Value::obj(vec![
            ("experiment", Value::str(&self.experiment)),
            ("notes", Value::str_arr(&self.notes)),
            ("tables", Value::Arr(tables)),
            ("series", Value::Arr(series)),
        ])
        .to_pretty()
    }

    /// Parses a report serialised by [`Report::to_json`]. Returns `None` on
    /// malformed input.
    pub fn from_json(text: &str) -> Option<Report> {
        use crate::json::{parse, Value};
        fn strings(v: &Value) -> Option<Vec<String>> {
            v.as_arr()?.iter().map(|s| s.as_str().map(String::from)).collect()
        }
        let root = parse(text)?;
        let mut report = Report::new(root.get("experiment")?.as_str()?);
        report.notes = strings(root.get("notes")?)?;
        for t in root.get("tables")?.as_arr()? {
            report.tables.push(Table {
                title: t.get("title")?.as_str()?.to_string(),
                columns: strings(t.get("columns")?)?,
                rows: t.get("rows")?.as_arr()?.iter().map(strings).collect::<Option<_>>()?,
            });
        }
        for s in root.get("series")?.as_arr()? {
            let mut series = Series::new(s.get("name")?.as_str()?);
            for p in s.get("points")?.as_arr()? {
                series.points.push(crate::series::DataPoint {
                    label: p.get("label")?.as_str()?.to_string(),
                    x: p.get("x")?.as_f64()?,
                    y: p.get("y")?.as_f64()?,
                });
            }
            report.series.push(series);
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns_columns() {
        let mut t = Table::new("Table 1", &["Graph", "|V|", "|E|"]);
        t.row(&["G20/P2", "20M", "212M"]);
        t.row(&["G50/P8", "49M", "529M"]);
        let s = t.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("G20/P2"));
        assert_eq!(t.num_rows(), 2);
        // Header and both rows appear on separate lines.
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn report_render_contains_everything() {
        let mut r = Report::new("fig5_scaling");
        r.note("scale=0.01 of the paper sizes");
        let mut t = Table::new("times", &["graph", "minutes"]);
        t.row(&["G20_P2", "11.2"]);
        r.add_table(t);
        let mut s = Series::new("total");
        s.push("G20_P2", 2.0, 11.2);
        r.add_series(s);
        let text = r.render();
        assert!(text.contains("fig5_scaling"));
        assert!(text.contains("scale=0.01"));
        assert!(text.contains("11.2"));
        assert!(text.contains("# series: total"));
    }

    #[test]
    fn report_json_roundtrip() {
        let mut r = Report::new("exp");
        r.note("n");
        let mut t = Table::new("t", &["a"]);
        t.row(&["cell with \"quotes\""]);
        r.add_table(t);
        let mut s = Series::new("series");
        s.push("p", 1.5, -2.0);
        r.add_series(s);
        let json = r.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.experiment, "exp");
        assert_eq!(back.notes, vec!["n".to_string()]);
        assert_eq!(back.tables, r.tables);
        assert_eq!(back.series, r.series);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("empty", &["a", "b"]);
        let s = t.render();
        assert!(s.contains('a'));
        assert_eq!(t.num_rows(), 0);
    }
}
