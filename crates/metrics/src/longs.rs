//! Memory-state accounting in 8-byte "Longs".
//!
//! The paper reports per-partition and per-level memory state as the number of
//! `Int64` (Java `Long`) values held in the partition data structures, because
//! raw RAM numbers are distorted by JVM object overheads (§4.3, Fig. 8/9).
//! This module provides the same platform-independent metric for the Rust
//! implementation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A categorised Long counter: how many 8-byte words a component holds, split
/// by category (e.g. "boundary_vertices", "remote_edges", "path_map").
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct LongsCounter {
    buckets: BTreeMap<String, u64>,
}

impl LongsCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `longs` to `category`.
    pub fn add(&mut self, category: &str, longs: u64) {
        *self.buckets.entry(category.to_string()).or_insert(0) += longs;
    }

    /// Sets `category` to exactly `longs`.
    pub fn set(&mut self, category: &str, longs: u64) {
        self.buckets.insert(category.to_string(), longs);
    }

    /// Longs recorded for `category` (zero if absent).
    pub fn get(&self, category: &str) -> u64 {
        self.buckets.get(category).copied().unwrap_or(0)
    }

    /// Total Longs across every category.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Total bytes (8 × total Longs).
    pub fn total_bytes(&self) -> u64 {
        self.total() * 8
    }

    /// Iterator over `(category, longs)` in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.buckets.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &LongsCounter) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

/// Memory state of a set of partitions at one merge level: the quantities
/// plotted in Fig. 8 (cumulative and average Longs) and Fig. 9 (per-partition
/// composition).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MemoryState {
    /// Merge level this snapshot describes (0 = leaf partitions).
    pub level: u32,
    /// Longs held by each active partition at this level, keyed by an opaque
    /// partition label.
    pub per_partition: BTreeMap<String, u64>,
}

impl MemoryState {
    /// Creates an empty snapshot for `level`.
    pub fn new(level: u32) -> Self {
        MemoryState { level, per_partition: BTreeMap::new() }
    }

    /// Records the state of one partition.
    pub fn record(&mut self, partition: impl Into<String>, longs: u64) {
        self.per_partition.insert(partition.into(), longs);
    }

    /// Cumulative Longs across all active partitions (solid lines of Fig. 8).
    pub fn cumulative(&self) -> u64 {
        self.per_partition.values().sum()
    }

    /// Average Longs per active partition (dashed lines of Fig. 8).
    pub fn average(&self) -> f64 {
        if self.per_partition.is_empty() {
            0.0
        } else {
            self.cumulative() as f64 / self.per_partition.len() as f64
        }
    }

    /// Number of active partitions at this level.
    pub fn num_partitions(&self) -> usize {
        self.per_partition.len()
    }

    /// Largest single-partition state (the per-machine memory bound, §3.5).
    pub fn max_partition(&self) -> u64 {
        self.per_partition.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_get_total() {
        let mut c = LongsCounter::new();
        c.add("remote_edges", 100);
        c.add("remote_edges", 50);
        c.add("boundary", 10);
        assert_eq!(c.get("remote_edges"), 150);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.total(), 160);
        assert_eq!(c.total_bytes(), 160 * 8);
    }

    #[test]
    fn counter_set_overwrites() {
        let mut c = LongsCounter::new();
        c.add("x", 5);
        c.set("x", 2);
        assert_eq!(c.get("x"), 2);
    }

    #[test]
    fn counter_merge_sums() {
        let mut a = LongsCounter::new();
        a.add("x", 1);
        let mut b = LongsCounter::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn memory_state_cumulative_and_average() {
        let mut m = MemoryState::new(1);
        m.record("P1", 100);
        m.record("P3", 300);
        assert_eq!(m.level, 1);
        assert_eq!(m.cumulative(), 400);
        assert!((m.average() - 200.0).abs() < 1e-9);
        assert_eq!(m.num_partitions(), 2);
        assert_eq!(m.max_partition(), 300);
    }

    #[test]
    fn empty_memory_state() {
        let m = MemoryState::new(0);
        assert_eq!(m.cumulative(), 0);
        assert_eq!(m.average(), 0.0);
        assert_eq!(m.max_partition(), 0);
    }
}
