//! # euler-metrics
//!
//! Instrumentation shared across the workspace: phase timers, memory-state
//! counters expressed in 8-byte "Longs" (the paper's platform-independent
//! memory metric), and experiment reporting helpers that print the tables and
//! series of the paper's evaluation section.

#![warn(missing_docs)]

pub mod json;
pub mod longs;
pub mod report;
pub mod series;
pub mod timer;

pub use longs::{LongsCounter, MemoryState};
pub use report::{Report, Table};
pub use series::{DataPoint, Series};
pub use timer::{PhaseTimer, TimeBreakdown};
