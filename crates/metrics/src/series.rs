//! Numeric data series for figure reproduction.
//!
//! Every figure in the paper's evaluation is a set of named series of `(x, y)`
//! points (e.g. Fig. 5: "Total Time" and "Compute Time" versus graph
//! configuration). The benchmark harness binaries collect [`Series`] values
//! and print them in a plot-ready, machine-parseable form.

use serde::{Deserialize, Serialize};

/// One point of a series: a label for the x position (graph name, level,
/// partition id, …), a numeric x (for scatter/trend plots), and the y value.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct DataPoint {
    /// Human-readable x label.
    pub label: String,
    /// Numeric x coordinate.
    pub x: f64,
    /// y value.
    pub y: f64,
}

/// A named series of data points.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct Series {
    /// Series name (legend entry).
    pub name: String,
    /// Points in insertion order.
    pub points: Vec<DataPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Appends a labelled point.
    pub fn push(&mut self, label: impl Into<String>, x: f64, y: f64) {
        self.points.push(DataPoint { label: label.into(), x, y });
    }

    /// Appends a point whose label is its x value.
    pub fn push_xy(&mut self, x: f64, y: f64) {
        self.points.push(DataPoint { label: format!("{x}"), x, y });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y values in order.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }

    /// Least-squares linear fit `y = a*x + b` over the points, returning
    /// `(slope, intercept)`. Returns `None` with fewer than two points or zero
    /// x variance. Used by the Fig.-7 harness for its trend line.
    pub fn linear_fit(&self) -> Option<(f64, f64)> {
        let n = self.points.len() as f64;
        if self.points.len() < 2 {
            return None;
        }
        let sx: f64 = self.points.iter().map(|p| p.x).sum();
        let sy: f64 = self.points.iter().map(|p| p.y).sum();
        let sxx: f64 = self.points.iter().map(|p| p.x * p.x).sum();
        let sxy: f64 = self.points.iter().map(|p| p.x * p.y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Some((slope, intercept))
    }

    /// Pearson correlation coefficient between x and y (Fig. 7 reports how
    /// closely observed times track the expected complexity).
    pub fn correlation(&self) -> Option<f64> {
        let n = self.points.len() as f64;
        if self.points.len() < 2 {
            return None;
        }
        let mx = self.points.iter().map(|p| p.x).sum::<f64>() / n;
        let my = self.points.iter().map(|p| p.y).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for p in &self.points {
            cov += (p.x - mx) * (p.y - my);
            vx += (p.x - mx).powi(2);
            vy += (p.y - my).powi(2);
        }
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }

    /// Renders the series as simple `label\tx\ty` rows, prefixed by a header.
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# series: {}\n# label\tx\t{}\n", self.name, self.name);
        for p in &self.points {
            out.push_str(&format!("{}\t{}\t{}\n", p.label, p.x, p.y));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut s = Series::new("total_time");
        assert!(s.is_empty());
        s.push("G20_P2", 2.0, 11.5);
        s.push_xy(3.0, 15.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ys(), vec![11.5, 15.0]);
        assert_eq!(s.points[1].label, "3");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let mut s = Series::new("y=2x+1");
        for x in 0..10 {
            s.push_xy(x as f64, 2.0 * x as f64 + 1.0);
        }
        let (a, b) = s.linear_fit().unwrap();
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
        assert!((s.correlation().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_needs_two_points_and_variance() {
        let mut s = Series::new("one");
        s.push_xy(1.0, 1.0);
        assert!(s.linear_fit().is_none());
        s.push_xy(1.0, 2.0); // zero x variance
        assert!(s.linear_fit().is_none());
        assert!(s.correlation().is_none());
    }

    #[test]
    fn tsv_contains_all_rows() {
        let mut s = Series::new("m");
        s.push("a", 1.0, 2.0);
        s.push("b", 2.0, 3.0);
        let tsv = s.to_tsv();
        assert!(tsv.contains("a\t1\t2"));
        assert!(tsv.contains("b\t2\t3"));
        assert!(tsv.starts_with("# series: m"));
    }

    #[test]
    fn negative_correlation_detected() {
        let mut s = Series::new("down");
        for x in 0..5 {
            s.push_xy(x as f64, -(x as f64));
        }
        assert!((s.correlation().unwrap() + 1.0).abs() < 1e-9);
    }
}
