//! Phase timers and labelled time breakdowns.
//!
//! Fig. 6 of the paper splits the user compute time of every partition at
//! every merge level into labelled components (copy source partition, copy
//! sink partition, create partition object, Phase-1 tour). [`TimeBreakdown`]
//! is the container for such a split and [`PhaseTimer`] is the stopwatch used
//! to fill it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A simple stopwatch that accumulates elapsed time into labelled buckets.
#[derive(Debug)]
pub struct PhaseTimer {
    started: Option<(String, Instant)>,
    breakdown: TimeBreakdown,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Creates an idle timer with an empty breakdown.
    pub fn new() -> Self {
        PhaseTimer { started: None, breakdown: TimeBreakdown::default() }
    }

    /// Starts (or restarts) timing the named phase. If another phase was
    /// running, its elapsed time is committed first.
    pub fn start(&mut self, phase: &str) {
        self.stop();
        self.started = Some((phase.to_string(), Instant::now()));
    }

    /// Stops the current phase, committing its elapsed time to the breakdown.
    pub fn stop(&mut self) {
        if let Some((phase, t0)) = self.started.take() {
            self.breakdown.add(&phase, t0.elapsed());
        }
    }

    /// Runs `f` while timing it under `phase`, returning its result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.breakdown.add(phase, t0.elapsed());
        out
    }

    /// Stops any running phase and returns the accumulated breakdown.
    pub fn finish(mut self) -> TimeBreakdown {
        self.stop();
        self.breakdown
    }

    /// Read access to the breakdown accumulated so far.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }
}

/// Accumulated durations keyed by phase label.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct TimeBreakdown {
    buckets: BTreeMap<String, Duration>,
}

impl TimeBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the bucket `phase`.
    pub fn add(&mut self, phase: &str, d: Duration) {
        *self.buckets.entry(phase.to_string()).or_default() += d;
    }

    /// Duration accumulated in `phase` (zero if unseen).
    pub fn get(&self, phase: &str) -> Duration {
        self.buckets.get(phase).copied().unwrap_or_default()
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.buckets.values().sum()
    }

    /// Iterator over `(phase, duration)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> + '_ {
        self.buckets.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another breakdown into this one, summing shared buckets.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Fraction of the total spent in `phase` (0 if the total is zero).
    pub fn fraction(&self, phase: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.get(phase).as_secs_f64() / total
        }
    }

    /// Phase labels present in the breakdown.
    pub fn phases(&self) -> Vec<&str> {
        self.buckets.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_closure_accumulates() {
        let mut t = PhaseTimer::new();
        let x = t.time("compute", || 21 * 2);
        assert_eq!(x, 42);
        // The measured duration may legitimately be ~0 on fast machines, so
        // no lower bound is asserted; the phases() check below covers that
        // the phase was recorded at all.
        assert_eq!(t.breakdown().phases(), vec!["compute"]);
    }

    #[test]
    fn start_stop_commits_once() {
        let mut t = PhaseTimer::new();
        t.start("a");
        std::thread::sleep(Duration::from_millis(2));
        t.start("b"); // implicitly stops "a"
        std::thread::sleep(Duration::from_millis(2));
        let bd = t.finish();
        assert!(bd.get("a") >= Duration::from_millis(1));
        assert!(bd.get("b") >= Duration::from_millis(1));
        assert_eq!(bd.phases().len(), 2);
    }

    #[test]
    fn breakdown_merge_and_fraction() {
        let mut a = TimeBreakdown::new();
        a.add("x", Duration::from_millis(30));
        a.add("y", Duration::from_millis(10));
        let mut b = TimeBreakdown::new();
        b.add("x", Duration::from_millis(10));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(40));
        assert_eq!(a.total(), Duration::from_millis(50));
        assert!((a.fraction("x") - 0.8).abs() < 1e-9);
        assert_eq!(a.fraction("missing"), 0.0);
    }

    #[test]
    fn empty_breakdown_total_is_zero() {
        let bd = TimeBreakdown::new();
        assert_eq!(bd.total(), Duration::ZERO);
        assert_eq!(bd.fraction("x"), 0.0);
        assert!(bd.phases().is_empty());
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut t = PhaseTimer::new();
        t.stop();
        assert_eq!(t.breakdown().total(), Duration::ZERO);
    }
}
