//! The `pathMap`: the per-partition summary produced by Phase 1 (§3.3.1).
//!
//! After Phase 1 a partition is described entirely by its path map: the OB
//! paths it found (now coarse edges), the cycles it anchored, the boundary
//! vertices and the remote edges it retains. This is what travels to the
//! parent partition during Phase 2, so its serialised size (in Longs) is also
//! the communication cost `O(|B_i| + |R_i|)` of §3.5.

use crate::fragment::FragmentId;
use euler_graph::{PartitionId, VertexId};
use serde::{Deserialize, Serialize};

/// Summary of one path (OB-pair) found by Phase 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathEntry {
    /// Fragment holding the path's edges.
    pub fragment: FragmentId,
    /// Start odd-degree boundary vertex.
    pub from: VertexId,
    /// End odd-degree boundary vertex.
    pub to: VertexId,
}

/// Summary of one cycle found by Phase 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleEntry {
    /// Fragment holding the cycle's edges.
    pub fragment: FragmentId,
    /// The vertex the cycle starts and ends at.
    pub anchor: VertexId,
}

/// Per-partition, per-level output summary of Phase 1.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMap {
    /// Partition (current merged id) that produced this map.
    pub partition: PartitionId,
    /// Level at which Phase 1 ran.
    pub level: u32,
    /// OB-pair paths found.
    pub paths: Vec<PathEntry>,
    /// Cycles found (EB cycles plus any internal cycles that could not be
    /// spliced into an existing fragment).
    pub cycles: Vec<CycleEntry>,
    /// Number of internal-vertex cycles that were spliced (`mergeInto`) into
    /// an existing fragment rather than kept separately.
    pub internal_cycles_merged: u64,
    /// Number of local edges consumed by this Phase-1 run.
    pub local_edges_consumed: u64,
}

impl PathMap {
    /// Creates an empty path map.
    pub fn new(partition: PartitionId, level: u32) -> Self {
        PathMap { partition, level, ..Default::default() }
    }

    /// Number of paths found. With `2n` odd boundary vertices this is `n`
    /// when every OB vertex terminates exactly one path, and can be larger
    /// when high-degree OB vertices terminate several.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of standalone cycles found.
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Serialised size of the path map in Longs: 3 per path entry, 2 per
    /// cycle entry, plus a small header.
    pub fn longs(&self) -> u64 {
        4 + 3 * self.paths.len() as u64 + 2 * self.cycles.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pathmap_counts_and_longs() {
        let mut pm = PathMap::new(PartitionId(2), 1);
        pm.paths.push(PathEntry { fragment: FragmentId(0), from: VertexId(1), to: VertexId(2) });
        pm.paths.push(PathEntry { fragment: FragmentId(1), from: VertexId(3), to: VertexId(4) });
        pm.cycles.push(CycleEntry { fragment: FragmentId(2), anchor: VertexId(5) });
        assert_eq!(pm.num_paths(), 2);
        assert_eq!(pm.num_cycles(), 1);
        assert_eq!(pm.longs(), 4 + 6 + 2);
        assert_eq!(pm.partition, PartitionId(2));
        assert_eq!(pm.level, 1);
    }

    #[test]
    fn empty_pathmap_has_header_only() {
        let pm = PathMap::new(PartitionId(0), 0);
        assert_eq!(pm.longs(), 4);
        assert_eq!(pm.num_paths(), 0);
        assert_eq!(pm.num_cycles(), 0);
    }
}
