//! Phase 2 planning: building the merge tree from the meta-graph (Alg. 2).
//!
//! The merge tree is computed statically on one machine before the iterative
//! execution starts. At every level a greedy maximal weighted matching over
//! the current meta-graph pairs up partitions, preferring pairs with many cut
//! edges between them (their edges become local sooner, so more state is
//! consumed early). The two partitions of a pair become siblings; the one
//! with the larger id is the parent into which the other merges. The
//! meta-graph is then contracted and the process repeats until a single
//! partition remains, giving `⌈log2 n⌉` merge levels.

use euler_graph::{MetaEdge, MetaGraph, PartitionId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One merge at one level: `child` merges into `parent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergePair {
    /// Partition that survives (the larger id of the pair, as in the paper).
    pub parent: PartitionId,
    /// Partition that is merged into the parent and then retires.
    pub child: PartitionId,
    /// Meta-edge weight between the two at the time of matching (number of
    /// cut edges that become local).
    pub weight: u64,
}

/// A node of the merge tree, for inspection and display (Fig. 2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeTreeNode {
    /// Partition id represented by this node.
    pub partition: PartitionId,
    /// Level at which this node is produced (0 = leaf).
    pub level: u32,
    /// Children merged to form it (empty for leaves, one entry for carried-
    /// over partitions, two for merged pairs).
    pub children: Vec<PartitionId>,
}

/// The merge tree: for every level, which partition pairs merge.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeTree {
    /// Pairs merged at each level, level 0 first.
    pub levels: Vec<Vec<MergePair>>,
    /// The single partition remaining at the root.
    pub root: PartitionId,
    /// Leaf partitions the tree was built from.
    pub leaves: Vec<PartitionId>,
}

/// Greedy maximal weighted matching: sort meta-edges by descending weight and
/// take every edge whose endpoints are still unmatched (`maximalMatching` of
/// Alg. 2).
pub fn greedy_maximal_matching(edges: &[MetaEdge]) -> Vec<MetaEdge> {
    let mut sorted: Vec<MetaEdge> = edges.to_vec();
    sorted.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.a.cmp(&b.a)).then(a.b.cmp(&b.b)));
    let mut matched: std::collections::HashSet<PartitionId> = std::collections::HashSet::new();
    let mut picked = Vec::new();
    for e in sorted {
        if !matched.contains(&e.a) && !matched.contains(&e.b) {
            matched.insert(e.a);
            matched.insert(e.b);
            picked.push(e);
        }
    }
    picked
}

impl MergeTree {
    /// Builds the merge tree for a meta-graph (Alg. 2, `generateMergeTree`).
    ///
    /// Unlike the paper's presentation, partitions left unmatched at a level
    /// (isolated meta-vertices or matching conflicts) are paired up with
    /// weight 0 when more than one of them remains; this keeps the tree
    /// height at `⌈log2 n⌉` even for disconnected or star-shaped meta-graphs.
    pub fn build(meta: &MetaGraph) -> MergeTree {
        let leaves = meta.vertices.clone();
        let mut tree = MergeTree { levels: Vec::new(), root: PartitionId(0), leaves };
        let mut current = meta.clone();
        while current.num_vertices() > 1 {
            let picked = greedy_maximal_matching(&current.edges);
            let mut matched: std::collections::HashSet<PartitionId> = std::collections::HashSet::new();
            let mut pairs = Vec::new();
            for e in picked {
                matched.insert(e.a);
                matched.insert(e.b);
                let (parent, child) = if e.a >= e.b { (e.a, e.b) } else { (e.b, e.a) };
                pairs.push(MergePair { parent, child, weight: e.weight });
            }
            // Pair up leftovers (weight 0) so the tree height stays logarithmic.
            let mut leftovers: Vec<PartitionId> = current
                .vertices
                .iter()
                .copied()
                .filter(|v| !matched.contains(v))
                .collect();
            leftovers.sort_unstable();
            while leftovers.len() >= 2 {
                let child = leftovers.remove(0);
                let parent = leftovers.pop().expect("len >= 2");
                pairs.push(MergePair { parent, child, weight: 0 });
            }
            // Safety: at least one pair must form whenever >1 vertices remain.
            assert!(!pairs.is_empty(), "matching made no progress");
            let mut parent_of: HashMap<PartitionId, PartitionId> = HashMap::new();
            for p in &pairs {
                parent_of.insert(p.child, p.parent);
            }
            current = current.contract(&parent_of);
            tree.levels.push(pairs);
        }
        tree.root = current.vertices.first().copied().unwrap_or(PartitionId(0));
        tree
    }

    /// Number of merge levels (tree height). The coordination cost of the
    /// whole algorithm is `height + 1` Phase-1 supersteps.
    pub fn height(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Number of Phase-1 supersteps the algorithm will take (§3.5:
    /// `⌈log n⌉ + 1`).
    pub fn num_supersteps(&self) -> u32 {
        self.height() + 1
    }

    /// Pairs merged at `level` (empty slice if the level does not exist).
    pub fn pairs_at(&self, level: u32) -> &[MergePair] {
        self.levels.get(level as usize).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The partition a leaf belongs to after all merges up to and including
    /// `level` (i.e. its representative at level `level + 1`).
    pub fn representative_after(&self, leaf: PartitionId, level: u32) -> PartitionId {
        let mut current = leaf;
        for l in 0..=level {
            for pair in self.pairs_at(l) {
                if pair.child == current {
                    current = pair.parent;
                }
            }
        }
        current
    }

    /// The first level at which two leaves end up in the same merged
    /// partition, or `None` if they never do (single-leaf trees).
    pub fn merge_level_of(&self, a: PartitionId, b: PartitionId) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        (0..self.height()).find(|&l| self.representative_after(a, l) == self.representative_after(b, l))
    }

    /// Flattens the tree into displayable nodes, level by level (Fig. 2).
    pub fn nodes(&self) -> Vec<MergeTreeNode> {
        let mut out: Vec<MergeTreeNode> = self
            .leaves
            .iter()
            .map(|&p| MergeTreeNode { partition: p, level: 0, children: vec![] })
            .collect();
        let mut alive: Vec<PartitionId> = self.leaves.clone();
        for (l, pairs) in self.levels.iter().enumerate() {
            let mut next_alive = Vec::new();
            for &p in &alive {
                if let Some(pair) = pairs.iter().find(|pair| pair.parent == p || pair.child == p) {
                    if pair.parent == p {
                        out.push(MergeTreeNode {
                            partition: p,
                            level: l as u32 + 1,
                            children: vec![pair.child, pair.parent],
                        });
                        next_alive.push(p);
                    }
                } else {
                    out.push(MergeTreeNode { partition: p, level: l as u32 + 1, children: vec![p] });
                    next_alive.push(p);
                }
            }
            alive = next_alive;
        }
        out
    }

    /// Renders the tree as indented text (Fig.-2 style), root last.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut alive = self.leaves.clone();
        s.push_str(&format!(
            "L0: {}\n",
            alive.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" ")
        ));
        for (l, pairs) in self.levels.iter().enumerate() {
            let mut next = Vec::new();
            for &p in &alive {
                if let Some(pair) = pairs.iter().find(|pair| pair.child == p) {
                    let _ = pair;
                    continue;
                }
                next.push(p);
            }
            s.push_str(&format!(
                "L{}: {}   (merges: {})\n",
                l + 1,
                next.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" "),
                pairs
                    .iter()
                    .map(|m| format!("{}<-{} w={}", m.parent, m.child, m.weight))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            alive = next;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_gen::synthetic::paper_fig1;
    use euler_graph::PartitionedGraph;

    fn fig1_meta() -> MetaGraph {
        let (g, a) = paper_fig1();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        MetaGraph::from_partitioned(&pg)
    }

    #[test]
    fn fig2_merge_tree_shape() {
        // The paper's Fig. 2: P3-P4 merge first (weight 2 is the largest),
        // leaving P1-P2; then the two merged partitions merge into one.
        let tree = MergeTree::build(&fig1_meta());
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.num_supersteps(), 3);
        let l0 = tree.pairs_at(0);
        assert_eq!(l0.len(), 2);
        // P2<-P3 pair (ids 2,3 zero-based) with weight 2 must be selected.
        assert!(l0.iter().any(|p| p.parent == PartitionId(3) && p.child == PartitionId(2) && p.weight == 2));
        assert!(l0.iter().any(|p| p.parent == PartitionId(1) && p.child == PartitionId(0)));
        assert_eq!(tree.pairs_at(1).len(), 1);
        assert_eq!(tree.root, PartitionId(3));
    }

    #[test]
    fn supersteps_match_paper_counts() {
        // §4.3: 2, 3, 3, 4 supersteps for 2, 3, 4, 8 partitions.
        for (parts, expected) in [(2u32, 2u32), (3, 3), (4, 3), (8, 4)] {
            let vertices: Vec<PartitionId> = (0..parts).map(PartitionId).collect();
            // Complete meta-graph with uniform weights.
            let mut pairs = Vec::new();
            for i in 0..parts {
                for j in (i + 1)..parts {
                    pairs.push((PartitionId(i), PartitionId(j), 1u64));
                }
            }
            let meta = MetaGraph::from_weights(vertices, &pairs);
            let tree = MergeTree::build(&meta);
            assert_eq!(tree.num_supersteps(), expected, "{parts} partitions");
        }
    }

    #[test]
    fn greedy_matching_prefers_heavy_edges() {
        let edges = vec![
            MetaEdge { a: PartitionId(0), b: PartitionId(1), weight: 1 },
            MetaEdge { a: PartitionId(1), b: PartitionId(2), weight: 10 },
            MetaEdge { a: PartitionId(2), b: PartitionId(3), weight: 1 },
            MetaEdge { a: PartitionId(0), b: PartitionId(3), weight: 5 },
        ];
        let picked = greedy_maximal_matching(&edges);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].weight, 10);
        assert_eq!(picked[1].weight, 5);
    }

    #[test]
    fn matching_never_reuses_a_vertex() {
        let edges = vec![
            MetaEdge { a: PartitionId(0), b: PartitionId(1), weight: 9 },
            MetaEdge { a: PartitionId(0), b: PartitionId(2), weight: 8 },
            MetaEdge { a: PartitionId(0), b: PartitionId(3), weight: 7 },
        ];
        let picked = greedy_maximal_matching(&edges);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].weight, 9);
    }

    #[test]
    fn star_metagraph_still_logarithmic() {
        // Star: partition 0 connected to 1..=6; unmatched leftovers must be
        // force-paired so the height stays ~log2(7).
        let vertices: Vec<PartitionId> = (0..7).map(PartitionId).collect();
        let pairs: Vec<_> = (1..7).map(|i| (PartitionId(0), PartitionId(i), 1u64)).collect();
        let meta = MetaGraph::from_weights(vertices, &pairs);
        let tree = MergeTree::build(&meta);
        assert!(tree.height() <= 3, "height {}", tree.height());
        // All leaves end up at the root.
        for i in 0..7 {
            assert_eq!(tree.representative_after(PartitionId(i), tree.height() - 1), tree.root);
        }
    }

    #[test]
    fn representative_and_merge_level() {
        let tree = MergeTree::build(&fig1_meta());
        assert_eq!(tree.representative_after(PartitionId(2), 0), PartitionId(3));
        assert_eq!(tree.representative_after(PartitionId(0), 0), PartitionId(1));
        assert_eq!(tree.representative_after(PartitionId(0), 1), tree.root);
        assert_eq!(tree.merge_level_of(PartitionId(2), PartitionId(3)), Some(0));
        assert_eq!(tree.merge_level_of(PartitionId(0), PartitionId(3)), Some(1));
        assert_eq!(tree.merge_level_of(PartitionId(1), PartitionId(1)), Some(0));
    }

    #[test]
    fn single_partition_tree_is_trivial() {
        let meta = MetaGraph::from_weights(vec![PartitionId(0)], &[]);
        let tree = MergeTree::build(&meta);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.num_supersteps(), 1);
        assert_eq!(tree.root, PartitionId(0));
    }

    #[test]
    fn disconnected_metagraph_terminates() {
        // No meta-edges at all: leftover pairing must still reduce to one.
        let vertices: Vec<PartitionId> = (0..5).map(PartitionId).collect();
        let meta = MetaGraph::from_weights(vertices, &[]);
        let tree = MergeTree::build(&meta);
        assert!(tree.height() <= 3);
        for i in 0..5 {
            assert_eq!(tree.representative_after(PartitionId(i), tree.height()), tree.root);
        }
    }

    #[test]
    fn render_and_nodes_cover_all_levels() {
        let tree = MergeTree::build(&fig1_meta());
        let text = tree.render();
        assert!(text.contains("L0:"));
        assert!(text.contains("L2:"));
        let nodes = tree.nodes();
        assert!(nodes.iter().any(|n| n.level == 0));
        assert!(nodes.iter().any(|n| n.level == tree.height() && n.partition == tree.root));
    }
}
