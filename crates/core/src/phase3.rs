//! Phase 3: unrolling the fragments into the final Euler circuit.
//!
//! After the last Phase-1 run on the single root partition, every edge of the
//! graph sits inside exactly one fragment: paths are referenced as coarse
//! virtual edges by exactly one higher-level fragment, and cycles are
//! free-standing, waiting to be spliced wherever their vertices occur in the
//! final walk. Phase 3 reconstructs the circuit in a single pass over this
//! book-keeping: it starts from a root cycle, emits its real edges, expands
//! virtual edges by recursing into the referenced path fragments (in the
//! traversed direction), and whenever the walk arrives at a vertex with a
//! pending cycle, splices that cycle in (rotated to start at that vertex)
//! before continuing.
//!
//! The paper defers a detailed Phase-3 algorithm; this implementation
//! completes it and is verified against the sequential Hierholzer oracle in
//! the integration tests. Splicing is indexed by *every* visible vertex of a
//! pending cycle (not only its anchor), which also covers partitions whose
//! local subgraph is disconnected.

use crate::error::EulerError;
use crate::fragment::{Fragment, FragmentId, FragmentStore, TourEdge};
use euler_graph::{bucket_by_slot, EdgeId, LocalIndex, VertexId};
use serde::{Deserialize, Serialize};

/// One step of the reconstructed circuit: a real graph edge traversed from
/// `from` to `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStep {
    /// The traversed edge.
    pub edge: EdgeId,
    /// Vertex the step starts at.
    pub from: VertexId,
    /// Vertex the step ends at.
    pub to: VertexId,
}

/// The result of Phase 3: one closed circuit per connected (edge-bearing)
/// component of the input graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CircuitResult {
    /// Closed circuits, one per component, each a sequence of steps.
    pub circuits: Vec<Vec<CircuitStep>>,
}

impl CircuitResult {
    /// The single Euler circuit, if the graph's edges form one component.
    pub fn circuit(&self) -> Option<&[CircuitStep]> {
        if self.circuits.len() == 1 {
            Some(&self.circuits[0])
        } else {
            None
        }
    }

    /// Total number of edges covered across all circuits.
    pub fn total_edges(&self) -> u64 {
        self.circuits.iter().map(|c| c.len() as u64).sum()
    }

    /// Number of separate circuits (1 for a connected Eulerian graph).
    pub fn num_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// The circuit as a vertex sequence (first circuit only), starting and
    /// ending at the same vertex — the representation used in §3 of the paper.
    pub fn vertex_sequence(&self) -> Option<Vec<VertexId>> {
        let c = self.circuit()?;
        let mut seq = Vec::with_capacity(c.len() + 1);
        if let Some(first) = c.first() {
            seq.push(first.from);
        }
        seq.extend(c.iter().map(|s| s.to));
        Some(seq)
    }
}

/// Index of pending (not yet spliced) cycles, keyed by every visible vertex.
///
/// Dense layout: visible vertices are interned through a [`LocalIndex`] and
/// the per-vertex cycle lists live in one flat CSR-style arena (`buckets`
/// sliced by `bucket_lo`/`bucket_end`). Fragment ids are store indices, so
/// the spliced set is a plain `Vec<bool>`. All orders match the previous
/// hash-map implementation: buckets hold ids ascending and are popped from
/// the back; `pop_any` yields the minimum unspliced cycle id via a monotone
/// scan (spliced flags are never cleared).
struct PendingCycles {
    /// Interning table over every visible vertex of every cycle fragment.
    index: LocalIndex,
    /// CSR start of each vertex slot's bucket.
    bucket_lo: Vec<u32>,
    /// Current live end of each bucket (consumed from the back).
    bucket_end: Vec<u32>,
    /// Flattened buckets: cycle ids visible at each vertex, id-ascending.
    buckets: Vec<FragmentId>,
    /// Whether fragment id `i` is a cycle (paths are never pending).
    is_cycle: Vec<bool>,
    /// Whether cycle id `i` has been spliced into the walk already.
    spliced: Vec<bool>,
    /// Monotone cursor for [`PendingCycles::pop_any`].
    scan: usize,
}

impl PendingCycles {
    fn new(store: &FragmentStore) -> Self {
        // The splice index is captured by the store at push/replace time
        // (while each fragment is still resident), so building the pending
        // set costs no spill I/O: a spilled fragment is read back exactly
        // once, by the unroll walk itself.
        let num_fragments = store.len();
        let pairs = store.cycle_vertex_pairs();
        let mut is_cycle = vec![false; num_fragments];
        for &(_, id) in &pairs {
            // Fragments are never empty, so every cycle contributes pairs.
            is_cycle[id.index()] = true;
        }
        let index = LocalIndex::from_vertices(pairs.iter().map(|&(v, _)| v));
        let n = index.len();
        // Counting-sort the (vertex, cycle) pairs into per-slot buckets,
        // preserving id-ascending insertion order within each slot.
        let (offsets, buckets) = bucket_by_slot(n, || {
            pairs.iter().map(|&(v, id)| (index.slot(v).expect("interned"), id))
        });
        PendingCycles {
            bucket_lo: offsets[..n].to_vec(),
            bucket_end: offsets[1..].to_vec(),
            index,
            buckets,
            is_cycle,
            spliced: vec![false; num_fragments],
            scan: 0,
        }
    }

    /// Pops one not-yet-spliced cycle containing `v`, if any.
    fn pop_at(&mut self, v: VertexId) -> Option<FragmentId> {
        let s = self.index.slot(v)? as usize;
        while self.bucket_end[s] > self.bucket_lo[s] {
            self.bucket_end[s] -= 1;
            let id = self.buckets[self.bucket_end[s] as usize];
            if !self.spliced[id.index()] {
                self.spliced[id.index()] = true;
                return Some(id);
            }
        }
        None
    }

    /// Any not-yet-spliced cycle (used to seed a new circuit / detect
    /// disconnected components). Yields ids ascending, like the previous
    /// `min`-scan, but amortised O(1) per call.
    fn pop_any(&mut self) -> Option<FragmentId> {
        while self.scan < self.spliced.len() {
            let id = self.scan;
            if self.is_cycle[id] && !self.spliced[id] {
                self.spliced[id] = true;
                return Some(FragmentId(id as u64));
            }
            self.scan += 1;
        }
        None
    }
}

/// An expansion frame: a fragment being walked, possibly reversed, with the
/// tour edges to process. Cycles spliced mid-walk are rotated before pushing.
struct Frame {
    edges: Vec<TourEdge>,
    pos: usize,
}

impl Frame {
    fn forward(f: &Fragment) -> Frame {
        Frame { edges: f.edges.clone(), pos: 0 }
    }

    fn reversed(f: &Fragment) -> Frame {
        Frame { edges: f.edges.iter().rev().map(|e| e.reversed()).collect(), pos: 0 }
    }

    fn rotated(f: &Fragment, start: VertexId) -> Frame {
        let rot = f.edges.iter().position(|e| e.from() == start).unwrap_or(0);
        let mut edges = Vec::with_capacity(f.edges.len());
        edges.extend_from_slice(&f.edges[rot..]);
        edges.extend_from_slice(&f.edges[..rot]);
        Frame { edges, pos: 0 }
    }
}

/// Unrolls every fragment in `store` into closed circuits.
///
/// Returns one circuit per group of fragments reachable from each other;
/// for a connected Eulerian input this is a single circuit covering all
/// edges.
pub fn unroll(store: &FragmentStore) -> CircuitResult {
    let mut pending = PendingCycles::new(store);
    let mut result = CircuitResult::default();

    while let Some(seed) = pending.pop_any() {
        let mut circuit: Vec<CircuitStep> = Vec::new();
        let seed_fragment = store.get(seed);
        let mut stack: Vec<Frame> = vec![Frame::forward(&seed_fragment)];
        // Splice anything already pending at the seed's start vertex.
        let mut splice_here = seed_fragment.start();
        while let Some(extra) = pending.pop_at(splice_here) {
            let f = store.get(extra);
            stack.push(Frame::rotated(&f, splice_here));
        }

        while let Some(frame) = stack.last_mut() {
            if frame.pos >= frame.edges.len() {
                stack.pop();
                continue;
            }
            let te = frame.edges[frame.pos];
            frame.pos += 1;
            match te {
                TourEdge::Real { edge, from, to } => {
                    circuit.push(CircuitStep { edge, from, to });
                    splice_here = to;
                    while let Some(extra) = pending.pop_at(splice_here) {
                        let f = store.get(extra);
                        stack.push(Frame::rotated(&f, splice_here));
                    }
                }
                TourEdge::Virtual { fragment, from, to } => {
                    let f = store.get(fragment);
                    let frame = if f.start() == from && f.end() == to {
                        Frame::forward(&f)
                    } else {
                        debug_assert!(
                            f.start() == to && f.end() == from,
                            "virtual edge endpoints must match the fragment"
                        );
                        Frame::reversed(&f)
                    };
                    stack.push(frame);
                }
            }
        }
        if !circuit.is_empty() {
            result.circuits.push(circuit);
        }
    }
    result.circuits = stitch_circuits(result.circuits);
    result
}

/// First position of every vertex along a closed walk, as a dense interned
/// map (the stitch map, hash-free).
struct WalkPositions {
    index: LocalIndex,
    first_pos: Vec<u32>,
}

/// Sentinel for "vertex interned but position not yet recorded".
const POS_UNSET: u32 = u32::MAX;

impl WalkPositions {
    fn new(walk: &[CircuitStep]) -> Self {
        // The walk chains (step i's `to` is step i+1's `from`), so the
        // distinct vertices are the `from`s plus the final `to`.
        let index = LocalIndex::from_vertices(
            walk.iter().map(|s| s.from).chain(walk.last().map(|s| s.to)),
        );
        let mut first_pos = vec![POS_UNSET; index.len()];
        for (i, step) in walk.iter().enumerate() {
            let s = index.slot(step.from).expect("interned") as usize;
            if first_pos[s] == POS_UNSET {
                first_pos[s] = i as u32;
            }
        }
        if let Some(last) = walk.last() {
            let s = index.slot(last.to).expect("interned") as usize;
            if first_pos[s] == POS_UNSET {
                first_pos[s] = walk.len() as u32;
            }
        }
        WalkPositions { index, first_pos }
    }

    fn position_of(&self, v: VertexId) -> Option<usize> {
        let s = self.index.slot(v)? as usize;
        let p = self.first_pos[s];
        debug_assert_ne!(p, POS_UNSET, "every interned vertex has a position");
        Some(p as usize)
    }
}

/// Splices closed circuits that share a vertex into one another until no two
/// remaining circuits intersect. Needed when the seeding order visits a
/// dependent cycle before the fragment whose hidden vertices connect it to
/// the rest of the walk; the classic Hierholzer merge applies unchanged
/// because every circuit is closed.
fn stitch_circuits(circuits: Vec<Vec<CircuitStep>>) -> Vec<Vec<CircuitStep>> {
    let mut finals: Vec<Vec<CircuitStep>> = Vec::new();
    let mut pending = circuits;
    while !pending.is_empty() {
        if finals.is_empty() {
            finals.push(pending.remove(0));
            continue;
        }
        let mut progressed = false;
        let mut still_pending = Vec::new();
        for candidate in pending {
            let mut placed = false;
            for host in finals.iter_mut() {
                let host_pos = WalkPositions::new(host);
                if let Some((rot, at)) = candidate
                    .iter()
                    .enumerate()
                    .find_map(|(j, s)| host_pos.position_of(s.from).map(|i| (j, i)))
                {
                    let mut rotated = Vec::with_capacity(candidate.len());
                    rotated.extend_from_slice(&candidate[rot..]);
                    rotated.extend_from_slice(&candidate[..rot]);
                    host.splice(at..at, rotated);
                    placed = true;
                    progressed = true;
                    break;
                }
            }
            if !placed {
                still_pending.push(candidate);
            }
        }
        pending = still_pending;
        if !progressed && !pending.is_empty() {
            // Remaining circuits are disconnected from every current final:
            // they form their own component(s).
            finals.push(pending.remove(0));
        }
    }
    finals
}

/// Convenience: unrolls and checks that a single closed circuit covering
/// `expected_edges` edges was produced.
pub fn unroll_single(store: &FragmentStore, expected_edges: u64) -> Result<Vec<CircuitStep>, EulerError> {
    let result = unroll(store);
    if result.num_circuits() != 1 {
        return Err(EulerError::MultipleCircuits { count: result.num_circuits() });
    }
    let circuit = result.circuits.into_iter().next().expect("one circuit");
    if (circuit.len() as u64) < expected_edges {
        return Err(EulerError::MissingEdges { missing: expected_edges - circuit.len() as u64 });
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{Fragment, FragmentKind};
    use euler_graph::PartitionId;

    fn real(edge: u64, from: u64, to: u64) -> TourEdge {
        TourEdge::Real { edge: EdgeId(edge), from: VertexId(from), to: VertexId(to) }
    }

    fn cycle(store: &FragmentStore, level: u32, edges: Vec<TourEdge>) -> FragmentId {
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level,
            partition: PartitionId(0),
            edges,
        })
    }

    fn path(store: &FragmentStore, level: u32, edges: Vec<TourEdge>) -> FragmentId {
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level,
            partition: PartitionId(0),
            edges,
        })
    }

    #[test]
    fn single_triangle_cycle_unrolls() {
        let store = FragmentStore::new();
        cycle(&store, 0, vec![real(0, 0, 1), real(1, 1, 2), real(2, 2, 0)]);
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 1);
        assert_eq!(result.total_edges(), 3);
        let seq = result.vertex_sequence().unwrap();
        assert_eq!(seq.first(), seq.last());
    }

    #[test]
    fn virtual_edge_expands_forward_and_reverse() {
        let store = FragmentStore::new();
        // Path fragment 1 -> 2 -> 3.
        let p = path(&store, 0, vec![real(10, 1, 2), real(11, 2, 3)]);
        // Root cycle: 0 ->1, virtual(1->3), 3->0  (forward use).
        cycle(
            &store,
            1,
            vec![
                real(0, 0, 1),
                TourEdge::Virtual { fragment: p, from: VertexId(1), to: VertexId(3) },
                real(1, 3, 0),
            ],
        );
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 1);
        let edges: Vec<u64> = result.circuits[0].iter().map(|s| s.edge.0).collect();
        assert_eq!(edges, vec![0, 10, 11, 1]);

        // Reverse use: 0 -> 3, virtual(3->1), 1 -> 0.
        let store2 = FragmentStore::new();
        let p2 = path(&store2, 0, vec![real(10, 1, 2), real(11, 2, 3)]);
        cycle(
            &store2,
            1,
            vec![
                real(0, 0, 3),
                TourEdge::Virtual { fragment: p2, from: VertexId(3), to: VertexId(1) },
                real(1, 1, 0),
            ],
        );
        let result2 = unroll(&store2);
        let steps = &result2.circuits[0];
        assert_eq!(steps.iter().map(|s| s.edge.0).collect::<Vec<_>>(), vec![0, 11, 10, 1]);
        // Reversed direction flips from/to.
        assert_eq!(steps[1].from, VertexId(3));
        assert_eq!(steps[1].to, VertexId(2));
    }

    #[test]
    fn pending_cycle_spliced_at_shared_vertex() {
        let store = FragmentStore::new();
        // Main cycle around 0-1-2-0 and a separate cycle 1-3-4-1 anchored at 1.
        cycle(&store, 0, vec![real(0, 0, 1), real(1, 1, 2), real(2, 2, 0)]);
        cycle(&store, 0, vec![real(3, 1, 3), real(4, 3, 4), real(5, 4, 1)]);
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 1);
        assert_eq!(result.total_edges(), 6);
        // The combined walk is still closed.
        let seq = result.vertex_sequence().unwrap();
        assert_eq!(seq.first(), seq.last());
    }

    #[test]
    fn cycle_spliced_even_when_anchor_not_shared() {
        let store = FragmentStore::new();
        // Main cycle 0-1-2-0; second cycle anchored at 5 but passing through 2:
        // 5-2, 2-6, 6-5. Anchor (5) is not on the main cycle, but vertex 2 is.
        cycle(&store, 0, vec![real(0, 0, 1), real(1, 1, 2), real(2, 2, 0)]);
        cycle(&store, 0, vec![real(3, 5, 2), real(4, 2, 6), real(5, 6, 5)]);
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 1, "splicing must use all visible vertices, not only anchors");
        assert_eq!(result.total_edges(), 6);
    }

    #[test]
    fn disconnected_cycles_produce_two_circuits() {
        let store = FragmentStore::new();
        cycle(&store, 0, vec![real(0, 0, 1), real(1, 1, 2), real(2, 2, 0)]);
        cycle(&store, 0, vec![real(3, 10, 11), real(4, 11, 12), real(5, 12, 10)]);
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 2);
        assert_eq!(result.total_edges(), 6);
        assert!(result.circuit().is_none());
        assert!(unroll_single(&store, 6).is_err());
    }

    #[test]
    fn nested_virtual_edges_expand_recursively() {
        let store = FragmentStore::new();
        // Level-0 path A: 1 -> 2 -> 3.
        let a = path(&store, 0, vec![real(0, 1, 2), real(1, 2, 3)]);
        // Level-1 path B: 0 -> 1 ~A~> 3 -> 4 (contains A).
        let b = path(
            &store,
            1,
            vec![
                real(2, 0, 1),
                TourEdge::Virtual { fragment: a, from: VertexId(1), to: VertexId(3) },
                real(3, 3, 4),
            ],
        );
        // Level-2 root cycle: 5 -> 0 ~B~> 4 -> 5.
        cycle(
            &store,
            2,
            vec![
                real(4, 5, 0),
                TourEdge::Virtual { fragment: b, from: VertexId(0), to: VertexId(4) },
                real(5, 4, 5),
            ],
        );
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 1);
        let edges: Vec<u64> = result.circuits[0].iter().map(|s| s.edge.0).collect();
        assert_eq!(edges, vec![4, 2, 0, 1, 3, 5]);
    }

    #[test]
    fn splice_happens_inside_virtual_expansion() {
        let store = FragmentStore::new();
        // Path through hidden vertex 2: 1 -> 2 -> 3; pending cycle at 2.
        let p = path(&store, 0, vec![real(0, 1, 2), real(1, 2, 3)]);
        cycle(&store, 0, vec![real(10, 2, 7), real(11, 7, 2)]);
        cycle(
            &store,
            1,
            vec![
                real(2, 3, 1),
                TourEdge::Virtual { fragment: p, from: VertexId(1), to: VertexId(3) },
            ],
        );
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 1);
        assert_eq!(result.total_edges(), 5);
        // Every edge appears exactly once, the walk chains and closes.
        let steps = &result.circuits[0];
        let mut edges: Vec<u64> = steps.iter().map(|s| s.edge.0).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![0, 1, 2, 10, 11]);
        for w in steps.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(steps.first().unwrap().from, steps.last().unwrap().to);
    }

    #[test]
    fn empty_store_yields_no_circuits() {
        let store = FragmentStore::new();
        let result = unroll(&store);
        assert_eq!(result.num_circuits(), 0);
        assert_eq!(result.total_edges(), 0);
    }
}
