//! The unified Euler pipeline: one merge-tree walk, pluggable execution
//! backends, staged outputs.
//!
//! The paper's algorithm is a single pipeline — load the graph, partition it,
//! run the Phase-1/2 merge tree, unroll the circuit in Phase 3 — that the
//! paper separates cleanly from its Spark substrate. This module mirrors that
//! separation:
//!
//! * [`EulerPipeline`] is the session-style entry point: a builder
//!   (`EulerPipeline::builder().source(..).partitioner(..).strategy(..)
//!   .backend(..).build()`) producing a [`PipelineRun`] whose typed stages
//!   ([`PartitionStage`] → [`MergeStage`] → [`CircuitStage`]) each carry
//!   their slice of the unified [`RunReport`].
//! * [`ExecutionBackend`] is the substrate seam. The merge-tree walk lives
//!   *here*, in [`run_with_backend`]; a backend only executes one level at a
//!   time ([`ExecutionBackend::run_level`]). [`InProcessBackend`] fans the
//!   level's partitions out on rayon threads; [`BspBackend`] executes the
//!   level as one superstep of the `euler-bsp` engine (serialised transfers,
//!   shuffle accounting, per-partition time splits), stepping the engine via
//!   [`euler_bsp::StepRun`].
//! * [`euler_graph::GraphSource`] is the input seam (see
//!   [`EulerPipelineBuilder::source`]): in-memory graphs, chunked edge-list
//!   files, and memory-mapped binary CSR files
//!   ([`euler_graph::MmapCsrSource`]). A CSR-backed source combined with a
//!   precomputed assignment takes the *direct slicing path*: the
//!   partition-centric view is cut straight from the mapped sections
//!   ([`euler_graph::CsrFile::partitioned`]) and handed to
//!   [`run_on_partitioned`], so no full [`Graph`] is ever materialised —
//!   the multi-GB loading mode the paper's scale targets require.
//!
//! The pre-redesign entry points (`find_euler_circuit`, `run_partitioned`,
//! `DistributedRunner`) were deprecated wrappers over this module for one
//! release and are now removed; their test suites live on in this module's
//! tests. See the facade crate's migration table.

use crate::cancel::CancelToken;
use crate::config::EulerConfig;
use crate::error::EulerError;
use crate::fragment::{FragmentStore, FragmentStoreStats, ReadSchedule, SpillConfig};
use crate::memory_model::{LevelTrace, PartitionLevelState};
use crate::merge_strategy::MergeStrategy;
use crate::merge_tree::{MergePair, MergeTree};
use crate::phase1::wstream::{stream_phase1, WStreamStats};
use crate::phase1::{Parallelism, Phase1Executor, Phase1Output};
use crate::phase2::{apply_remote_edge_dedup, merge_partitions, remote_edge_needed_level};
use crate::phase3::{unroll, CircuitResult};
use crate::state::{VertexTypeCounts, WorkingPartition};
use crate::verify::verify_result;
use euler_graph::{
    properties, CsrFile, Graph, GraphSource, MetaGraph, PartitionAssignment, PartitionId,
    PartitionedGraph, VertexId,
};
use euler_partition::Partitioner;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The unified run report.
// ---------------------------------------------------------------------------

/// Per-partition, per-level record of one Phase-1 execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelPartitionReport {
    /// Merge level (0 = leaf partitions).
    pub level: u32,
    /// Partition (current merged id).
    pub partition: PartitionId,
    /// Vertex/edge composition at the start of the level (Fig. 9).
    pub counts: VertexTypeCounts,
    /// The `|B|+|I|+|L|` complexity measure (Fig. 7 x-axis).
    pub complexity: u64,
    /// Measured Phase-1 time (Fig. 7 y-axis).
    pub phase1_time: Duration,
    /// Time spent merging child partitions into this one before Phase 1
    /// (zero at level 0).
    pub merge_time: Duration,
    /// Active in-memory state in Longs at the start of the level, under the
    /// configured merge strategy (Fig. 8).
    pub memory_longs: u64,
    /// Remote edges that become local at this level's merge (input to the
    /// deferred-transfer model).
    pub remote_needed_now: u64,
    /// Longs received from merged children at the start of this level.
    pub transfer_in_longs: u64,
    /// Paths (OB-pairs) found by Phase 1.
    pub paths_found: u64,
    /// Standalone cycles found by Phase 1.
    pub cycles_found: u64,
    /// Internal cycles spliced into earlier fragments.
    pub internal_cycles_merged: u64,
    /// Splice-order-index pivot lookups (one per step-3 cycle with a
    /// visible pivot) — see [`SpliceStats`](crate::phase1::SpliceStats).
    pub splice_pivot_lookups: u64,
    /// O(|cycle|) linked splices performed by the splice-order index.
    pub splice_linked_splices: u64,
    /// Longs materialised from the linked tours at persist time.
    pub splice_materialization_longs: u64,
}

/// Full report of one pipeline run — the same record for every backend.
///
/// The in-process and BSP drivers used to produce disjoint reports (a
/// `RunReport` vs. bare engine statistics); the shared merge-tree walk now
/// assembles this unified report for both, and a BSP run additionally carries
/// its engine statistics in [`RunReport::engine`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of leaf partitions.
    pub num_partitions: u32,
    /// Number of Phase-1 rounds executed (the coordination cost, §3.5).
    pub supersteps: u32,
    /// Merge strategy used.
    pub strategy: MergeStrategy,
    /// Per-partition, per-level records.
    pub per_partition: Vec<LevelPartitionReport>,
    /// Total wall time of phases 1–2.
    pub phase12_time: Duration,
    /// Wall time of Phase 3.
    pub phase3_time: Duration,
    /// Total Longs shipped between partitions across all merges.
    pub total_transfer_longs: u64,
    /// Longs written to the fragment store ("disk").
    pub fragment_disk_longs: u64,
    /// Real memory/spill statistics of the fragment store (peak resident
    /// Longs; spill counts when the run executed under a
    /// [`EulerConfig::fragment_memory_budget`]).
    pub fragment_stats: FragmentStoreStats,
    /// The merge tree used.
    pub merge_tree: MergeTree,
    /// Name of the execution backend that ran the merge-tree walk.
    pub backend: String,
    /// BSP engine statistics (superstep wall/compute splits, shuffle bytes,
    /// modelled platform overhead) when the run executed on [`BspBackend`];
    /// `None` for in-process runs.
    pub engine: Option<euler_bsp::EngineStats>,
    /// Resident-state accounting of the W-streaming Phase-1 pass when the
    /// run executed with [`EulerConfig::streaming_phase1`]; `None` for the
    /// dense arena path.
    pub wstream: Option<WStreamStats>,
    /// Non-fatal degradations the run absorbed: spill I/O failures that fell
    /// back to resident fragments, worker deaths that were recovered by
    /// checkpoint rollback or deterministic replay. Empty for a clean run.
    pub warnings: Vec<String>,
}

impl RunReport {
    /// Records for one level.
    pub fn level(&self, level: u32) -> Vec<&LevelPartitionReport> {
        self.per_partition.iter().filter(|r| r.level == level).collect()
    }

    /// Cumulative active memory (Longs) per level — the solid lines of Fig. 8.
    pub fn cumulative_memory_by_level(&self) -> Vec<u64> {
        (0..self.supersteps)
            .map(|l| self.level(l).iter().map(|r| r.memory_longs).sum())
            .collect()
    }

    /// Average active memory per partition per level — the dashed lines of Fig. 8.
    pub fn average_memory_by_level(&self) -> Vec<f64> {
        (0..self.supersteps)
            .map(|l| {
                let rs = self.level(l);
                if rs.is_empty() {
                    0.0
                } else {
                    rs.iter().map(|r| r.memory_longs).sum::<u64>() as f64 / rs.len() as f64
                }
            })
            .collect()
    }

    /// Converts the report into the per-level trace consumed by the
    /// analytical memory model (Fig. 8 current/ideal/proposed).
    pub fn level_trace(&self) -> Vec<LevelTrace> {
        (0..self.supersteps)
            .map(|l| LevelTrace {
                level: l,
                partitions: self
                    .level(l)
                    .iter()
                    .map(|r| PartitionLevelState {
                        vertices: r.counts.total_vertices(),
                        local_edges: r.counts.local_edges,
                        remote_edges: r.counts.remote_edges,
                        remote_needed_now: r.remote_needed_now,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Total user compute time (Phase 1 + merging) across all partitions.
    pub fn total_compute_time(&self) -> Duration {
        self.per_partition.iter().map(|r| r.phase1_time + r.merge_time).sum()
    }
}

// ---------------------------------------------------------------------------
// Shared accounting helpers (used by both backends).
// ---------------------------------------------------------------------------

/// Accounts the active in-memory Longs of a partition under a merge strategy.
pub(crate) fn active_memory_longs(
    wp: &WorkingPartition,
    tree: &MergeTree,
    level: u32,
    strategy: MergeStrategy,
) -> u64 {
    let counts = wp.vertex_type_counts();
    let base = counts.total_vertices() + 3 * counts.local_edges;
    let remote = match strategy {
        MergeStrategy::Duplicated | MergeStrategy::Deduplicated => counts.remote_edges,
        MergeStrategy::Deferred => wp
            .remote_edges
            .iter()
            .filter(|r| remote_edge_needed_level(tree, r) <= level)
            .count() as u64,
    };
    base + 4 * remote
}

/// Longs shipped when this partition's state is sent to its merge parent.
pub(crate) fn transfer_longs(
    wp: &WorkingPartition,
    tree: &MergeTree,
    level: u32,
    strategy: MergeStrategy,
) -> u64 {
    let remote = match strategy {
        MergeStrategy::Duplicated | MergeStrategy::Deduplicated => wp.remote_edges.len() as u64,
        MergeStrategy::Deferred => wp
            .remote_edges
            .iter()
            .filter(|r| remote_edge_needed_level(tree, r) <= level)
            .count() as u64,
    };
    3 * wp.local_edges.len() as u64 + 4 * remote + 4
}

/// Remote edges that become local exactly at `level`'s merge.
pub(crate) fn remote_needed_now(wp: &WorkingPartition, tree: &MergeTree, level: u32) -> u64 {
    wp.remote_edges.iter().filter(|r| remote_edge_needed_level(tree, r) == level).count() as u64
}

// ---------------------------------------------------------------------------
// The execution-backend seam.
// ---------------------------------------------------------------------------

/// One level of the merge-tree walk, handed to a backend for execution.
///
/// A level consists of a Phase-1 run on every live partition followed by the
/// Phase-2 merges in [`LevelWork::pairs`] (empty at the root level). The
/// partition states live *inside* the backend between levels — like executors
/// holding partition state on a cluster — and are seeded exactly once, at
/// level 0, through [`LevelWork::seed`].
pub struct LevelWork<'a> {
    /// Merge level to execute (0 = leaf partitions). The walk runs levels
    /// `0..tree.num_supersteps()`.
    pub level: u32,
    /// Merges planned for this level (empty at the last level).
    pub pairs: &'a [MergePair],
    /// The merge tree being walked, shared behind an [`Arc`] so backends
    /// that keep it across levels (the BSP program lives on worker threads
    /// for the whole run) clone a pointer instead of the tree.
    pub tree: &'a Arc<MergeTree>,
    /// Fragment store Phase 1 persists into.
    pub store: &'a FragmentStore,
    /// Algorithm configuration.
    pub config: &'a EulerConfig,
    /// Level-0 partition states, sorted by ascending partition id. `Some` on
    /// the first level of a run, `None` afterwards; receiving a new seed
    /// resets any state the backend kept from a previous run.
    pub seed: Option<Vec<WorkingPartition>>,
}

/// What a backend reports back from one level.
#[derive(Clone, Debug, Default)]
pub struct LevelOutcome {
    /// One record per partition that ran Phase 1 this level, ascending by
    /// partition id.
    pub reports: Vec<LevelPartitionReport>,
    /// Longs shipped to merge parents by the merges initiated this level.
    pub transfer_longs: u64,
}

/// An execution substrate for the merge-tree walk.
///
/// The walk itself ([`run_with_backend`]) is backend-independent: it plans
/// the levels, seeds the backend once, calls
/// [`run_level`](ExecutionBackend::run_level) per level and assembles the
/// unified [`RunReport`]. Implementations decide *how* a level's Phase-1 runs
/// and Phase-2 merges execute: on rayon threads in this process
/// ([`InProcessBackend`]) or as supersteps of the BSP engine
/// ([`BspBackend`]). The trait is object-safe; pipelines hold
/// `Box<dyn ExecutionBackend>`.
pub trait ExecutionBackend {
    /// Short backend name, recorded in [`RunReport::backend`].
    fn name(&self) -> &'static str;

    /// Executes one level: Phase 1 on every live partition, then the level's
    /// merges, keeping the resulting states for the next call.
    ///
    /// # Errors
    /// [`EulerError::Distributed`] when a distributed backend loses workers
    /// beyond its recovery budget or the transport fails unrecoverably.
    /// In-process execution is infallible.
    fn run_level(&self, work: LevelWork<'_>) -> Result<LevelOutcome, EulerError>;

    /// Engine statistics accumulated over the walk, for backends that run on
    /// an engine that collects them (the BSP backend). Called by the walk
    /// after the last level.
    fn engine_stats(&self) -> Option<euler_bsp::EngineStats> {
        None
    }

    /// Non-fatal degradations the backend absorbed during the walk (worker
    /// deaths recovered by rollback or replay). Collected into
    /// [`RunReport::warnings`] after the last level.
    fn warnings(&self) -> Vec<String> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// In-process backend (rayon).
// ---------------------------------------------------------------------------

/// State the in-process backend keeps between levels.
#[derive(Default)]
struct InProcessState {
    states: Vec<WorkingPartition>,
    /// Merge time and shipped Longs awaiting attribution to the merged
    /// partition's record at the next level.
    pending: HashMap<PartitionId, (Duration, u64)>,
}

/// Executes levels in this process. How Phase 1 is scheduled onto threads is
/// the backend's [`Parallelism`] mode ([`with_parallelism`]):
///
/// * [`Parallelism::PerPartition`] (default): a level's partitions fan out
///   on rayon threads (unless [`EulerConfig::parallel_within_level`] is
///   off), each running the sequential Phase-1 kernel.
/// * [`Parallelism::IntraPartition`]: partitions run one at a time in
///   ascending id order, each on the deterministic wave-speculation walker
///   ([`crate::phase1::run_phase1_parallel`]) over [`with_threads`] threads
///   — circuits and reports are bit-identical to a fully sequential run for
///   every thread count.
/// * [`Parallelism::Auto`]: per level, per-partition fan-out while at least
///   as many live partitions as threads remain, intra-partition waves on
///   the narrow top levels.
///
/// Phase-1 scratch comes from the executor's arena pool, reused across
/// merge levels. Merges always run sequentially.
///
/// This backend absorbs the pre-redesign `run_partitioned` driver; it
/// produces the detailed per-level, per-partition quantities the paper's
/// Figs. 6–9 are built from. Within a level, partitions execute in ascending
/// partition-id order (the BSP engine's slot order), so sequential and
/// intra-partition runs of both backends persist fragments identically.
///
/// [`with_parallelism`]: InProcessBackend::with_parallelism
/// [`with_threads`]: InProcessBackend::with_threads
#[derive(Default)]
pub struct InProcessBackend {
    inner: RefCell<InProcessState>,
    executor: Phase1Executor,
}

impl InProcessBackend {
    /// Creates the backend. One instance serves one pipeline run at a time;
    /// re-seeding (a new run) resets it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how Phase 1 is scheduled onto threads (see the type docs).
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.executor = self.executor.with_mode(mode);
        self
    }

    /// Sets the thread budget for intra-partition walks and the
    /// [`Parallelism::Auto`] threshold. `0` restores auto-detection
    /// (`RAYON_NUM_THREADS`, else the host's available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.executor = self.executor.with_threads(threads);
        self
    }

    /// The backend's Phase-1 scheduling mode.
    pub fn parallelism(&self) -> Parallelism {
        self.executor.mode()
    }
}

impl ExecutionBackend for InProcessBackend {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn run_level(&self, work: LevelWork<'_>) -> Result<LevelOutcome, EulerError> {
        let mut inner = self.inner.borrow_mut();
        if let Some(seed) = work.seed {
            *inner = InProcessState { states: seed, pending: HashMap::new() };
        }
        let st = &mut *inner;
        // Deterministic execution order: ascending partition id.
        st.states.sort_by_key(|s| s.id);

        let level = work.level;
        let strategy = work.config.merge_strategy;
        let tree: &MergeTree = work.tree;
        let store = work.store;

        // --- Phase 1 on all active partitions of this level. ---------------
        // `.sequential()` (parallel_within_level = false) forces the plain
        // sequential walk everywhere; otherwise the executor's mode decides
        // between per-partition fan-out and intra-partition waves.
        let intra = work.config.parallel_within_level && self.executor.intra_at(st.states.len());
        let executor = &self.executor;
        let run_one = |wp: &mut WorkingPartition| -> (PartitionId, u64, u64, Phase1Output, Duration) {
            let memory = active_memory_longs(wp, tree, level, strategy);
            let needed_now = remote_needed_now(wp, tree, level);
            let t0 = Instant::now();
            let out = executor.run(wp, store, intra);
            (wp.id, memory, needed_now, out, t0.elapsed())
        };
        let outputs: Vec<(PartitionId, u64, u64, Phase1Output, Duration)> =
            if work.config.parallel_within_level && !intra {
                st.states.par_iter_mut().map(run_one).collect()
            } else {
                st.states.iter_mut().map(run_one).collect()
            };
        let mut reports = Vec::with_capacity(outputs.len());
        for (pid, memory, needed_now, out, elapsed) in outputs {
            let (merge_time, transfer_in) = st.pending.remove(&pid).unwrap_or_default();
            reports.push(LevelPartitionReport {
                level,
                partition: pid,
                counts: out.counts_before,
                complexity: out.complexity,
                phase1_time: elapsed,
                merge_time,
                memory_longs: memory,
                remote_needed_now: needed_now,
                transfer_in_longs: transfer_in,
                paths_found: out.path_map.num_paths() as u64,
                cycles_found: out.path_map.num_cycles() as u64,
                internal_cycles_merged: out.path_map.internal_cycles_merged,
                splice_pivot_lookups: out.splice.pivot_lookups,
                splice_linked_splices: out.splice.linked_splices,
                splice_materialization_longs: out.splice.materialization_longs,
            });
        }

        // --- Phase 2: merge the pairs planned for this level. ---------------
        let mut shipped_total = 0u64;
        for pair in work.pairs {
            let child_idx = st.states.iter().position(|s| s.id == pair.child);
            let has_parent = st.states.iter().any(|s| s.id == pair.parent);
            let Some(child_idx) = child_idx.filter(|_| has_parent) else {
                continue;
            };
            let child = st.states.swap_remove(child_idx);
            // Locate the parent after the swap_remove above.
            let parent_idx =
                st.states.iter().position(|s| s.id == pair.parent).expect("parent present");
            let parent = st.states.swap_remove(parent_idx);
            let shipped = transfer_longs(&child, tree, level, strategy);
            shipped_total += shipped;
            let t0 = Instant::now();
            let (merged, _stats) = merge_partitions(parent, child, tree, level);
            let merge_elapsed = t0.elapsed();
            let entry = st.pending.entry(merged.id).or_default();
            entry.0 += merge_elapsed;
            entry.1 += shipped;
            st.states.push(merged);
        }
        // Unmerged partitions are carried to the next level unchanged.
        for s in &mut st.states {
            if s.level == level {
                s.level = level + 1;
            }
        }

        Ok(LevelOutcome { reports, transfer_longs: shipped_total })
    }
}

// ---------------------------------------------------------------------------
// BSP backend (euler-bsp engine).
// ---------------------------------------------------------------------------

/// Wire encoding of a [`WorkingPartition`] as a flat u64 sequence, used for
/// the byte-accounted transfers of the BSP backend and the distributed
/// coordinator/worker protocol ([`crate::distributed`]).
pub(crate) mod wire {
    use super::*;
    use crate::fragment::FragmentId;
    use crate::state::{EdgeRef, LocalEdge, RemoteRef};
    use euler_graph::{EdgeId, VertexId};

    pub fn encode(wp: &WorkingPartition) -> Vec<u64> {
        let mut out = Vec::with_capacity(6 + wp.leaves.len() + 4 * wp.local_edges.len() + 5 * wp.remote_edges.len());
        out.push(wp.id.0 as u64);
        out.push(wp.level as u64);
        out.push(wp.isolated_vertices);
        out.push(wp.local_edges.len() as u64);
        out.push(wp.remote_edges.len() as u64);
        out.push(wp.leaves.len() as u64);
        for l in &wp.leaves {
            out.push(l.0 as u64);
        }
        for e in &wp.local_edges {
            match e.edge {
                EdgeRef::Real(id) => {
                    out.push(0);
                    out.push(id.0);
                }
                EdgeRef::Virtual(id) => {
                    out.push(1);
                    out.push(id.0);
                }
            }
            out.push(e.u.0);
            out.push(e.v.0);
        }
        for r in &wp.remote_edges {
            out.push(r.edge.0);
            out.push(r.local.0);
            out.push(r.remote.0);
            out.push(r.local_leaf.0 as u64);
            out.push(r.remote_leaf.0 as u64);
        }
        out
    }

    pub fn decode(data: &[u64]) -> WorkingPartition {
        let mut i = 0usize;
        let mut next = || {
            let v = data[i];
            i += 1;
            v
        };
        let id = PartitionId(next() as u32);
        let level = next() as u32;
        let isolated_vertices = next();
        let n_local = next() as usize;
        let n_remote = next() as usize;
        let n_leaves = next() as usize;
        let leaves = (0..n_leaves).map(|_| PartitionId(next() as u32)).collect();
        let mut local_edges = Vec::with_capacity(n_local);
        for _ in 0..n_local {
            let tag = next();
            let idv = next();
            let u = VertexId(next());
            let v = VertexId(next());
            let edge = if tag == 0 { EdgeRef::Real(EdgeId(idv)) } else { EdgeRef::Virtual(FragmentId(idv)) };
            local_edges.push(LocalEdge { edge, u, v });
        }
        let mut remote_edges = Vec::with_capacity(n_remote);
        for _ in 0..n_remote {
            remote_edges.push(RemoteRef {
                edge: EdgeId(next()),
                local: VertexId(next()),
                remote: VertexId(next()),
                local_leaf: PartitionId(next() as u32),
                remote_leaf: PartitionId(next() as u32),
            });
        }
        WorkingPartition { id, leaves, level, local_edges, remote_edges, isolated_vertices }
    }
}

/// Per-engine-partition state of the BSP program.
enum DistState {
    Active(Box<WorkingPartition>),
    Retired,
}

/// Per-level records collected by the program across its worker threads.
#[derive(Default)]
struct Ledger {
    reports: Vec<LevelPartitionReport>,
    transfer_longs: u64,
}

/// The partition program executing the walk on the engine: superstep `L`
/// merges child states received from level `L-1`, runs Phase 1 for level
/// `L`, and ships this partition's state to its merge parent when the tree
/// retires it at `L`.
struct DistProgram {
    /// Shared with the pipeline walk (and between worker threads): cloning
    /// the `Arc` replaced the per-run deep clone of the tree.
    tree: Arc<MergeTree>,
    store: FragmentStore,
    strategy: MergeStrategy,
    height: u32,
    /// Phase-1 execution policy (mode + thread budget + arena pool shared
    /// across this run's workers and merge levels).
    executor: Phase1Executor,
    ledger: Mutex<Ledger>,
}

impl euler_bsp::PartitionProgram for DistProgram {
    type State = DistState;

    fn superstep(
        &self,
        ctx: &mut euler_bsp::PartitionContext,
        state: &mut DistState,
        messages: Vec<euler_bsp::Envelope>,
    ) -> Vec<euler_bsp::Envelope> {
        let level = ctx.superstep;
        let DistState::Active(wp) = state else {
            ctx.vote_to_halt();
            return vec![];
        };

        // Merge any child states received at the end of the previous level.
        let mut merge_time = Duration::ZERO;
        let mut transfer_in = 0u64;
        for m in &messages {
            let decoded = ctx.time("create_partition_object", || {
                wire::decode(&euler_bsp::message::codec::decode_u64s(&m.payload))
            });
            transfer_in +=
                transfer_longs(&decoded, &self.tree, level.saturating_sub(1), self.strategy);
            let current = std::mem::take(wp.as_mut());
            let t0 = Instant::now();
            let merged = ctx.time("copy_sink_partition", || {
                merge_partitions(current, decoded, &self.tree, level.saturating_sub(1)).0
            });
            merge_time += t0.elapsed();
            **wp = merged;
        }

        // Phase 1 for this level. The engine's per-worker budget
        // (`BspConfig::with_worker_threads`) is authoritative when set —
        // `Some(1)` pins explicitly single-core executors; unspecified
        // falls back to the executor's own thread policy. `Auto` mirrors
        // the in-process rule: sequential walks while a level still has at
        // least `budget` live partitions (they run spread across the
        // engine's concurrent workers), waves on the narrow top levels.
        let memory = active_memory_longs(wp, &self.tree, level, self.strategy);
        let needed_now = remote_needed_now(wp, &self.tree, level);
        let budget = ctx
            .worker_threads
            .map(std::num::NonZeroUsize::get)
            .unwrap_or_else(|| self.executor.resolved_threads());
        let threads = match self.executor.mode() {
            Parallelism::PerPartition => 1,
            Parallelism::IntraPartition => budget,
            Parallelism::Auto => {
                let merged_below: usize =
                    (0..level).map(|l| self.tree.pairs_at(l).len()).sum();
                let live = self.tree.leaves.len() - merged_below;
                if live < budget {
                    budget
                } else {
                    1
                }
            }
        };
        let t1 = Instant::now();
        let out =
            ctx.time("phase1_tour", || self.executor.run_with_threads(wp, &self.store, threads));
        let phase1_time = t1.elapsed();
        ctx.report_memory_longs(wp.memory_longs());
        self.ledger.lock().reports.push(LevelPartitionReport {
            level,
            partition: wp.id,
            counts: out.counts_before,
            complexity: out.complexity,
            phase1_time,
            merge_time,
            memory_longs: memory,
            remote_needed_now: needed_now,
            transfer_in_longs: transfer_in,
            paths_found: out.path_map.num_paths() as u64,
            cycles_found: out.path_map.num_cycles() as u64,
            internal_cycles_merged: out.path_map.internal_cycles_merged,
            splice_pivot_lookups: out.splice.pivot_lookups,
            splice_linked_splices: out.splice.linked_splices,
            splice_materialization_longs: out.splice.materialization_longs,
        });

        // Am I a child at this level? Then ship my state to the parent.
        if level < self.height {
            if let Some(pair) = self.tree.pairs_at(level).iter().find(|p| p.child == wp.id) {
                let shipped = transfer_longs(wp, &self.tree, level, self.strategy);
                self.ledger.lock().transfer_longs += shipped;
                let parent = pair.parent;
                let payload = ctx.time("copy_source_partition", || {
                    euler_bsp::message::codec::encode_u64s(&wire::encode(wp))
                });
                let from = ctx.partition;
                *state = DistState::Retired;
                ctx.vote_to_halt();
                return vec![euler_bsp::Envelope::new(from, parent.0, 0, payload)];
            }
            // Parent or carried-over partition: stay active for the next level.
            return vec![];
        }
        // Root level reached: done.
        ctx.vote_to_halt();
        vec![]
    }
}

/// Executes levels on the `euler-bsp` engine: one engine partition per graph
/// partition, one superstep per merge level, children shipping their
/// serialised state to their parent after each level.
///
/// This backend absorbs the pre-redesign `DistributedRunner`. On top of the
/// unified [`RunReport`] it contributes the engine's superstep statistics
/// (shuffle bytes, per-partition time splits, modelled platform overhead) via
/// [`RunReport::engine`], which is what the Fig.-5/6 harnesses consume. The
/// default engine configuration is one worker per partition — the paper's
/// one-executor-per-partition deployment.
pub struct BspBackend {
    engine: euler_bsp::BspConfig,
    parallelism: Parallelism,
    phase1_threads: usize,
    run: RefCell<Option<euler_bsp::StepRun<DistProgram>>>,
    transport: Option<Arc<dyn euler_bsp::Transport>>,
    process_workers: bool,
    checkpoint_dir: Option<std::path::PathBuf>,
    fault_policy: euler_bsp::FaultPolicy,
    fault_plan: euler_bsp::FaultPlan,
    dist: RefCell<Option<crate::distributed::DistRun>>,
}

impl BspBackend {
    /// Backend over a one-worker-per-partition engine.
    pub fn new() -> Self {
        Self::with_engine(euler_bsp::BspConfig::one_worker_per_partition())
    }

    /// Backend over an explicitly configured engine (worker count, cost
    /// model, superstep bound, per-worker compute threads).
    pub fn with_engine(engine: euler_bsp::BspConfig) -> Self {
        BspBackend {
            engine,
            parallelism: Parallelism::PerPartition,
            phase1_threads: 0,
            run: RefCell::new(None),
            transport: None,
            process_workers: false,
            checkpoint_dir: None,
            fault_policy: euler_bsp::FaultPolicy::default(),
            fault_plan: euler_bsp::FaultPlan::none(),
            dist: RefCell::new(None),
        }
    }

    /// Runs the walk on real workers connected over `transport` instead of
    /// the in-process engine: the backend becomes a *coordinator* that
    /// spawns one worker per engine slot (threads by default, OS processes
    /// under [`process_workers`](Self::process_workers)), exchanges
    /// length-prefixed checksummed frames with them, and recovers from
    /// worker deaths (see [`checkpoint_dir`](Self::checkpoint_dir) /
    /// [`fault_policy`](Self::fault_policy)). Circuits, per-level records
    /// and transfer accounting are bit-identical to the in-process engine.
    pub fn with_transport(mut self, transport: Arc<dyn euler_bsp::Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Spawns workers as OS processes (the `euler-worker` binary, resolved
    /// via `$EULER_WORKER_BIN` or next to the current executable) instead of
    /// threads. Requires a socket transport
    /// ([`euler_bsp::TcpTransport`] / [`euler_bsp::UnixTransport`]).
    pub fn process_workers(mut self, yes: bool) -> Self {
        self.process_workers = yes;
        self
    }

    /// Persists every worker's partition state to `dir` after each
    /// superstep, enabling kill-and-resume recovery: a dead worker is
    /// respawned, everyone rolls back to the last consistent superstep
    /// checkpoint, and the run resumes — bit-identical to an unkilled run.
    /// The directory is removed when a run completes cleanly. Without a
    /// checkpoint directory, recovery falls back to a full deterministic
    /// replay from the level-0 seed.
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Tunes dead-worker detection and recovery (heartbeat interval and
    /// timeout, restart budget, connect/send retries).
    pub fn fault_policy(mut self, policy: euler_bsp::FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Injects scripted faults (kill worker *k* at superstep *s*, drop or
    /// delay the *n*-th superstep message) — the test/bench harness for the
    /// recovery machinery.
    pub fn with_fault_plan(mut self, plan: euler_bsp::FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets how each worker runs Phase 1 — the BSP equivalent of
    /// [`InProcessBackend::with_parallelism`]. Under
    /// [`Parallelism::PerPartition`] (default) a worker walks each of its
    /// partitions sequentially (engine workers are the parallelism, as in
    /// the paper's deployment); under [`Parallelism::IntraPartition`] /
    /// [`Parallelism::Auto`] the worker loop hands its compute-thread budget
    /// ([`euler_bsp::BspConfig::with_worker_threads`], else
    /// [`with_phase1_threads`](Self::with_phase1_threads)) to the
    /// deterministic wave walker inside each partition. Bit-identical
    /// circuit composition across runs additionally needs a single-worker
    /// engine (multi-worker engines run partitions concurrently and
    /// interleave fragment-store appends); per-partition walks, transfers
    /// and report quantities are deterministic regardless.
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.parallelism = mode;
        self
    }

    /// Fallback wave-walker thread budget for workers whose engine config
    /// does not set [`euler_bsp::BspConfig::worker_threads`]. `0` (default)
    /// auto-detects (`RAYON_NUM_THREADS`, else available parallelism).
    pub fn with_phase1_threads(mut self, threads: usize) -> Self {
        self.phase1_threads = threads;
        self
    }

    /// The engine configuration.
    pub fn engine(&self) -> &euler_bsp::BspConfig {
        &self.engine
    }

    /// The Phase-1 scheduling mode of the worker loop.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }
}

impl Default for BspBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionBackend for BspBackend {
    fn name(&self) -> &'static str {
        "bsp"
    }

    fn run_level(&self, work: LevelWork<'_>) -> Result<LevelOutcome, EulerError> {
        if self.transport.is_some() {
            return self.run_level_distributed(work);
        }
        let mut slot = self.run.borrow_mut();
        if let Some(seed) = work.seed {
            // Engine partition index i hosts graph partition i (leaf ids are
            // contiguous; any gap is padded with a retired slot).
            let slots = seed.iter().map(|s| s.id.0 as usize + 1).max().unwrap_or(0);
            let mut initial: Vec<DistState> = (0..slots).map(|_| DistState::Retired).collect();
            for wp in seed {
                let slot = wp.id.0 as usize;
                initial[slot] = DistState::Active(Box::new(wp));
            }
            let program = DistProgram {
                // Pointer clones: the tree is shared with the walk, the
                // store is already `Arc`-backed.
                tree: Arc::clone(work.tree),
                store: work.store.clone(),
                strategy: work.config.merge_strategy,
                height: work.tree.height(),
                executor: Phase1Executor::new(self.parallelism)
                    .with_threads(self.phase1_threads),
                ledger: Mutex::new(Ledger::default()),
            };
            *slot = Some(euler_bsp::StepRun::new(self.engine, program, initial));
        }
        let run = slot.as_mut().expect("the pipeline seeds the backend at level 0");
        let ran = run.step();
        // An empty partition set legitimately has nothing to step; otherwise
        // a refused step means the engine's superstep bound cut the walk
        // short — surface that instead of silently skipping the level.
        assert!(
            ran || run.num_partitions() == 0,
            "BSP engine stopped (superstep bound {} reached?) before merge level {} ran",
            self.engine.max_supersteps,
            work.level
        );
        let mut ledger = std::mem::take(&mut *run.program().ledger.lock());
        // Worker threads race on the ledger; restore engine-slot order.
        ledger.reports.sort_by_key(|r| r.partition);
        debug_assert!(ledger.reports.iter().all(|r| r.level == work.level));
        Ok(LevelOutcome { reports: ledger.reports, transfer_longs: ledger.transfer_longs })
    }

    fn engine_stats(&self) -> Option<euler_bsp::EngineStats> {
        if let Some(dist) = self.dist.borrow().as_ref() {
            return Some(dist.stats());
        }
        self.run.borrow().as_ref().map(|r| r.stats())
    }

    fn warnings(&self) -> Vec<String> {
        self.dist.borrow().as_ref().map(|d| d.warnings()).unwrap_or_default()
    }
}

impl BspBackend {
    /// The distributed (coordinator) path of [`ExecutionBackend::run_level`]:
    /// seed → spawn and initialise the worker fleet, per level → one wire
    /// barrier, last level → flush the committed fragments into the walk's
    /// store and shut the fleet down.
    fn run_level_distributed(&self, work: LevelWork<'_>) -> Result<LevelOutcome, EulerError> {
        let transport = self.transport.as_ref().expect("checked by caller");
        let mut dist = self.dist.borrow_mut();
        if let Some(seed) = work.seed {
            let spawn = if self.process_workers {
                if !transport.supports_processes() {
                    return Err(EulerError::InvalidConfig(format!(
                        "process workers need a socket transport; `{}` is in-process only",
                        transport.name()
                    )));
                }
                let worker_bin = crate::distributed::default_worker_bin().ok_or_else(|| {
                    EulerError::InvalidConfig(
                        "no `euler-worker` binary found (set $EULER_WORKER_BIN or install it \
                         next to the current executable)"
                            .into(),
                    )
                })?;
                crate::distributed::WorkerSpawn::Processes { worker_bin }
            } else {
                crate::distributed::WorkerSpawn::Threads
            };
            let cfg = crate::distributed::DistConfig {
                transport: Arc::clone(transport),
                spawn,
                num_workers: self.engine.resolved_workers(seed.len()),
                checkpoint_dir: self.checkpoint_dir.clone(),
                policy: self.fault_policy,
                plan: self.fault_plan,
                par_mode: self.parallelism,
                phase1_threads: self.phase1_threads,
                worker_threads: self
                    .engine
                    .worker_threads
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(0),
            };
            *dist = Some(crate::distributed::DistRun::new(
                cfg,
                Arc::clone(work.tree),
                work.config.merge_strategy,
                &seed,
            )?);
        }
        let run = dist.as_mut().expect("the pipeline seeds the backend at level 0");
        let outcome = run.step(work.level)?;
        if work.level + 1 == work.tree.num_supersteps() {
            // Root level done: materialise the committed fragments into the
            // walk's store (sorted by provisional id — the sequential push
            // order) and retire the fleet. The engine-stats snapshot the
            // walk takes right after sees the finished wall time.
            run.flush_fragments(work.store)?;
            run.finish();
        }
        Ok(outcome)
    }
}

// ---------------------------------------------------------------------------
// The shared merge-tree walk.
// ---------------------------------------------------------------------------

/// The one Eulerian degree pre-check, shared by every input path: the graph
/// path feeds it [`properties::first_odd_vertex`], the direct CSR path feeds
/// it [`CsrFile::first_odd_vertex`] (read off the mapped offsets section
/// alone) — one shape, one error.
fn require_even_degrees(first_odd: Option<(VertexId, u64)>) -> Result<(), EulerError> {
    match first_odd {
        Some((vertex, degree)) => {
            Err(EulerError::Graph(euler_graph::GraphError::NotEulerian { vertex, degree }))
        }
        None => Ok(()),
    }
}

/// Runs the full three-phase algorithm over an already-partitioned graph on
/// the given backend — the single merge-tree walk both backends execute
/// through.
///
/// This is the mid-level entry point: it plans the merge tree, seeds the
/// backend with the level-0 partition states, drives one
/// [`ExecutionBackend::run_level`] call per level, unrolls Phase 3 and
/// assembles the unified [`RunReport`]. Most callers want the higher-level
/// [`EulerPipeline`] builder, which adds the [`GraphSource`] /
/// [`Partitioner`] stages on top.
pub fn run_with_backend(
    g: &Graph,
    assignment: &PartitionAssignment,
    config: &EulerConfig,
    backend: &dyn ExecutionBackend,
) -> Result<(CircuitResult, RunReport), EulerError> {
    if config.require_eulerian {
        require_even_degrees(properties::first_odd_vertex(g))?;
    }
    let pg = PartitionedGraph::from_assignment(g, assignment)?;
    let (result, report) = run_on_partitioned(&pg, config, backend)?;
    if config.verify {
        verify_result(g, &result)?;
    }
    Ok((result, report))
}

/// Runs the Phase-1/2 merge-tree walk and the Phase-3 unroll over an
/// already-built partition-centric view — the `Graph`-free core of
/// [`run_with_backend`].
///
/// This is the entry point for inputs that never materialise a [`Graph`]:
/// [`euler_graph::CsrFile::partitioned`] slices a [`PartitionedGraph`]
/// straight from a memory-mapped `.ecsr` file and hands it here. Because no
/// graph is available, [`EulerConfig::require_eulerian`] and
/// [`EulerConfig::verify`] are **not** applied at this level — callers with
/// graph access use [`run_with_backend`], and the CSR fast path runs its
/// degree pre-check off the mapped offsets section instead.
pub fn run_on_partitioned(
    pg: &PartitionedGraph,
    config: &EulerConfig,
    backend: &dyn ExecutionBackend,
) -> Result<(CircuitResult, RunReport), EulerError> {
    run_on_partitioned_inner(pg, config, backend, None)
}

/// [`run_on_partitioned`] with cooperative cancellation: the walk checks
/// `cancel` between supersteps and before the Phase-3 unroll, returning
/// [`EulerError::Cancelled`] (and dropping all run state) once the token
/// fires. Progress — supersteps completed out of total — is published on
/// the token as the walk advances, so an observer thread can report it
/// without touching the run.
pub fn run_on_partitioned_cancellable(
    pg: &PartitionedGraph,
    config: &EulerConfig,
    backend: &dyn ExecutionBackend,
    cancel: &CancelToken,
) -> Result<(CircuitResult, RunReport), EulerError> {
    run_on_partitioned_inner(pg, config, backend, Some(cancel))
}

fn run_on_partitioned_inner(
    pg: &PartitionedGraph,
    config: &EulerConfig,
    backend: &dyn ExecutionBackend,
    cancel: Option<&CancelToken>,
) -> Result<(CircuitResult, RunReport), EulerError> {
    let meta = MetaGraph::from_partitioned(pg);
    let store = fragment_store_for(config);
    let states: Vec<WorkingPartition> =
        pg.partitions().iter().map(WorkingPartition::from_partition).collect();
    run_merge_walk(&meta, states, store, config, backend, None, cancel)
}

/// Builds the run's fragment store from its configuration: an explicit
/// budget routes fragments through the out-of-core spill backing; otherwise
/// they stay in the in-memory slab. Either way the circuits and the modelled
/// disk accounting are identical.
fn fragment_store_for(config: &EulerConfig) -> FragmentStore {
    match config.fragment_memory_budget {
        Some(budget) => {
            let mut spill = SpillConfig::with_budget(budget);
            if let Some(dir) = &config.fragment_spill_directory {
                spill = spill.in_directory(dir.clone());
            }
            FragmentStore::spilling(spill)
        }
        None => FragmentStore::new(),
    }
}

/// Derives the fragment [`ReadSchedule`] from the merge tree, on the clock
/// announced by [`run_merge_walk`]: steps `0..S` are the supersteps (no
/// fragment is read back during a merge), step `S` starts the Phase-3
/// unroll. The unroll expands top-down — the highest-level fragments seed
/// the walk and level-0 fragments are reached last — with partitions in id
/// order within a level, so a fragment pushed at `(level, partition)` is
/// estimated to be read at `S + (S - level) * P + partition-rank`. With
/// this in hand a spill-backed store pages out its level-0 fragments first
/// (the coldest ones) and keeps what the unroll needs soonest.
fn phase3_read_schedule(tree: &MergeTree, num_partitions: u32) -> ReadSchedule {
    let s = tree.num_supersteps() as u64;
    let p = num_partitions as u64;
    // Unmapped keys read after everything scheduled.
    let mut schedule = ReadSchedule::new(s + (s + 2) * p);
    for level in 0..=tree.num_supersteps() {
        // Partition ids alive at fragment level `level`: the leaves for
        // level 0, else the representatives after merging level-1 pairs.
        let mut reps: Vec<u32> = if level == 0 {
            (0..num_partitions).collect()
        } else {
            (0..num_partitions)
                .map(|l| tree.representative_after(PartitionId(l), level - 1).0)
                .collect()
        };
        reps.sort_unstable();
        reps.dedup();
        for (rank, &rep) in reps.iter().enumerate() {
            let step = s + (s - level as u64) * p + rank as u64;
            schedule.set(level, PartitionId(rep), step);
        }
    }
    schedule
}

/// The merge-tree walk + Phase-3 unroll over prebuilt level-0 state: the
/// common tail of the dense path ([`run_on_partitioned`], states from a
/// [`PartitionedGraph`]) and the W-streaming path (states and `wstream`
/// accounting from [`stream_phase1`], with partial tours already in
/// `store`).
fn run_merge_walk(
    meta: &MetaGraph,
    mut states: Vec<WorkingPartition>,
    store: FragmentStore,
    config: &EulerConfig,
    backend: &dyn ExecutionBackend,
    wstream: Option<WStreamStats>,
    cancel: Option<&CancelToken>,
) -> Result<(CircuitResult, RunReport), EulerError> {
    let tree = Arc::new(MergeTree::build(meta));
    if let Some(token) = cancel {
        // Supersteps plus the Phase-3 unroll — the checkpoints below.
        token.set_total(tree.num_supersteps() + 1);
    }
    if config.merge_strategy.deduplicates() {
        apply_remote_edge_dedup(&mut states);
    }
    states.sort_by_key(|s| s.id);

    let mut report = RunReport {
        num_partitions: meta.num_vertices() as u32,
        supersteps: tree.num_supersteps(),
        strategy: config.merge_strategy,
        merge_tree: tree.as_ref().clone(),
        backend: backend.name().to_string(),
        wstream,
        ..Default::default()
    };

    // Hand spill-backed stores the merge-tree read schedule so eviction can
    // page out the fragments Phase 3 needs last (see phase3_read_schedule);
    // the in-memory backing ignores both calls.
    store.set_read_schedule(phase3_read_schedule(&tree, meta.num_vertices() as u32));

    let t_run = Instant::now();
    let mut seed = Some(states);
    for level in 0..tree.num_supersteps() {
        store.begin_read_step(level as u64);
        if let Some(token) = cancel {
            token.checkpoint()?;
        }
        let outcome = backend.run_level(LevelWork {
            level,
            pairs: tree.pairs_at(level),
            tree: &tree,
            store: &store,
            config,
            seed: seed.take(),
        })?;
        report.per_partition.extend(outcome.reports);
        report.total_transfer_longs += outcome.transfer_longs;
        if let Some(token) = cancel {
            token.note_step_done();
        }
    }
    report.phase12_time = t_run.elapsed();
    // Snapshot engine statistics now, before Phase 3, so the engine's wall
    // time covers only the superstep walk (as the free-running engine's did).
    report.engine = backend.engine_stats();
    report.warnings = backend.warnings();

    // --- Phase 3: unroll the fragments into the circuit. --------------------
    if let Some(token) = cancel {
        token.checkpoint()?;
    }
    let t3 = Instant::now();
    store.begin_read_step(tree.num_supersteps() as u64);
    let result = unroll(&store);
    if let Some(token) = cancel {
        token.note_step_done();
    }
    report.phase3_time = t3.elapsed();
    report.fragment_disk_longs = store.disk_longs();
    report.fragment_stats = store.stats();
    if report.fragment_stats.spill_errors > 0 {
        report.warnings.push(format!(
            "fragment spill degraded: {} spill I/O failure(s); affected fragments stayed resident",
            report.fragment_stats.spill_errors
        ));
    }

    Ok((result, report))
}

// ---------------------------------------------------------------------------
// The EulerPipeline builder and its staged outputs.
// ---------------------------------------------------------------------------

/// How the pipeline obtains its partition assignment.
enum PartitionSpec {
    /// Use a precomputed assignment verbatim.
    Assignment(PartitionAssignment),
    /// Run a partitioner over the loaded graph.
    Partitioner(Box<dyn Partitioner>),
}

/// Builder for [`EulerPipeline`]. Obtain one via [`EulerPipeline::builder`].
///
/// A source and a partition specification are required; the backend defaults
/// to [`InProcessBackend`] and the configuration to [`EulerConfig::default`].
#[derive(Default)]
pub struct EulerPipelineBuilder {
    source: Option<Box<dyn GraphSource>>,
    partition: Option<PartitionSpec>,
    config: EulerConfig,
    backend: Option<Box<dyn ExecutionBackend>>,
}

impl EulerPipelineBuilder {
    /// Sets the graph input source ([`euler_graph::InMemorySource`],
    /// [`euler_graph::EdgeListFileSource`], or any custom [`GraphSource`]).
    pub fn source(mut self, source: impl GraphSource + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Convenience: use a copy of `graph` as the input (an
    /// [`euler_graph::InMemorySource`]). The clone happens once, here;
    /// [`EulerPipeline::run`] borrows the resident graph.
    pub fn graph(self, graph: &Graph) -> Self {
        self.source(euler_graph::InMemorySource::new(graph.clone()))
    }

    /// Partitions the loaded graph with `partitioner` (any
    /// [`euler_partition::Partitioner`]).
    pub fn partitioner(mut self, partitioner: impl Partitioner + 'static) -> Self {
        self.partition = Some(PartitionSpec::Partitioner(Box::new(partitioner)));
        self
    }

    /// Uses a precomputed partition assignment instead of a partitioner.
    pub fn assignment(mut self, assignment: PartitionAssignment) -> Self {
        self.partition = Some(PartitionSpec::Assignment(assignment));
        self
    }

    /// Replaces the whole algorithm configuration. Call before the per-field
    /// tweaks ([`strategy`](Self::strategy), [`verify`](Self::verify),
    /// [`sequential`](Self::sequential)) or they are overwritten.
    pub fn config(mut self, config: EulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the remote-edge merge strategy (§5 of the paper).
    pub fn strategy(mut self, strategy: MergeStrategy) -> Self {
        self.config.merge_strategy = strategy;
        self
    }

    /// Verifies the reconstructed circuit against the input graph before
    /// returning (every edge exactly once, chained, closed).
    pub fn verify(mut self, yes: bool) -> Self {
        self.config.verify = yes;
        self
    }

    /// Disables intra-level parallelism (one partition at a time, in
    /// ascending id order) — easier to profile, and deterministic.
    pub fn sequential(mut self) -> Self {
        self.config.parallel_within_level = false;
        self
    }

    /// Bounds resident fragment memory to `longs`: circuit fragments beyond
    /// the budget are paged to a temp file and reloaded on demand during
    /// Phase 3 (the out-of-core mode for circuits larger than memory;
    /// bit-identical results, spill traffic reported in
    /// [`CircuitStage::fragment_stats`]).
    pub fn memory_budget(mut self, longs: u64) -> Self {
        self.config.fragment_memory_budget = Some(longs);
        self
    }

    /// Builds level-0 partition tours with the one-pass W-streaming chain
    /// machine instead of the dense resident arena (see
    /// [`EulerConfig::streaming_phase1`]): edges are consumed straight off
    /// the source's [`euler_graph::EdgeStream`], partial tours go out-of-core
    /// through the fragment store, and resident traversal state stays
    /// `O(n log n)` — reported in [`MergeStage::wstream`]. Composes with any
    /// backend and merge strategy; the circuits cover the same edge multiset
    /// as the dense path.
    pub fn streaming_phase1(mut self, yes: bool) -> Self {
        self.config.streaming_phase1 = yes;
        self
    }

    /// Sets the execution backend. Defaults to [`InProcessBackend`].
    pub fn backend(mut self, backend: impl ExecutionBackend + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    /// [`EulerError::InvalidConfig`] when no source or no partition
    /// specification was given.
    pub fn build(self) -> Result<EulerPipeline, EulerError> {
        let source = self.source.ok_or_else(|| {
            EulerError::InvalidConfig("pipeline needs a graph source (`.source(..)` or `.graph(..)`)".into())
        })?;
        let partition = self.partition.ok_or_else(|| {
            EulerError::InvalidConfig(
                "pipeline needs a partitioner (`.partitioner(..)`) or assignment (`.assignment(..)`)".into(),
            )
        })?;
        Ok(EulerPipeline {
            source,
            partition,
            config: self.config,
            backend: self.backend.unwrap_or_else(|| Box::new(InProcessBackend::new())),
        })
    }
}

/// The unified entry point to the partition-centric Euler circuit algorithm:
/// load (via a [`GraphSource`]) → partition (via a [`Partitioner`] or a fixed
/// assignment) → Phase-1/2 merge tree (on an [`ExecutionBackend`]) → Phase-3
/// unroll.
///
/// ```
/// use euler_core::{EulerPipeline, InProcessBackend, MergeStrategy};
/// use euler_graph::builder::graph_from_edges;
/// use euler_partition::LdgPartitioner;
///
/// let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
/// let run = EulerPipeline::builder()
///     .graph(&graph)
///     .partitioner(LdgPartitioner::new(2))
///     .strategy(MergeStrategy::Deferred)
///     .backend(InProcessBackend::new())
///     .verify(true)
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(run.circuit.result.total_edges(), 6);
/// ```
pub struct EulerPipeline {
    source: Box<dyn GraphSource>,
    partition: PartitionSpec,
    config: EulerConfig,
    backend: Box<dyn ExecutionBackend>,
}

impl std::fmt::Debug for EulerPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EulerPipeline")
            .field("source", &self.source.name())
            .field(
                "partition",
                &match &self.partition {
                    PartitionSpec::Assignment(a) => format!("pre-assigned ({} parts)", a.num_partitions()),
                    PartitionSpec::Partitioner(p) => p.name().to_string(),
                },
            )
            .field("config", &self.config)
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl EulerPipeline {
    /// Starts building a pipeline.
    pub fn builder() -> EulerPipelineBuilder {
        EulerPipelineBuilder::default()
    }

    /// The algorithm configuration this pipeline runs with.
    pub fn config(&self) -> &EulerConfig {
        &self.config
    }

    /// Runs the full pipeline, producing the staged outputs.
    ///
    /// A source that exposes a mapped CSR view ([`GraphSource::csr`],
    /// e.g. [`euler_graph::MmapCsrSource`]) combined with either a
    /// precomputed [`assignment`](EulerPipelineBuilder::assignment) *or* a
    /// [`partitioner`](EulerPipelineBuilder::partitioner) with a streaming
    /// view ([`euler_partition::StreamingPartitioner`] — hash and LDG) takes
    /// the direct slicing path: the assignment is computed from chunked edge
    /// batches off the mapped sections, partitions are cut straight from
    /// those sections, and no [`Graph`] is ever materialised. Configuring
    /// [`verify`](EulerPipelineBuilder::verify), or a partitioner without a
    /// suitable streaming view (BFS placement, custom whole-graph
    /// partitioners), needs the whole graph and falls back to the load path.
    pub fn run(&self) -> Result<PipelineRun, EulerError> {
        if self.config.streaming_phase1 {
            return self.run_streaming();
        }
        if let Some(csr) = self.source.csr() {
            if !self.config.verify {
                match &self.partition {
                    PartitionSpec::Assignment(a) => {
                        let a = a.clone();
                        return self.run_from_csr(
                            csr,
                            a,
                            "pre-assigned (direct csr slice)".to_string(),
                            Duration::ZERO,
                        );
                    }
                    PartitionSpec::Partitioner(p) => {
                        if let (Some(sp), Some(mut stream)) =
                            (p.as_streaming(), self.source.edge_stream())
                        {
                            if sp.supports(stream.order()) {
                                let t = Instant::now();
                                let a = sp.partition_stream(stream.as_mut())?;
                                return self.run_from_csr(
                                    csr,
                                    a,
                                    format!("{} (streamed, direct csr slice)", sp.name()),
                                    t.elapsed(),
                                );
                            }
                        }
                    }
                }
            }
        }
        let t_load = Instant::now();
        let loaded;
        let graph: &Graph = match self.source.resident() {
            Some(g) => g,
            None => {
                loaded = self.source.load()?;
                &loaded
            }
        };
        let load_time = t_load.elapsed();

        let t_part = Instant::now();
        let (assignment, partitioner) = match &self.partition {
            PartitionSpec::Assignment(a) => (a.clone(), "pre-assigned".to_string()),
            PartitionSpec::Partitioner(p) => (p.partition(graph), p.name().to_string()),
        };
        let partition_time = t_part.elapsed();

        let (result, report) = run_with_backend(graph, &assignment, &self.config, self.backend.as_ref())?;
        let provenance = Provenance {
            source: self.source.name(),
            load_time,
            partitioner,
            partition_time,
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            assignment,
        };
        Ok(assemble_run(provenance, result, report))
    }

    /// The direct CSR slicing path: degree pre-check off the mapped offsets
    /// section, partitions cut from the mapped arrays, no [`Graph`] ever
    /// materialised. `partitioner` names how the assignment came to be
    /// (pre-assigned, or a streaming partitioner whose pass took
    /// `partition_time` so far).
    fn run_from_csr(
        &self,
        csr: &CsrFile,
        assignment: PartitionAssignment,
        partitioner: String,
        partition_time: Duration,
    ) -> Result<PipelineRun, EulerError> {
        if self.config.require_eulerian {
            require_even_degrees(csr.first_odd_vertex())?;
        }
        let t_part = Instant::now();
        let pg = csr.partitioned(&assignment)?;
        let partition_time = partition_time + t_part.elapsed();
        let (result, report) = run_on_partitioned(&pg, &self.config, self.backend.as_ref())?;
        let provenance = Provenance {
            source: self.source.name(),
            // Nothing is loaded up front; pages fault in as the partition
            // stream and partition slicing touch them, which the partition
            // stage times.
            load_time: Duration::ZERO,
            partitioner,
            partition_time,
            num_vertices: csr.num_vertices(),
            num_edges: csr.num_edges(),
            assignment,
        };
        Ok(assemble_run(provenance, result, report))
    }

    /// The W-streaming path ([`EulerConfig::streaming_phase1`]): level-0
    /// tours are built by one pass of [`stream_phase1`] over the source's
    /// edge stream — no dense incidence arena, no [`PartitionedGraph`] — and
    /// the residual coarse state rides the ordinary merge-tree walk.
    ///
    /// The assignment comes from the builder verbatim, from a streaming
    /// partitioner's own pass over a fresh stream, or (for whole-graph
    /// partitioners) from a temporarily loaded graph that is dropped again
    /// before the tour pass. The Eulerian precondition is checked from the
    /// degrees the pass accumulates, so a violation surfaces *after* the
    /// single pass rather than before the run as on the dense paths.
    fn run_streaming(&self) -> Result<PipelineRun, EulerError> {
        let t_part = Instant::now();
        let (assignment, partitioner) = match &self.partition {
            PartitionSpec::Assignment(a) => (a.clone(), "pre-assigned (w-streaming)".to_string()),
            PartitionSpec::Partitioner(p) => {
                let mut streamed = None;
                if let (Some(sp), Some(mut stream)) = (p.as_streaming(), self.source.edge_stream())
                {
                    if sp.supports(stream.order()) {
                        streamed = Some((
                            sp.partition_stream(stream.as_mut())?,
                            format!("{} (streamed, w-streaming)", sp.name()),
                        ));
                    }
                }
                match streamed {
                    Some(x) => x,
                    None => {
                        let loaded;
                        let graph: &Graph = match self.source.resident() {
                            Some(g) => g,
                            None => {
                                loaded = self.source.load()?;
                                &loaded
                            }
                        };
                        (p.partition(graph), format!("{} (w-streaming)", p.name()))
                    }
                }
            }
        };
        let partition_time = t_part.elapsed();

        let mut stream = self.source.edge_stream().ok_or_else(|| {
            EulerError::InvalidConfig(
                "streaming_phase1 needs a source that exposes an edge stream".into(),
            )
        })?;
        let store = fragment_store_for(&self.config);
        let t1 = Instant::now();
        let outcome =
            stream_phase1(stream.as_mut(), &assignment, &store, self.config.wstream_chunk_edges)?;
        let pass_time = t1.elapsed();
        if self.config.require_eulerian {
            require_even_degrees(outcome.first_odd)?;
        }
        let (result, mut report) = run_merge_walk(
            &outcome.meta,
            outcome.states,
            store,
            &self.config,
            self.backend.as_ref(),
            Some(outcome.stats),
            None,
        )?;
        report.phase12_time += pass_time;
        if self.config.verify {
            let loaded;
            let graph: &Graph = match self.source.resident() {
                Some(g) => g,
                None => {
                    loaded = self.source.load()?;
                    &loaded
                }
            };
            verify_result(graph, &result)?;
        }
        let provenance = Provenance {
            source: self.source.name(),
            load_time: Duration::ZERO,
            partitioner,
            partition_time,
            num_vertices: outcome.stats.num_vertices,
            num_edges: outcome.stats.edges_ingested,
            assignment,
        };
        Ok(assemble_run(provenance, result, report))
    }
}

/// Input-side provenance of a run — the [`PartitionStage`] fields that differ
/// between the load path and the CSR direct slicing path.
struct Provenance {
    source: String,
    load_time: Duration,
    partitioner: String,
    partition_time: Duration,
    num_vertices: u64,
    num_edges: u64,
    assignment: PartitionAssignment,
}

/// Splits one unified [`RunReport`] across the staged outputs — the single
/// place a run is assembled, whichever input path produced it.
fn assemble_run(provenance: Provenance, result: CircuitResult, report: RunReport) -> PipelineRun {
    let RunReport {
        num_partitions,
        supersteps,
        strategy,
        per_partition,
        phase12_time,
        phase3_time,
        total_transfer_longs,
        fragment_disk_longs,
        fragment_stats,
        merge_tree,
        backend,
        engine,
        wstream,
        warnings,
    } = report;
    PipelineRun {
        partition: PartitionStage {
            source: provenance.source,
            load_time: provenance.load_time,
            partitioner: provenance.partitioner,
            partition_time: provenance.partition_time,
            num_vertices: provenance.num_vertices,
            num_edges: provenance.num_edges,
            num_partitions,
            assignment: provenance.assignment,
        },
        merge: MergeStage {
            supersteps,
            strategy,
            backend,
            per_partition,
            phase12_time,
            total_transfer_longs,
            merge_tree,
            engine,
            wstream,
            warnings,
        },
        circuit: CircuitStage { result, phase3_time, fragment_disk_longs, fragment_stats },
    }
}

/// Output of the load + partition stage.
#[derive(Clone, Debug)]
pub struct PartitionStage {
    /// Description of the graph source.
    pub source: String,
    /// Time to obtain the graph from the source (zero-ish for resident
    /// in-memory sources).
    pub load_time: Duration,
    /// Name of the partitioner, or `"pre-assigned"` for a fixed assignment.
    pub partitioner: String,
    /// Time spent partitioning.
    pub partition_time: Duration,
    /// Vertices in the loaded graph.
    pub num_vertices: u64,
    /// Edges in the loaded graph.
    pub num_edges: u64,
    /// Number of leaf partitions.
    pub num_partitions: u32,
    /// The assignment the run executed with.
    pub assignment: PartitionAssignment,
}

/// Output of the Phase-1/2 merge-tree stage — the per-level slice of the
/// [`RunReport`].
#[derive(Clone, Debug)]
pub struct MergeStage {
    /// Number of Phase-1 rounds executed (the coordination cost, §3.5).
    pub supersteps: u32,
    /// Merge strategy used.
    pub strategy: MergeStrategy,
    /// Name of the execution backend.
    pub backend: String,
    /// Per-partition, per-level records.
    pub per_partition: Vec<LevelPartitionReport>,
    /// Total wall time of phases 1–2.
    pub phase12_time: Duration,
    /// Total Longs shipped between partitions across all merges.
    pub total_transfer_longs: u64,
    /// The merge tree walked.
    pub merge_tree: MergeTree,
    /// BSP engine statistics (present for [`BspBackend`] runs).
    pub engine: Option<euler_bsp::EngineStats>,
    /// W-streaming Phase-1 resident-state accounting (present when the run
    /// executed with [`EulerPipelineBuilder::streaming_phase1`]).
    pub wstream: Option<WStreamStats>,
    /// Non-fatal degradations absorbed during the walk (see
    /// [`RunReport::warnings`]).
    pub warnings: Vec<String>,
}

/// Output of the Phase-3 unroll stage.
#[derive(Clone, Debug)]
pub struct CircuitStage {
    /// The reconstructed circuit(s).
    pub result: CircuitResult,
    /// Wall time of Phase 3.
    pub phase3_time: Duration,
    /// Longs written to the fragment store ("disk").
    pub fragment_disk_longs: u64,
    /// Real memory/spill statistics of the fragment store (see
    /// [`RunReport::fragment_stats`]).
    pub fragment_stats: FragmentStoreStats,
}

/// The staged outputs of one pipeline run:
/// [`PartitionStage`] → [`MergeStage`] → [`CircuitStage`].
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// Load + partition stage.
    pub partition: PartitionStage,
    /// Phase-1/2 merge-tree stage.
    pub merge: MergeStage,
    /// Phase-3 unroll stage.
    pub circuit: CircuitStage,
}

impl PipelineRun {
    /// The reconstructed circuit(s).
    pub fn result(&self) -> &CircuitResult {
        &self.circuit.result
    }

    /// Consumes the run, returning just the circuit(s).
    pub fn into_result(self) -> CircuitResult {
        self.circuit.result
    }

    /// Reassembles the stages into the unified legacy-shaped [`RunReport`]
    /// (per-level analysis helpers, Fig.-8 memory series, level traces).
    pub fn report(&self) -> RunReport {
        RunReport {
            num_partitions: self.partition.num_partitions,
            supersteps: self.merge.supersteps,
            strategy: self.merge.strategy,
            per_partition: self.merge.per_partition.clone(),
            phase12_time: self.merge.phase12_time,
            phase3_time: self.circuit.phase3_time,
            total_transfer_longs: self.merge.total_transfer_longs,
            fragment_disk_longs: self.circuit.fragment_disk_longs,
            fragment_stats: self.circuit.fragment_stats,
            merge_tree: self.merge.merge_tree.clone(),
            backend: self.merge.backend.clone(),
            engine: self.merge.engine.clone(),
            wstream: self.merge.wstream,
            warnings: self.merge.warnings.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_gen::synthetic;
    use euler_partition::{HashPartitioner, LdgPartitioner, Partitioner};

    fn builder_for(g: &Graph, parts: u32) -> EulerPipelineBuilder {
        EulerPipeline::builder().graph(g).partitioner(LdgPartitioner::new(parts))
    }

    #[test]
    fn builder_requires_source_and_partitioner() {
        let g = synthetic::torus_grid(4, 4);
        let err = EulerPipeline::builder().graph(&g).build().unwrap_err();
        assert!(matches!(err, EulerError::InvalidConfig(_)));
        let err = EulerPipeline::builder().partitioner(HashPartitioner::new(2)).build().unwrap_err();
        assert!(matches!(err, EulerError::InvalidConfig(_)));
    }

    #[test]
    fn pipeline_stages_carry_the_report_slices() {
        let g = synthetic::torus_grid(8, 8);
        let run = builder_for(&g, 4).verify(true).build().unwrap().run().unwrap();
        // Partition stage.
        assert!(run.partition.source.contains("in-memory"));
        assert_eq!(run.partition.partitioner, "ldg");
        assert_eq!(run.partition.num_partitions, 4);
        assert_eq!(run.partition.num_edges, g.num_edges());
        assert_eq!(run.partition.assignment.num_partitions(), 4);
        // Merge stage: 4 partitions -> 3 supersteps, records at every level.
        assert_eq!(run.merge.supersteps, 3);
        assert_eq!(run.merge.backend, "in-process");
        assert!(run.merge.engine.is_none());
        assert!(run.merge.total_transfer_longs > 0);
        // Circuit stage.
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        assert!(run.circuit.fragment_disk_longs > 0);
        // The reassembled unified report matches the stages.
        let report = run.report();
        assert_eq!(report.supersteps, 3);
        assert_eq!(report.level(0).len(), 4);
        assert_eq!(report.level(2).len(), 1);
        assert_eq!(report.backend, "in-process");
    }

    #[test]
    fn bsp_backend_carries_engine_stats() {
        let g = synthetic::torus_grid(8, 8);
        let run = builder_for(&g, 4).backend(BspBackend::new()).verify(true).build().unwrap().run().unwrap();
        assert_eq!(run.merge.backend, "bsp");
        let engine = run.merge.engine.as_ref().expect("bsp runs report engine stats");
        // One engine superstep per merge level.
        assert_eq!(engine.num_supersteps(), run.merge.supersteps);
        assert!(engine.total_remote_bytes() > 0, "children ship state across workers");
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        // The unified per-level report is populated identically in shape.
        assert_eq!(run.report().level(0).len(), 4);
    }

    #[test]
    fn backends_agree_on_circuits_and_transfers_when_sequential() {
        let g = synthetic::random_eulerian_connected(120, 16, 6, 42);
        let a = LdgPartitioner::new(4).partition(&g);
        let config = EulerConfig::default().sequential();
        let in_proc = EulerPipeline::builder()
            .graph(&g)
            .assignment(a.clone())
            .config(config.clone())
            .backend(InProcessBackend::new())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let bsp = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .config(config.clone())
            .backend(BspBackend::with_engine(euler_bsp::BspConfig::with_workers(1)))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(in_proc.circuit.result.circuits, bsp.circuit.result.circuits);
        assert_eq!(in_proc.merge.total_transfer_longs, bsp.merge.total_transfer_longs);
    }

    /// The measurement-free projection of a per-level record (timings differ
    /// run to run; everything else must be bit-stable).
    fn record_facts(r: &LevelPartitionReport) -> impl PartialEq + std::fmt::Debug {
        (
            r.level,
            r.partition,
            r.counts,
            r.complexity,
            r.memory_longs,
            r.remote_needed_now,
            r.transfer_in_longs,
            (r.paths_found, r.cycles_found, r.internal_cycles_merged),
        )
    }

    fn assert_same_run(a: &PipelineRun, b: &PipelineRun) {
        assert_eq!(a.circuit.result.circuits, b.circuit.result.circuits);
        assert_eq!(a.merge.total_transfer_longs, b.merge.total_transfer_longs);
        assert_eq!(a.merge.supersteps, b.merge.supersteps);
        assert_eq!(a.merge.per_partition.len(), b.merge.per_partition.len());
        for (x, y) in a.merge.per_partition.iter().zip(&b.merge.per_partition) {
            assert_eq!(record_facts(x), record_facts(y));
        }
    }

    #[test]
    fn intra_partition_modes_match_the_sequential_run_bit_for_bit() {
        // The determinism headline: whatever the thread count and backend,
        // IntraPartition runs equal the fully sequential run — circuits,
        // per-level records, transfers.
        let g = synthetic::random_eulerian_connected(140, 18, 6, 77);
        let a = LdgPartitioner::new(4).partition(&g);
        let sequential = EulerPipeline::builder()
            .graph(&g)
            .assignment(a.clone())
            .config(EulerConfig::default().sequential())
            .build()
            .unwrap()
            .run()
            .unwrap();
        for threads in [1usize, 2, 8] {
            let in_proc = EulerPipeline::builder()
                .graph(&g)
                .assignment(a.clone())
                .backend(
                    InProcessBackend::new()
                        .with_parallelism(Parallelism::IntraPartition)
                        .with_threads(threads),
                )
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_same_run(&in_proc, &sequential);
            let bsp = EulerPipeline::builder()
                .graph(&g)
                .assignment(a.clone())
                .backend(
                    BspBackend::with_engine(
                        euler_bsp::BspConfig::with_workers(1).with_worker_threads(threads),
                    )
                    .with_parallelism(Parallelism::IntraPartition),
                )
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_same_run(&bsp, &sequential);
        }
    }

    #[test]
    fn auto_mode_is_valid_and_deterministic_on_narrow_levels() {
        // With one partition every level is narrower than the thread budget,
        // so Auto takes the intra path throughout and must equal sequential.
        let g = synthetic::torus_grid(10, 10);
        let a = HashPartitioner::new(1).partition(&g);
        let sequential = EulerPipeline::builder()
            .graph(&g)
            .assignment(a.clone())
            .config(EulerConfig::default().sequential())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let auto = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .backend(
                InProcessBackend::new().with_parallelism(Parallelism::Auto).with_threads(4),
            )
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_same_run(&auto, &sequential);
        verify_result(&g, &auto.circuit.result).unwrap();
        // Same rule through the BSP worker loop: one live partition is
        // narrower than the explicit 4-thread worker budget, so Auto takes
        // the wave path there too — still bit-identical to sequential.
        let bsp_auto = EulerPipeline::builder()
            .graph(&g)
            .assignment(HashPartitioner::new(1).partition(&g))
            .backend(
                BspBackend::with_engine(
                    euler_bsp::BspConfig::with_workers(1).with_worker_threads(4),
                )
                .with_parallelism(Parallelism::Auto),
            )
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_same_run(&bsp_auto, &sequential);
        // Wide multi-partition graphs stay valid under Auto (fan-out levels
        // interleave fragment ids, so only validity is asserted there).
        let g = synthetic::random_eulerian_connected(100, 12, 5, 5);
        let a = LdgPartitioner::new(6).partition(&g);
        let run = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .backend(InProcessBackend::new().with_parallelism(Parallelism::Auto).with_threads(3))
            .build()
            .unwrap()
            .run()
            .unwrap();
        verify_result(&g, &run.circuit.result).unwrap();
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
    }

    #[test]
    fn bsp_tree_sharing_preserves_behaviour() {
        // The BSP program now shares the merge tree behind an `Arc` instead
        // of deep-cloning it at seed time; a 1-worker BSP run must remain
        // observably identical to the sequential in-process run — including
        // across two runs of the same reused backend object.
        let g = synthetic::random_eulerian_connected(90, 10, 5, 31);
        let a = LdgPartitioner::new(4).partition(&g);
        let config = EulerConfig::default().sequential();
        let reference = EulerPipeline::builder()
            .graph(&g)
            .assignment(a.clone())
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let bsp_pipeline = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .config(config.clone())
            .backend(BspBackend::with_engine(euler_bsp::BspConfig::with_workers(1)))
            .build()
            .unwrap();
        for _ in 0..2 {
            let bsp = bsp_pipeline.run().unwrap();
            assert_same_run(&bsp, &reference);
            assert_eq!(bsp.merge.merge_tree, reference.merge.merge_tree);
            assert!(bsp.merge.engine.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "superstep bound")]
    fn bsp_backend_surfaces_an_exhausted_superstep_bound() {
        // 4 partitions need 3 merge levels; a 1-superstep engine bound must
        // fail loudly instead of silently skipping levels.
        let g = synthetic::torus_grid(8, 8);
        let _ = builder_for(&g, 4)
            .backend(BspBackend::with_engine(
                euler_bsp::BspConfig::one_worker_per_partition().with_max_supersteps(1),
            ))
            .build()
            .unwrap()
            .run();
    }

    #[test]
    fn pipeline_reuses_a_backend_across_runs() {
        // Two consecutive runs of the same pipeline object must reset the
        // backend via the level-0 seed and produce identical results.
        let g = synthetic::torus_grid(6, 6);
        let pipeline = builder_for(&g, 2).build().unwrap();
        let first = pipeline.run().unwrap();
        let second = pipeline.run().unwrap();
        assert_eq!(first.circuit.result.total_edges(), second.circuit.result.total_edges());
        assert_eq!(first.merge.total_transfer_longs, second.merge.total_transfer_longs);
        assert_eq!(first.merge.supersteps, second.merge.supersteps);
    }

    #[test]
    fn file_source_feeds_the_pipeline() {
        let g = synthetic::torus_grid(6, 6);
        let dir = std::env::temp_dir().join("euler_pipeline_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torus.el");
        euler_graph::io::write_edge_list_file(&g, &path).unwrap();
        let run = EulerPipeline::builder()
            .source(euler_graph::EdgeListFileSource::new(&path))
            .partitioner(HashPartitioner::new(3))
            .verify(true)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(run.partition.num_edges, g.num_edges());
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        assert!(run.partition.source.contains("torus.el"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_eulerian_input_rejected_through_the_pipeline() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2)]);
        let err = builder_for(&g, 2).build().unwrap().run().unwrap_err();
        assert!(matches!(err, EulerError::Graph(euler_graph::GraphError::NotEulerian { .. })));
    }

    // --- The CSR direct slicing path. --------------------------------------

    fn csr_temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("euler_pipeline_csr_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn csr_source_with_assignment_takes_the_direct_slicing_path() {
        let g = synthetic::random_eulerian_connected(120, 14, 6, 21);
        let a = LdgPartitioner::new(4).partition(&g);
        let config = EulerConfig::default().sequential();
        let path = csr_temp("direct.ecsr");
        euler_graph::write_csr_file(&g, &path).unwrap();

        let from_csr = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&path).unwrap())
            .assignment(a.clone())
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let from_mem = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();

        // The fast path is observable in the stage report, skips any load...
        assert_eq!(from_csr.partition.partitioner, "pre-assigned (direct csr slice)");
        assert_eq!(from_csr.partition.load_time, Duration::ZERO);
        assert_eq!(from_csr.partition.num_vertices, g.num_vertices());
        assert_eq!(from_csr.partition.num_edges, g.num_edges());
        // ...and produces the identical deterministic run.
        assert_eq!(from_csr.circuit.result.circuits, from_mem.circuit.result.circuits);
        assert_eq!(from_csr.merge.total_transfer_longs, from_mem.merge.total_transfer_longs);
        assert_eq!(from_csr.merge.supersteps, from_mem.merge.supersteps);
        verify_result(&g, &from_csr.circuit.result).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_source_with_a_partitioner_and_verify_falls_back_to_loading() {
        // `verify` needs the whole graph, so even a streaming-capable
        // partitioner goes through the load path here.
        let g = synthetic::torus_grid(8, 8);
        let path = csr_temp("partitioner_fallback.ecsr");
        euler_graph::write_csr_file(&g, &path).unwrap();
        let run = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&path).unwrap())
            .partitioner(LdgPartitioner::new(4))
            .verify(true)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(run.partition.partitioner, "ldg");
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_source_with_a_streaming_partitioner_takes_the_zero_graph_path() {
        let g = synthetic::random_eulerian_connected(130, 16, 6, 33);
        let config = EulerConfig::default().sequential();
        let path = csr_temp("streamed_partitioner.ecsr");
        euler_graph::write_csr_file(&g, &path).unwrap();
        for (streamed, in_memory) in [
            (
                EulerPipeline::builder()
                    .source(euler_graph::MmapCsrSource::open(&path).unwrap())
                    .partitioner(LdgPartitioner::new(4))
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap(),
                EulerPipeline::builder()
                    .graph(&g)
                    .partitioner(LdgPartitioner::new(4))
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap(),
            ),
            (
                EulerPipeline::builder()
                    .source(euler_graph::MmapCsrSource::open(&path).unwrap())
                    .partitioner(HashPartitioner::new(3))
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap(),
                EulerPipeline::builder()
                    .graph(&g)
                    .partitioner(HashPartitioner::new(3))
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap(),
            ),
        ] {
            // The zero-Graph path is observable in the stage report...
            assert!(
                streamed.partition.partitioner.contains("streamed, direct csr slice"),
                "unexpected partitioner label {}",
                streamed.partition.partitioner
            );
            assert_eq!(streamed.partition.load_time, Duration::ZERO);
            // ...computes the identical assignment...
            for v in g.vertices() {
                assert_eq!(
                    streamed.partition.assignment.partition_of(v),
                    in_memory.partition.assignment.partition_of(v)
                );
            }
            // ...and the identical deterministic run.
            assert_eq!(streamed.circuit.result.circuits, in_memory.circuit.result.circuits);
            assert_eq!(
                streamed.merge.total_transfer_longs,
                in_memory.merge.total_transfer_longs
            );
            verify_result(&g, &streamed.circuit.result).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_source_with_a_bfs_ldg_partitioner_falls_back_to_loading() {
        // BFS placement needs random access to the graph — no streaming view.
        let g = synthetic::torus_grid(6, 6);
        let path = csr_temp("bfs_fallback.ecsr");
        euler_graph::write_csr_file(&g, &path).unwrap();
        let run = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&path).unwrap())
            .partitioner(LdgPartitioner::new(2).with_bfs_order())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(run.partition.partitioner, "ldg");
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_budget_spills_and_stays_bit_identical() {
        let g = synthetic::random_eulerian_connected(160, 20, 6, 55);
        let a = LdgPartitioner::new(4).partition(&g);
        let config = EulerConfig::default().sequential();
        let unbounded = EulerPipeline::builder()
            .graph(&g)
            .assignment(a.clone())
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        // A budget far below the total fragment bytes forces heavy paging.
        let budget = unbounded.circuit.fragment_disk_longs / 10;
        let bounded = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .config(config.clone())
            .memory_budget(budget)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(bounded.circuit.result.circuits, unbounded.circuit.result.circuits);
        assert_eq!(
            bounded.circuit.fragment_disk_longs,
            unbounded.circuit.fragment_disk_longs
        );
        assert_eq!(bounded.merge.total_transfer_longs, unbounded.merge.total_transfer_longs);
        let stats = bounded.circuit.fragment_stats;
        assert!(stats.spilled_fragments > 0, "budget {budget} must spill: {stats:?}");
        assert!(stats.spill_write_longs > 0);
        assert!(stats.spill_read_longs > 0, "phase 3 reloads spilled fragments");
        assert_eq!(stats.spill_errors, 0);
        assert!(
            stats.peak_resident_longs < unbounded.circuit.fragment_stats.peak_resident_longs,
            "bounded peak {} vs unbounded {}",
            stats.peak_resident_longs,
            unbounded.circuit.fragment_stats.peak_resident_longs
        );
        verify_result(&g, &bounded.circuit.result).unwrap();
    }

    #[test]
    fn csr_source_with_verify_falls_back_to_loading() {
        let g = synthetic::torus_grid(6, 6);
        let a = HashPartitioner::new(2).partition(&g);
        let path = csr_temp("verify_fallback.ecsr");
        euler_graph::write_csr_file(&g, &path).unwrap();
        let run = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&path).unwrap())
            .assignment(a)
            .verify(true)
            .build()
            .unwrap()
            .run()
            .unwrap();
        // Verification needs the graph, so the plain pre-assigned path ran.
        assert_eq!(run.partition.partitioner, "pre-assigned");
        assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csr_fast_path_runs_the_degree_precheck_off_the_offsets() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2)]);
        let a = HashPartitioner::new(2).partition(&g);
        let path = csr_temp("odd.ecsr");
        euler_graph::write_csr_file(&g, &path).unwrap();
        let err = EulerPipeline::builder()
            .source(euler_graph::MmapCsrSource::open(&path).unwrap())
            .assignment(a)
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, EulerError::Graph(euler_graph::GraphError::NotEulerian { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_on_partitioned_is_the_core_of_run_with_backend() {
        let g = synthetic::random_eulerian_connected(80, 10, 5, 17);
        let a = LdgPartitioner::new(4).partition(&g);
        let config = EulerConfig::default().sequential();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let (direct, direct_report) =
            run_on_partitioned(&pg, &config, &InProcessBackend::new()).unwrap();
        let (wrapped, wrapped_report) =
            run_with_backend(&g, &a, &config, &InProcessBackend::new()).unwrap();
        assert_eq!(direct.circuits, wrapped.circuits);
        assert_eq!(direct_report.total_transfer_longs, wrapped_report.total_transfer_longs);
        assert_eq!(direct_report.supersteps, wrapped_report.supersteps);
        verify_result(&g, &direct).unwrap();
    }

    // --- Folded from the removed `runner` module's suite: the same
    // behavioural guarantees, stated against the pipeline API. -------------

    fn verify_ok(g: &Graph, assignment: &PartitionAssignment, config: &EulerConfig) {
        let (result, report) =
            run_with_backend(g, assignment, config, &InProcessBackend::new()).unwrap();
        verify_result(g, &result).unwrap();
        assert_eq!(result.total_edges(), g.num_edges());
        assert_eq!(report.num_partitions, assignment.num_partitions());
    }

    #[test]
    fn fig1_graph_end_to_end() {
        let (g, a) = synthetic::paper_fig1();
        let config = EulerConfig::default().with_verify(true);
        let (result, report) =
            run_with_backend(&g, &a, &config, &InProcessBackend::new()).unwrap();
        assert_eq!(result.num_circuits(), 1);
        assert_eq!(result.total_edges(), 16);
        // 4 partitions -> 3 supersteps (Fig. 2).
        assert_eq!(report.supersteps, 3);
        let seq = result.vertex_sequence().unwrap();
        assert_eq!(seq.first(), seq.last());
    }

    #[test]
    fn torus_grid_all_partitioners() {
        let g = synthetic::torus_grid(8, 10);
        for k in [1u32, 2, 3, 4] {
            let a = LdgPartitioner::new(k).partition(&g);
            verify_ok(&g, &a, &EulerConfig::default());
            let a = HashPartitioner::new(k).partition(&g);
            verify_ok(&g, &a, &EulerConfig::default());
        }
    }

    #[test]
    fn all_merge_strategies_yield_valid_circuits() {
        let g = synthetic::random_eulerian_connected(120, 15, 6, 9);
        let a = LdgPartitioner::new(4).partition(&g);
        for strategy in MergeStrategy::all() {
            let run = EulerPipeline::builder()
                .graph(&g)
                .assignment(a.clone())
                .strategy(strategy)
                .verify(true)
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(run.circuit.result.num_circuits(), 1, "strategy {strategy}");
            assert_eq!(run.circuit.result.total_edges(), g.num_edges());
        }
    }

    #[test]
    fn disconnected_eulerian_graph_yields_one_circuit_per_component() {
        let g = euler_graph::builder::graph_from_edges(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (5, 6),
            (6, 7),
            (7, 5),
        ]);
        let a = HashPartitioner::new(2).partition(&g);
        let (result, _) =
            run_with_backend(&g, &a, &EulerConfig::default(), &InProcessBackend::new()).unwrap();
        assert_eq!(result.num_circuits(), 2);
        assert_eq!(result.total_edges(), 6);
        verify_result(&g, &result).unwrap();
    }

    #[test]
    fn report_has_one_record_per_partition_per_level() {
        let g = synthetic::torus_grid(10, 10);
        let a = LdgPartitioner::new(8).partition(&g);
        let (_, report) =
            run_with_backend(&g, &a, &EulerConfig::default(), &InProcessBackend::new()).unwrap();
        assert_eq!(report.supersteps, 4); // 8 partitions -> 4 Phase-1 rounds
        assert_eq!(report.level(0).len(), 8);
        assert_eq!(report.level(1).len(), 4);
        assert_eq!(report.level(2).len(), 2);
        assert_eq!(report.level(3).len(), 1);
        let cumulative = report.cumulative_memory_by_level();
        assert_eq!(cumulative.len(), 4);
        assert!(cumulative[0] > 0);
        // Fig. 9: the root level holds no remote edges.
        let root = report.level(3)[0];
        assert_eq!(root.counts.remote_edges, 0);
        assert_eq!(report.backend, "in-process");
        assert!(report.engine.is_none());
    }

    #[test]
    fn memory_accounting_deferred_never_exceeds_dedup() {
        let g = synthetic::random_eulerian_connected(200, 30, 6, 3);
        let a = LdgPartitioner::new(8).partition(&g);
        let config = EulerConfig::default().with_merge_strategy(MergeStrategy::Deduplicated);
        let (_, dedup) = run_with_backend(&g, &a, &config, &InProcessBackend::new()).unwrap();
        let config = EulerConfig::default().with_merge_strategy(MergeStrategy::Deferred);
        let (_, deferred) = run_with_backend(&g, &a, &config, &InProcessBackend::new()).unwrap();
        let c_dedup = dedup.cumulative_memory_by_level();
        let c_def = deferred.cumulative_memory_by_level();
        for (d, f) in c_dedup.iter().zip(c_def.iter()) {
            assert!(f <= d, "deferred {f} > dedup {d}");
        }
        // Transfers also shrink.
        assert!(deferred.total_transfer_longs <= dedup.total_transfer_longs);
    }

    #[test]
    fn sequential_and_parallel_levels_agree() {
        let g = synthetic::random_eulerian_connected(80, 10, 5, 11);
        let a = LdgPartitioner::new(4).partition(&g);
        let config = EulerConfig::default().sequential();
        let (r1, _) = run_with_backend(&g, &a, &config, &InProcessBackend::new()).unwrap();
        let (r2, _) =
            run_with_backend(&g, &a, &EulerConfig::default(), &InProcessBackend::new()).unwrap();
        verify_result(&g, &r1).unwrap();
        verify_result(&g, &r2).unwrap();
        assert_eq!(r1.total_edges(), r2.total_edges());
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let g = synthetic::circulant(50, &[1, 2]);
        let a = HashPartitioner::new(1).partition(&g);
        let config = EulerConfig::default().with_verify(true);
        let (result, report) =
            run_with_backend(&g, &a, &config, &InProcessBackend::new()).unwrap();
        assert_eq!(report.supersteps, 1);
        assert_eq!(result.num_circuits(), 1);
    }

    #[test]
    fn bsp_cost_model_reports_platform_overhead() {
        let g = synthetic::torus_grid(6, 6);
        let a = HashPartitioner::new(4).partition(&g);
        let run = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .backend(BspBackend::with_engine(
                euler_bsp::BspConfig::one_worker_per_partition()
                    .with_cost_model(euler_bsp::PlatformCostModel::spark_like()),
            ))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let engine = run.merge.engine.as_ref().expect("bsp runs report engine stats");
        assert!(engine.modelled_platform_overhead > Duration::ZERO);
        verify_result(&g, &run.circuit.result).unwrap();
    }

    #[test]
    fn larger_rmat_eulerized_graph_end_to_end() {
        let (g, _) = euler_gen::configs::GraphConfig::by_name("G20/P2").unwrap().generate(-7);
        let a = LdgPartitioner::new(2).partition(&g);
        let (result, _) =
            run_with_backend(&g, &a, &EulerConfig::default(), &InProcessBackend::new()).unwrap();
        verify_result(&g, &result).unwrap();
        assert_eq!(result.total_edges(), g.num_edges());
    }
}
