//! Verification of reconstructed Euler circuits.
//!
//! A valid Euler circuit must (1) use every edge of the graph exactly once,
//! (2) chain: each step starts at the vertex the previous step ended at,
//! (3) close: the last step returns to the first step's start vertex, and
//! (4) every step must be a real edge of the graph with matching endpoints.

use crate::error::EulerError;
use crate::phase3::{CircuitResult, CircuitStep};
use euler_graph::Graph;

/// Verifies that `circuit` is a valid Euler circuit of `g`.
pub fn verify_circuit(g: &Graph, circuit: &[CircuitStep]) -> Result<(), EulerError> {
    let mut used = vec![false; g.num_edges() as usize];
    for (i, step) in circuit.iter().enumerate() {
        let idx = step.edge.index();
        if idx >= used.len() {
            return Err(EulerError::Graph(euler_graph::GraphError::VertexOutOfRange {
                vertex: step.from,
                num_vertices: g.num_vertices(),
            }));
        }
        if used[idx] {
            return Err(EulerError::DuplicateEdge { edge: step.edge });
        }
        used[idx] = true;
        // Endpoints must match the graph edge (in either direction).
        let (a, b) = g.endpoints(step.edge);
        if !((a == step.from && b == step.to) || (a == step.to && b == step.from)) {
            return Err(EulerError::BrokenChain { position: i, expected: a, found: step.from });
        }
        // Chaining with the previous step.
        if i > 0 {
            let prev = &circuit[i - 1];
            if prev.to != step.from {
                return Err(EulerError::BrokenChain { position: i, expected: prev.to, found: step.from });
            }
        }
    }
    let missing = used.iter().filter(|&&u| !u).count() as u64;
    if missing > 0 {
        return Err(EulerError::MissingEdges { missing });
    }
    if let (Some(first), Some(last)) = (circuit.first(), circuit.last()) {
        if first.from != last.to {
            return Err(EulerError::NotClosed { start: first.from, end: last.to });
        }
    }
    Ok(())
}

/// Verifies a [`CircuitResult`]: each circuit must be internally chained and
/// closed, every graph edge must be used exactly once across all circuits.
pub fn verify_result(g: &Graph, result: &CircuitResult) -> Result<(), EulerError> {
    let mut used = vec![false; g.num_edges() as usize];
    for circuit in &result.circuits {
        for (i, step) in circuit.iter().enumerate() {
            if used[step.edge.index()] {
                return Err(EulerError::DuplicateEdge { edge: step.edge });
            }
            used[step.edge.index()] = true;
            if i > 0 && circuit[i - 1].to != step.from {
                return Err(EulerError::BrokenChain {
                    position: i,
                    expected: circuit[i - 1].to,
                    found: step.from,
                });
            }
        }
        if let (Some(first), Some(last)) = (circuit.first(), circuit.last()) {
            if first.from != last.to {
                return Err(EulerError::NotClosed { start: first.from, end: last.to });
            }
        }
    }
    let missing = used.iter().filter(|&&u| !u).count() as u64;
    if missing > 0 {
        return Err(EulerError::MissingEdges { missing });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::builder::graph_from_edges;
    use euler_graph::{EdgeId, VertexId};

    fn step(edge: u64, from: u64, to: u64) -> CircuitStep {
        CircuitStep { edge: EdgeId(edge), from: VertexId(from), to: VertexId(to) }
    }

    fn triangle() -> Graph {
        graph_from_edges(&[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn valid_triangle_circuit_accepted() {
        let g = triangle();
        let circuit = vec![step(0, 0, 1), step(1, 1, 2), step(2, 2, 0)];
        assert!(verify_circuit(&g, &circuit).is_ok());
        // Also valid traversed in the other direction.
        let reversed = vec![step(2, 0, 2), step(1, 2, 1), step(0, 1, 0)];
        assert!(verify_circuit(&g, &reversed).is_ok());
    }

    #[test]
    fn duplicate_edge_rejected() {
        let g = triangle();
        let circuit = vec![step(0, 0, 1), step(0, 1, 0), step(1, 1, 2)];
        assert!(matches!(verify_circuit(&g, &circuit), Err(EulerError::DuplicateEdge { .. })));
    }

    #[test]
    fn missing_edge_rejected() {
        let g = triangle();
        let circuit = vec![step(0, 0, 1), step(1, 1, 2)];
        assert!(matches!(verify_circuit(&g, &circuit), Err(EulerError::MissingEdges { missing: 1 })));
    }

    #[test]
    fn broken_chain_rejected() {
        let g = triangle();
        let circuit = vec![step(0, 0, 1), step(2, 2, 0), step(1, 1, 2)];
        assert!(matches!(verify_circuit(&g, &circuit), Err(EulerError::BrokenChain { position: 1, .. })));
    }

    #[test]
    fn unclosed_circuit_rejected() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 0)]);
        let circuit = vec![step(0, 0, 1), step(1, 1, 2), step(2, 2, 0), step(3, 0, 3), step(4, 3, 0)];
        assert!(verify_circuit(&g, &circuit).is_ok());
        // Drop the last edge and also remove it from the graph? No — keep the
        // graph, a circuit that stops at v3 is both missing an edge and open.
        let open = vec![step(0, 0, 1), step(1, 1, 2), step(2, 2, 0), step(3, 0, 3)];
        assert!(verify_circuit(&g, &open).is_err());
    }

    #[test]
    fn wrong_endpoints_rejected() {
        let g = triangle();
        let circuit = vec![step(0, 0, 2), step(1, 2, 1), step(2, 1, 0)];
        // Edge 0 connects 0-1, not 0-2.
        assert!(matches!(verify_circuit(&g, &circuit), Err(EulerError::BrokenChain { .. })));
    }

    #[test]
    fn verify_result_accepts_two_component_graphs() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let result = CircuitResult {
            circuits: vec![
                vec![step(0, 0, 1), step(1, 1, 2), step(2, 2, 0)],
                vec![step(3, 3, 4), step(4, 4, 5), step(5, 5, 3)],
            ],
        };
        assert!(verify_result(&g, &result).is_ok());
    }

    #[test]
    fn verify_result_catches_cross_circuit_duplicates() {
        let g = triangle();
        let result = CircuitResult {
            circuits: vec![
                vec![step(0, 0, 1), step(1, 1, 2), step(2, 2, 0)],
                vec![step(0, 0, 1), step(1, 1, 2), step(2, 2, 0)],
            ],
        };
        assert!(matches!(verify_result(&g, &result), Err(EulerError::DuplicateEdge { .. })));
    }

    #[test]
    fn empty_circuit_on_empty_graph_is_valid() {
        let g = euler_graph::Graph::empty(3);
        assert!(verify_circuit(&g, &[]).is_ok());
    }
}
