//! Remote-edge handling strategies across merge levels (§5 of the paper).
//!
//! The paper identifies remote edges as the dominant memory consumer as
//! partitions merge up the tree (Fig. 9) and proposes two heuristics, which it
//! evaluates analytically (Fig. 8):
//!
//! * **Avoid remote edge duplication** — normally each remote edge is held by
//!   both incident partitions (the directed-pair view). Since the merge tree
//!   is known up front, only one of the two eventual merge partners needs to
//!   keep it; the heavier partition (more cumulative remote edges) drops its
//!   copy.
//! * **Defer transfer of remote edges** — a child partition does not forward
//!   remote edges destined for higher merge levels when it merges; they stay
//!   parked on the (now idle) leaf machine and are shipped to the ancestor
//!   just before the level where they become local.
//!
//! [`MergeStrategy`] selects between the paper's baseline and these
//! improvements; the runner and the analytical [`crate::memory_model`] both
//! honour it.

use serde::{Deserialize, Serialize};

/// How remote edges are stored and transferred across merge levels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MergeStrategy {
    /// The paper's baseline: every remote edge is held by both incident
    /// partitions and the full state is forwarded at every merge.
    #[default]
    Duplicated,
    /// §5 "Avoid Remote Edge Duplication": only one of the two eventual merge
    /// partners holds each remote edge.
    Deduplicated,
    /// §5 both heuristics: deduplication plus deferred transfer of remote
    /// edges to the ancestor level where they are first needed.
    Deferred,
}

impl MergeStrategy {
    /// True if remote edges are stored once instead of twice.
    pub fn deduplicates(self) -> bool {
        matches!(self, MergeStrategy::Deduplicated | MergeStrategy::Deferred)
    }

    /// True if remote edges for higher levels stay parked on leaf machines.
    pub fn defers_transfer(self) -> bool {
        matches!(self, MergeStrategy::Deferred)
    }

    /// All strategies, for sweeps and ablation benches.
    pub fn all() -> [MergeStrategy; 3] {
        [MergeStrategy::Duplicated, MergeStrategy::Deduplicated, MergeStrategy::Deferred]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MergeStrategy::Duplicated => "current",
            MergeStrategy::Deduplicated => "dedup",
            MergeStrategy::Deferred => "proposed",
        }
    }
}

impl std::fmt::Display for MergeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_flags() {
        assert!(!MergeStrategy::Duplicated.deduplicates());
        assert!(!MergeStrategy::Duplicated.defers_transfer());
        assert!(MergeStrategy::Deduplicated.deduplicates());
        assert!(!MergeStrategy::Deduplicated.defers_transfer());
        assert!(MergeStrategy::Deferred.deduplicates());
        assert!(MergeStrategy::Deferred.defers_transfer());
    }

    #[test]
    fn names_and_all() {
        assert_eq!(MergeStrategy::all().len(), 3);
        assert_eq!(MergeStrategy::Duplicated.name(), "current");
        assert_eq!(format!("{}", MergeStrategy::Deferred), "proposed");
    }
}
