//! The Euler circuit service layer: one process, many graphs, many
//! concurrent requests.
//!
//! Everything below this module computes one circuit for one caller. This
//! module is the long-lived serving front over that spine:
//!
//! * **Graph registry** — clients register `.ecsr` files once; the key is
//!   the file's FNV-1a content checksum ([`euler_graph::GraphRegistry`]),
//!   so the same graph at two paths is one mapped file shared by every run.
//! * **Admission control** — runs execute concurrently under one *global*
//!   memory budget. Before a run starts, its peak-resident Longs are
//!   estimated from the §5 analytical model
//!   ([`crate::memory_model::model_series`]), scaled by a calibration ratio
//!   learned from previous runs' measured peaks (`RunReport` +
//!   [`crate::FragmentStoreStats`] actuals), plus the per-run fragment
//!   spill budget that *enforces* the fragment share of the estimate. The
//!   [`AdmissionController`] blocks the run until the sum of admitted
//!   estimates fits under the cap — the invariant
//!   `Σ admitted ≤ memory_cap_longs` holds at every instant.
//! * **Circuit cache** — finished circuits are cached by (graph checksum,
//!   canonicalized run options); a hit streams back without any pipeline
//!   work.
//! * **Streaming + cancellation** — circuits stream back in bounded
//!   [`CircuitStep`] chunks. A client disconnect or an explicit
//!   [`frame_kind::CANCEL`] frame cancels the run cooperatively (via
//!   [`CancelToken`]) and its admitted budget is released immediately, so
//!   a queued run can start.
//!
//! ## Wire protocol
//!
//! The service speaks the PR 6 frame codec (`euler_bsp::transport` — magic,
//! version, kind, length, FNV-1a checksum) over TCP; the payload of every
//! frame is a little-endian `u64` word array. Frame kinds are documented in
//! [`frame_kind`]; the request lifecycle is
//! `REGISTER → REGISTERED`, then per run
//! `RUN → ACCEPTED → PROGRESS* → REPORT? → CHUNK* → DONE`
//! (or `CANCELLED` / `ERROR`). Malformed *payloads* get typed
//! [`frame_kind::ERROR`] replies and the connection keeps serving;
//! malformed *frames* (bad magic, corrupt checksum) desynchronize the
//! stream, so the connection is closed — the server itself never panics on
//! either.
//!
//! Servers are started with [`EulerService::bind`]; the matching client is
//! [`ServiceClient`].

use crate::cancel::CancelToken;
use crate::config::EulerConfig;
use crate::error::EulerError;
use crate::memory_model::{model_series, LevelTrace, PartitionLevelState};
use crate::merge_strategy::MergeStrategy;
use crate::phase1::Parallelism;
use crate::phase3::{CircuitResult, CircuitStep};
use crate::pipeline::{run_on_partitioned_cancellable, InProcessBackend, RunReport};
use euler_bsp::transport::Connection;
use euler_bsp::{connect_endpoint, FrameError, TcpTransport, Transport};
use euler_graph::{CsrFileEdgeStream, EdgeId, GraphRegistry, RegisteredGraph, VertexId};
use euler_partition::{HashPartitioner, LdgPartitioner, StreamingPartitioner};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Request/response frame kinds of the service protocol, one `u16` per
/// frame (the `kind` field of the PR 6 frame header; see
/// `euler_bsp::transport` for the byte layout). Requests are `0x1x`,
/// responses `0x2x`, so neither range collides with the distributed-run
/// protocol kinds (`1..=11`).
pub mod frame_kind {
    /// → Register the `.ecsr` file at a path: `[path string]`.
    pub const REGISTER: u16 = 0x10;
    /// → Start a run: `[checksum, partitions, strategy, partitioner]`.
    pub const RUN: u16 = 0x11;
    /// → Cancel the in-flight run on this connection: `[]`.
    pub const CANCEL: u16 = 0x12;
    /// → Request service statistics: `[]`.
    pub const STATS: u16 = 0x13;
    /// ← Registration done: `[checksum, num_vertices, num_edges]`.
    pub const REGISTERED: u16 = 0x20;
    /// ← Run admitted under the budget: `[admitted_longs, cached]`.
    pub const ACCEPTED: u16 = 0x21;
    /// ← Coarse progress: `[supersteps_done, supersteps_total]`.
    pub const PROGRESS: u16 = 0x22;
    /// ← Run accounting (an encoded [`RunSummary`](super::RunSummary)),
    ///   sent before the chunks of a freshly computed circuit.
    pub const REPORT: u16 = 0x23;
    /// ← One circuit slice: `[circuit, base, k, k×(edge, from, to)]`.
    pub const CHUNK: u16 = 0x24;
    /// ← Run complete: `[num_circuits, total_edges]`.
    pub const DONE: u16 = 0x25;
    /// ← Run cancelled (by CANCEL frame or service shutdown): `[]`.
    pub const CANCELLED: u16 = 0x26;
    /// ← Service statistics (an encoded
    ///   [`ServiceStats`](super::ServiceStats)).
    pub const STATS_REPLY: u16 = 0x27;
    /// ← Typed failure: `[code, message string]`; see
    ///   [`error_code`](super::error_code).
    pub const ERROR: u16 = 0x2F;
}

/// Error codes carried by [`frame_kind::ERROR`] frames.
pub mod error_code {
    /// The request payload did not decode (truncated, bad enum code, …).
    pub const BAD_REQUEST: u64 = 1;
    /// The run referenced a checksum no registered graph carries.
    pub const UNKNOWN_GRAPH: u64 = 2;
    /// Registration failed (missing file, checksum mismatch, …).
    pub const REGISTER_FAILED: u64 = 3;
    /// The pipeline run itself failed (non-Eulerian input, …).
    pub const RUN_FAILED: u64 = 4;
}

// ---------------------------------------------------------------------------
// Word-payload codec (mirrors the distributed-run protocol's idiom:
// bounded cursor, typed failures, never a panic on wire input).
// ---------------------------------------------------------------------------

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * words.len());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err(format!("payload length {} is not word-aligned", bytes.len()));
    }
    Ok(bytes
        .chunks_exact(8)
        .filter_map(|c| c.try_into().ok().map(u64::from_le_bytes))
        .collect())
}

/// Bounded sequential reader over a word payload with typed failures.
struct Cursor<'a> {
    words: &'a [u64],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(words: &'a [u64]) -> Self {
        Cursor { words, at: 0 }
    }

    fn u(&mut self) -> Result<u64, String> {
        let v = self
            .words
            .get(self.at)
            .copied()
            .ok_or_else(|| format!("service payload truncated at word {}", self.at))?;
        self.at += 1;
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u64], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.words.len())
            .ok_or_else(|| format!("service payload truncated: need {n} words at {}", self.at))?;
        let s = self
            .words
            .get(self.at..end)
            .ok_or_else(|| format!("service payload truncated: need {n} words at {}", self.at))?;
        self.at = end;
        Ok(s)
    }

    /// Clamps a wire-declared element count to what the remaining payload
    /// could hold, so `Vec::with_capacity` on garbage input cannot
    /// over-allocate — decoding then fails with a truncation error instead.
    fn cap(&self, n: usize) -> usize {
        n.min(self.words.len().saturating_sub(self.at))
    }
}

fn push_str(out: &mut Vec<u64>, s: &str) {
    let bytes = s.as_bytes();
    out.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        out.push(u64::from_le_bytes(w));
    }
}

fn read_str(c: &mut Cursor<'_>) -> Result<String, String> {
    let n = c.u()? as usize;
    let words = c.take(n.div_ceil(8))?;
    let mut bytes = Vec::with_capacity(n);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.truncate(n);
    String::from_utf8(bytes).map_err(|e| format!("bad utf8 in service string: {e}"))
}

// ---------------------------------------------------------------------------
// Run options.
// ---------------------------------------------------------------------------

/// Which streaming partitioner a service run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// [`HashPartitioner`]: stateless vertex hashing.
    #[default]
    Hash,
    /// [`LdgPartitioner`]: one-pass linear deterministic greedy.
    Ldg,
}

/// The canonicalized per-run configuration a client submits with
/// [`frame_kind::RUN`] — also the second half of the circuit-cache key, so
/// two requests with equal options on the same graph share one computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunOptions {
    /// Number of leaf partitions.
    pub partitions: u32,
    /// Remote-edge merge strategy (§5 of the paper).
    pub strategy: MergeStrategy,
    /// Partitioner used to cut the graph.
    pub partitioner: PartitionerKind,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            partitions: 4,
            strategy: MergeStrategy::Duplicated,
            partitioner: PartitionerKind::Hash,
        }
    }
}

fn strategy_code(s: MergeStrategy) -> u64 {
    match s {
        MergeStrategy::Duplicated => 0,
        MergeStrategy::Deduplicated => 1,
        MergeStrategy::Deferred => 2,
    }
}

fn decode_strategy(code: u64) -> Result<MergeStrategy, String> {
    match code {
        0 => Ok(MergeStrategy::Duplicated),
        1 => Ok(MergeStrategy::Deduplicated),
        2 => Ok(MergeStrategy::Deferred),
        other => Err(format!("unknown merge strategy code {other}")),
    }
}

fn partitioner_code(p: PartitionerKind) -> u64 {
    match p {
        PartitionerKind::Hash => 0,
        PartitionerKind::Ldg => 1,
    }
}

fn decode_partitioner(code: u64) -> Result<PartitionerKind, String> {
    match code {
        0 => Ok(PartitionerKind::Hash),
        1 => Ok(PartitionerKind::Ldg),
        other => Err(format!("unknown partitioner code {other}")),
    }
}

fn encode_run(checksum: u64, opts: &RunOptions) -> Vec<u64> {
    vec![
        checksum,
        u64::from(opts.partitions),
        strategy_code(opts.strategy),
        partitioner_code(opts.partitioner),
    ]
}

fn decode_run(words: &[u64]) -> Result<(u64, RunOptions), String> {
    let mut c = Cursor::new(words);
    let checksum = c.u()?;
    let partitions = u32::try_from(c.u()?).map_err(|_| "partition count overflows u32")?;
    if partitions == 0 {
        return Err("partition count must be at least 1".into());
    }
    let strategy = decode_strategy(c.u()?)?;
    let partitioner = decode_partitioner(c.u()?)?;
    Ok((checksum, RunOptions { partitions, strategy, partitioner }))
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

/// Schedules concurrent runs under the service's global memory cap: a run
/// blocks in [`admit`](Self::admit) until the sum of admitted per-run
/// estimates (each capped at the budget itself, so a single oversized run
/// degrades to *exclusive* rather than *impossible*) fits under
/// `memory_cap_longs`. Dropping the returned [`AdmissionPermit`] — normal
/// completion, failure, or cancellation — releases the budget and wakes
/// every waiter.
#[derive(Debug)]
pub struct AdmissionController {
    cap: u64,
    state: Mutex<AdmissionState>,
    available: Condvar,
}

#[derive(Debug, Default)]
struct AdmissionState {
    admitted: u64,
    peak: u64,
}

/// One admitted run's reservation; releases on drop.
#[derive(Debug)]
pub struct AdmissionPermit {
    longs: u64,
    controller: Arc<AdmissionController>,
}

impl AdmissionController {
    /// A controller with `cap` Longs of global budget.
    pub fn new(cap: u64) -> Self {
        AdmissionController {
            cap: cap.max(1),
            state: Mutex::new(AdmissionState::default()),
            available: Condvar::new(),
        }
    }

    /// Blocks until `estimate` Longs (capped at the global budget) fit under
    /// the cap alongside everything already admitted, then reserves them.
    ///
    /// # Errors
    /// [`EulerError::Cancelled`] once `cancel` fires while waiting.
    pub fn admit(
        self: &Arc<Self>,
        estimate: u64,
        cancel: &CancelToken,
    ) -> Result<AdmissionPermit, EulerError> {
        let ask = estimate.clamp(1, self.cap);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if cancel.is_cancelled() {
                return Err(EulerError::Cancelled);
            }
            if state.admitted + ask <= self.cap {
                break;
            }
            let (guard, _) = self
                .available
                .wait_timeout(state, Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        state.admitted += ask;
        state.peak = state.peak.max(state.admitted);
        Ok(AdmissionPermit { longs: ask, controller: Arc::clone(self) })
    }

    /// Longs currently admitted (the instantaneous budget in use).
    pub fn admitted_longs(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).admitted
    }

    /// High-water mark of [`admitted_longs`](Self::admitted_longs) — by
    /// construction never above the cap.
    pub fn peak_admitted_longs(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).peak
    }
}

impl AdmissionPermit {
    /// Longs this permit reserves.
    pub fn longs(&self) -> u64 {
        self.longs
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut state = self.controller.state.lock().unwrap_or_else(|e| e.into_inner());
        state.admitted = state.admitted.saturating_sub(self.longs);
        drop(state);
        self.controller.available.notify_all();
    }
}

/// Estimates a run's peak-resident Longs from the §5 analytical model over
/// a synthetic per-level trace: a balanced cut leaves half the edges remote
/// at level 0, and each merge level localises half the surviving cut. The
/// per-level totals run through [`model_series`] under the requested
/// strategy; the estimate is the maximum cumulative level.
pub fn estimate_run_longs(
    vertices: u64,
    edges: u64,
    partitions: u32,
    strategy: MergeStrategy,
) -> u64 {
    let mut remote = if partitions <= 1 { 0 } else { edges / 2 };
    let mut local = edges - remote;
    let mut trace = Vec::new();
    for level in 0..64u32 {
        trace.push(LevelTrace {
            level,
            partitions: vec![PartitionLevelState {
                vertices,
                local_edges: local,
                remote_edges: remote,
                remote_needed_now: remote.div_ceil(2),
            }],
        });
        if remote == 0 {
            break;
        }
        local += remote.div_ceil(2);
        remote /= 2;
    }
    model_series(&trace, strategy)
        .cumulative
        .into_iter()
        .max()
        .unwrap_or(vertices + 3 * edges)
        .max(1)
}

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

/// Configuration of [`EulerService::bind`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Global memory cap in Longs: the sum of admitted per-run estimates
    /// never exceeds this.
    pub memory_cap_longs: u64,
    /// Connection-serving worker threads (each serves one client connection
    /// at a time; runs spawn their own compute thread).
    pub workers: usize,
    /// Per-run fragment spill budget in Longs — the enforcement lever: every
    /// service run executes under
    /// [`EulerConfig::fragment_memory_budget`], so fragment memory above
    /// this pages to disk instead of growing the resident set.
    pub fragment_budget_longs: u64,
    /// Circuit steps per [`frame_kind::CHUNK`] frame.
    pub chunk_steps: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            memory_cap_longs: 64 << 20,
            workers: 4,
            fragment_budget_longs: 1 << 16,
            chunk_steps: 512,
        }
    }
}

/// A point-in-time snapshot of service accounting, served over
/// [`frame_kind::STATS`] and from [`EulerService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// The configured global budget.
    pub memory_cap_longs: u64,
    /// Longs admitted right now.
    pub admitted_longs: u64,
    /// High-water mark of admitted Longs (never above the cap).
    pub peak_admitted_longs: u64,
    /// Pipeline runs actually executed (cache misses).
    pub runs_executed: u64,
    /// Requests served from the circuit cache without a pipeline run.
    pub runs_cached: u64,
    /// Runs cancelled before completion (explicit frame, disconnect, or
    /// shutdown).
    pub runs_cancelled: u64,
    /// Distinct graphs registered.
    pub graphs_registered: u64,
}

impl ServiceStats {
    fn encode(&self) -> Vec<u64> {
        vec![
            self.memory_cap_longs,
            self.admitted_longs,
            self.peak_admitted_longs,
            self.runs_executed,
            self.runs_cached,
            self.runs_cancelled,
            self.graphs_registered,
        ]
    }

    fn decode(words: &[u64]) -> Result<Self, String> {
        let mut c = Cursor::new(words);
        Ok(ServiceStats {
            memory_cap_longs: c.u()?,
            admitted_longs: c.u()?,
            peak_admitted_longs: c.u()?,
            runs_executed: c.u()?,
            runs_cached: c.u()?,
            runs_cancelled: c.u()?,
            graphs_registered: c.u()?,
        })
    }
}

/// Per-run accounting streamed back in the [`frame_kind::REPORT`] frame of
/// a freshly computed (non-cached) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Merge-tree supersteps executed.
    pub supersteps: u32,
    /// Longs shipped between partitions across all merges.
    pub transfer_longs: u64,
    /// Peak resident Longs of the run's fragment store.
    pub peak_resident_longs: u64,
    /// Longs the admission controller reserved for this run.
    pub estimated_longs: u64,
    /// Measured peak Longs (partition states + fragment residency) used to
    /// calibrate later estimates.
    pub measured_longs: u64,
}

impl RunSummary {
    fn encode(&self) -> Vec<u64> {
        vec![
            u64::from(self.supersteps),
            self.transfer_longs,
            self.peak_resident_longs,
            self.estimated_longs,
            self.measured_longs,
        ]
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, String> {
        Ok(RunSummary {
            supersteps: c.u()? as u32,
            transfer_longs: c.u()?,
            peak_resident_longs: c.u()?,
            estimated_longs: c.u()?,
            measured_longs: c.u()?,
        })
    }
}

type CacheKey = (u64, RunOptions);

struct ServiceInner {
    config: ServiceConfig,
    registry: GraphRegistry,
    admission: Arc<AdmissionController>,
    cache: Mutex<HashMap<CacheKey, Arc<CircuitResult>>>,
    /// EWMA of measured-peak / raw-estimate, clamped to `[0.25, 4.0]`.
    calibration: Mutex<f64>,
    runs_executed: AtomicU64,
    runs_cached: AtomicU64,
    runs_cancelled: AtomicU64,
    shutdown: AtomicBool,
}

impl ServiceInner {
    fn new(config: ServiceConfig) -> Self {
        ServiceInner {
            admission: Arc::new(AdmissionController::new(config.memory_cap_longs)),
            config,
            registry: GraphRegistry::new(),
            cache: Mutex::new(HashMap::new()),
            calibration: Mutex::new(1.0),
            runs_executed: AtomicU64::new(0),
            runs_cached: AtomicU64::new(0),
            runs_cancelled: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    fn stats(&self) -> ServiceStats {
        ServiceStats {
            memory_cap_longs: self.config.memory_cap_longs,
            admitted_longs: self.admission.admitted_longs(),
            peak_admitted_longs: self.admission.peak_admitted_longs(),
            runs_executed: self.runs_executed.load(Ordering::Relaxed),
            runs_cached: self.runs_cached.load(Ordering::Relaxed),
            runs_cancelled: self.runs_cancelled.load(Ordering::Relaxed),
            graphs_registered: self.registry.len() as u64,
        }
    }

    fn cached(&self, key: &CacheKey) -> Option<Arc<CircuitResult>> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).get(key).cloned()
    }

    fn cache_put(&self, key: CacheKey, circuit: Arc<CircuitResult>) {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).insert(key, circuit);
    }

    /// Scales a raw model estimate by the learned calibration ratio and
    /// adds the per-run spill budget (the fragment share is enforced, not
    /// estimated).
    fn calibrated(&self, raw: u64) -> u64 {
        let ratio = *self.calibration.lock().unwrap_or_else(|e| e.into_inner());
        (raw as f64 * ratio).ceil() as u64 + self.config.fragment_budget_longs
    }

    /// Feeds a finished run's measured peak back into the calibration EWMA.
    fn note_measured(&self, raw_estimate: u64, measured: u64) {
        if raw_estimate == 0 {
            return;
        }
        let observed = (measured as f64 / raw_estimate as f64).clamp(0.25, 4.0);
        let mut ratio = self.calibration.lock().unwrap_or_else(|e| e.into_inner());
        *ratio = (0.5 * *ratio + 0.5 * observed).clamp(0.25, 4.0);
    }
}

/// A cheap, clonable handle onto a running [`EulerService`]: statistics and
/// shutdown signalling from any thread.
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
}

impl ServiceHandle {
    /// Current service accounting.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Asks the service to stop: in-flight runs are cancelled, serving
    /// threads drain. [`EulerService::shutdown`] joins them.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A running Euler circuit server: a TCP listener plus a bounded worker
/// pool, serving the [`frame_kind`] protocol until
/// [`shutdown`](Self::shutdown).
pub struct EulerService {
    inner: Arc<ServiceInner>,
    endpoint: String,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl EulerService {
    /// Binds a loopback TCP listener and starts the accept loop plus
    /// `config.workers` serving threads.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the listener cannot bind, or a
    /// thread-spawn failure as [`ServiceError::Protocol`].
    pub fn bind(config: ServiceConfig) -> Result<EulerService, ServiceError> {
        let listener = TcpTransport.listen()?;
        let endpoint = listener.endpoint();
        let inner = Arc::new(ServiceInner::new(config));
        let (conn_tx, conn_rx) = mpsc::channel::<Box<dyn Connection>>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let spawn_err = |e: std::io::Error| ServiceError::Protocol(format!("spawn: {e}"));

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("euler-serve-accept".into())
                    .spawn(move || {
                        while !inner.shutdown.load(Ordering::Relaxed) {
                            match listener.accept(Duration::from_millis(50)) {
                                Ok(conn) => {
                                    if conn_tx.send(conn).is_err() {
                                        return;
                                    }
                                }
                                Err(FrameError::Timeout) => {}
                                Err(_) => return,
                            }
                        }
                    })
                    .map_err(spawn_err)?,
            );
        }
        for w in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            let conn_rx = Arc::clone(&conn_rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("euler-serve-{w}"))
                    .spawn(move || loop {
                        if inner.shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        let next = conn_rx
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .recv_timeout(Duration::from_millis(50));
                        match next {
                            Ok(conn) => serve_connection(&inner, conn.as_ref()),
                            Err(mpsc::RecvTimeoutError::Timeout) => {}
                            Err(mpsc::RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .map_err(spawn_err)?,
            );
        }
        Ok(EulerService { inner, endpoint, threads })
    }

    /// The endpoint clients connect to (`tcp:127.0.0.1:<port>`).
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// A clonable handle for statistics and shutdown signalling.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { inner: Arc::clone(&self.inner) }
    }

    /// Current service accounting.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Stops serving: cancels in-flight runs, drains the worker pool, joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EulerService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Server-side request handling.
// ---------------------------------------------------------------------------

fn send_error(conn: &dyn Connection, code: u64, message: &str) -> Result<(), FrameError> {
    let mut words = vec![code];
    push_str(&mut words, message);
    conn.send(frame_kind::ERROR, &words_to_bytes(&words))
}

/// Serves one client connection to completion. Payload-level failures are
/// answered with [`frame_kind::ERROR`] and the connection keeps serving;
/// frame-level failures (the byte stream is desynchronized) close it.
fn serve_connection(inner: &Arc<ServiceInner>, conn: &dyn Connection) {
    loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let (kind, payload) = match conn.recv_timeout(Some(Duration::from_millis(50))) {
            Ok(frame) => frame,
            Err(FrameError::Timeout) => continue,
            Err(_) => return,
        };
        let outcome = match kind {
            frame_kind::REGISTER => handle_register(inner, conn, &payload),
            frame_kind::RUN => handle_run(inner, conn, &payload),
            frame_kind::STATS => {
                conn.send(frame_kind::STATS_REPLY, &words_to_bytes(&inner.stats().encode()))
            }
            // CANCEL with no run in flight is an idempotent no-op.
            frame_kind::CANCEL => conn.send(frame_kind::CANCELLED, &[]),
            other => {
                send_error(conn, error_code::BAD_REQUEST, &format!("unknown frame kind {other:#x}"))
            }
        };
        if outcome.is_err() {
            return;
        }
    }
}

fn handle_register(
    inner: &Arc<ServiceInner>,
    conn: &dyn Connection,
    payload: &[u8],
) -> Result<(), FrameError> {
    let path = match bytes_to_words(payload).and_then(|w| read_str(&mut Cursor::new(&w))) {
        Ok(path) => path,
        Err(e) => return send_error(conn, error_code::BAD_REQUEST, &e),
    };
    match inner.registry.register(&path) {
        Ok(graph) => conn.send(
            frame_kind::REGISTERED,
            &words_to_bytes(&[graph.checksum, graph.num_vertices(), graph.num_edges()]),
        ),
        Err(e) => send_error(conn, error_code::REGISTER_FAILED, &e.to_string()),
    }
}

enum ComputeEvent {
    Admitted { longs: u64 },
    Finished(Box<Result<(Arc<CircuitResult>, RunSummary), EulerError>>),
}

fn handle_run(
    inner: &Arc<ServiceInner>,
    conn: &dyn Connection,
    payload: &[u8],
) -> Result<(), FrameError> {
    let (checksum, opts) = match bytes_to_words(payload).and_then(|w| decode_run(&w)) {
        Ok(req) => req,
        Err(e) => return send_error(conn, error_code::BAD_REQUEST, &e),
    };
    let Some(graph) = inner.registry.get(checksum) else {
        return send_error(
            conn,
            error_code::UNKNOWN_GRAPH,
            &format!("no registered graph has checksum {checksum:#018x}"),
        );
    };
    let key: CacheKey = (checksum, opts);
    if let Some(circuit) = inner.cached(&key) {
        inner.runs_cached.fetch_add(1, Ordering::Relaxed);
        conn.send(frame_kind::ACCEPTED, &words_to_bytes(&[0, 1]))?;
        return stream_result(conn, &circuit, inner.config.chunk_steps);
    }

    let token = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    {
        let inner = Arc::clone(inner);
        let token = token.clone();
        std::thread::spawn(move || compute_run(&inner, &graph, opts, key, &token, &tx));
    }

    // Supervise: relay admission/progress to the client, watch for CANCEL
    // frames and disconnects, and cancel on service shutdown. A dead client
    // cancels the run but the loop still drains the compute thread so the
    // permit's release is observed before this handler returns.
    let mut client_gone = false;
    let mut note_client_gone = false;
    let mut last_progress = (0u32, 0u32);
    let finished = loop {
        if inner.shutdown.load(Ordering::Relaxed) {
            token.cancel();
        }
        match rx.recv_timeout(Duration::from_millis(2)) {
            Ok(ComputeEvent::Admitted { longs }) => {
                if !client_gone
                    && conn.send(frame_kind::ACCEPTED, &words_to_bytes(&[longs, 0])).is_err()
                {
                    client_gone = true;
                }
            }
            Ok(ComputeEvent::Finished(result)) => break *result,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(EulerError::Distributed("compute thread exited without a result".into()))
            }
        }
        let progress = token.progress();
        if !client_gone && progress != last_progress && progress.1 > 0 {
            last_progress = progress;
            let words = [u64::from(progress.0), u64::from(progress.1)];
            if conn.send(frame_kind::PROGRESS, &words_to_bytes(&words)).is_err() {
                client_gone = true;
            }
        }
        if !client_gone {
            match conn.recv_timeout(Some(Duration::from_millis(1))) {
                Ok((frame_kind::CANCEL, _)) => token.cancel(),
                Ok(_) => {}
                Err(FrameError::Timeout) => {}
                Err(_) => client_gone = true,
            }
        }
        if client_gone && !note_client_gone {
            note_client_gone = true;
            token.cancel();
        }
    };
    if client_gone {
        return Err(FrameError::Closed);
    }
    match finished {
        Ok((circuit, summary)) => {
            conn.send(frame_kind::REPORT, &words_to_bytes(&summary.encode()))?;
            stream_result(conn, &circuit, inner.config.chunk_steps)
        }
        Err(EulerError::Cancelled) => conn.send(frame_kind::CANCELLED, &[]),
        Err(e) => send_error(conn, error_code::RUN_FAILED, &e.to_string()),
    }
}

/// The compute half of a run, on its own thread: admit under the budget,
/// run the pipeline cancellably, calibrate, cache, release the permit
/// *before* the handler streams the circuit (streaming needs no budget).
fn compute_run(
    inner: &Arc<ServiceInner>,
    graph: &RegisteredGraph,
    opts: RunOptions,
    key: CacheKey,
    token: &CancelToken,
    tx: &mpsc::Sender<ComputeEvent>,
) {
    let raw = estimate_run_longs(graph.num_vertices(), graph.num_edges(), opts.partitions, opts.strategy);
    let estimate = inner.calibrated(raw);
    let permit = match inner.admission.admit(estimate, token) {
        Ok(permit) => permit,
        Err(_) => {
            inner.runs_cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(ComputeEvent::Finished(Box::new(Err(EulerError::Cancelled))));
            return;
        }
    };
    let _ = tx.send(ComputeEvent::Admitted { longs: permit.longs() });
    let result = match compute_circuit(graph, &opts, inner.config.fragment_budget_longs, token) {
        Ok((circuit, report)) => {
            let measured = report.cumulative_memory_by_level().into_iter().max().unwrap_or(0)
                + report.fragment_stats.peak_resident_longs;
            inner.note_measured(raw, measured);
            let summary = RunSummary {
                supersteps: report.supersteps,
                transfer_longs: report.total_transfer_longs,
                peak_resident_longs: report.fragment_stats.peak_resident_longs,
                estimated_longs: permit.longs(),
                measured_longs: measured,
            };
            let circuit = Arc::new(circuit);
            inner.cache_put(key, Arc::clone(&circuit));
            inner.runs_executed.fetch_add(1, Ordering::Relaxed);
            Ok((circuit, summary))
        }
        Err(EulerError::Cancelled) => {
            inner.runs_cancelled.fetch_add(1, Ordering::Relaxed);
            Err(EulerError::Cancelled)
        }
        Err(e) => Err(e),
    };
    drop(permit);
    let _ = tx.send(ComputeEvent::Finished(Box::new(result)));
}

/// One pipeline run over a registered graph: streaming-partition the mapped
/// CSR, slice the partition view, walk the merge tree cancellably. The
/// streaming partitioners produce the same assignment as their in-memory
/// counterparts by construction, and the merge-tree walk is deterministic
/// for every thread count, so the result is bit-identical to the library
/// path ([`crate::EulerPipeline`]) on the same graph and options.
fn compute_circuit(
    graph: &RegisteredGraph,
    opts: &RunOptions,
    fragment_budget_longs: u64,
    token: &CancelToken,
) -> Result<(CircuitResult, RunReport), EulerError> {
    let mut stream = CsrFileEdgeStream::new(&graph.csr);
    let assignment = match opts.partitioner {
        PartitionerKind::Hash => {
            HashPartitioner::new(opts.partitions).partition_stream(&mut stream)?
        }
        PartitionerKind::Ldg => LdgPartitioner::new(opts.partitions).partition_stream(&mut stream)?,
    };
    let pg = graph.csr.partitioned(&assignment)?;
    let config = EulerConfig {
        merge_strategy: opts.strategy,
        fragment_memory_budget: Some(fragment_budget_longs),
        ..EulerConfig::default()
    };
    // IntraPartition keeps the circuit composition bit-identical to a
    // sequential run at any thread count, so a cached circuit and a fresh
    // recomputation of the same (graph, options) key are the same bytes.
    let backend = InProcessBackend::new().with_parallelism(Parallelism::IntraPartition);
    run_on_partitioned_cancellable(&pg, &config, &backend, token)
}

fn stream_result(
    conn: &dyn Connection,
    result: &CircuitResult,
    chunk_steps: usize,
) -> Result<(), FrameError> {
    let chunk_steps = chunk_steps.max(1);
    for (circuit_idx, circuit) in result.circuits.iter().enumerate() {
        for (chunk_idx, chunk) in circuit.chunks(chunk_steps).enumerate() {
            let mut words = Vec::with_capacity(3 + 3 * chunk.len());
            words.push(circuit_idx as u64);
            words.push((chunk_idx * chunk_steps) as u64);
            words.push(chunk.len() as u64);
            for step in chunk {
                words.extend_from_slice(&[step.edge.0, step.from.0, step.to.0]);
            }
            conn.send(frame_kind::CHUNK, &words_to_bytes(&words))?;
        }
    }
    conn.send(
        frame_kind::DONE,
        &words_to_bytes(&[result.circuits.len() as u64, result.total_edges()]),
    )
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// Failures of the client half of the service protocol.
#[derive(Debug)]
pub enum ServiceError {
    /// The transport failed (connect, frame codec, timeout, closed peer).
    Transport(FrameError),
    /// The server replied with a typed [`frame_kind::ERROR`] frame.
    Remote {
        /// An [`error_code`] constant.
        code: u64,
        /// Human-readable failure description from the server.
        message: String,
    },
    /// The peer broke the protocol (unexpected frame kind, bad payload).
    Protocol(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Transport(e) => write!(f, "service transport error: {e}"),
            ServiceError::Remote { code, message } => {
                write!(f, "service error {code}: {message}")
            }
            ServiceError::Protocol(msg) => write!(f, "service protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> Self {
        ServiceError::Transport(e)
    }
}

/// Identity and shape of a registered graph, from
/// [`ServiceClient::register`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    /// The content checksum — the handle every [`RunOptions`] run uses.
    pub checksum: u64,
    /// Vertex count.
    pub num_vertices: u64,
    /// Edge count.
    pub num_edges: u64,
}

/// One streamed event of an in-flight run, from
/// [`ServiceClient::next_event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunEvent {
    /// The run was admitted under the budget (or served from cache when
    /// `cached` — then `admitted_longs` is 0).
    Accepted {
        /// Longs the admission controller reserved.
        admitted_longs: u64,
        /// Whether the circuit comes from the cache without a pipeline run.
        cached: bool,
    },
    /// Coarse progress: merge-tree supersteps done out of total.
    Progress {
        /// Steps completed.
        done: u32,
        /// Total steps (supersteps + the Phase-3 unroll).
        total: u32,
    },
    /// Run accounting, sent once before the chunks of a fresh computation.
    Report(RunSummary),
    /// A slice of circuit steps.
    Chunk {
        /// Which circuit of the result this slice belongs to.
        circuit: usize,
        /// Step offset of the slice within that circuit.
        base: u64,
        /// The steps.
        steps: Vec<CircuitStep>,
    },
    /// The run finished; all chunks have been delivered.
    Done {
        /// Number of circuits in the result.
        num_circuits: u64,
        /// Total steps across all circuits.
        total_edges: u64,
    },
    /// The run was cancelled before completion.
    Cancelled,
}

/// A fully assembled run outcome, from the convenience driver
/// [`ServiceClient::run`].
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// The circuits, assembled from the streamed chunks (empty when
    /// cancelled).
    pub circuits: Vec<Vec<CircuitStep>>,
    /// Longs the admission controller reserved for this run.
    pub admitted_longs: u64,
    /// Whether the result came from the circuit cache.
    pub cached: bool,
    /// Whether the run was cancelled instead of completing.
    pub cancelled: bool,
    /// The run's accounting (absent for cached or cancelled runs).
    pub summary: Option<RunSummary>,
}

fn decode_event(kind: u16, words: &[u64]) -> Result<RunEvent, ServiceError> {
    let mut c = Cursor::new(words);
    let event = match kind {
        frame_kind::ACCEPTED => {
            RunEvent::Accepted { admitted_longs: c.u()?, cached: c.u()? != 0 }
        }
        frame_kind::PROGRESS => {
            RunEvent::Progress { done: c.u()? as u32, total: c.u()? as u32 }
        }
        frame_kind::REPORT => RunEvent::Report(RunSummary::decode(&mut c)?),
        frame_kind::CHUNK => {
            let circuit = c.u()? as usize;
            let base = c.u()?;
            let count = c.u()? as usize;
            let mut steps = Vec::with_capacity(c.cap(count.saturating_mul(3)) / 3);
            for _ in 0..count {
                let &[edge, from, to] = c.take(3)? else {
                    return Err(ServiceError::Protocol("chunk step: expected 3 words".into()));
                };
                steps.push(CircuitStep {
                    edge: EdgeId(edge),
                    from: VertexId(from),
                    to: VertexId(to),
                });
            }
            RunEvent::Chunk { circuit, base, steps }
        }
        frame_kind::DONE => RunEvent::Done { num_circuits: c.u()?, total_edges: c.u()? },
        frame_kind::CANCELLED => RunEvent::Cancelled,
        frame_kind::ERROR => return Err(decode_remote_error(&mut c)),
        other => {
            return Err(ServiceError::Protocol(format!("unexpected frame kind {other:#x}")))
        }
    };
    Ok(event)
}

fn decode_remote_error(c: &mut Cursor<'_>) -> ServiceError {
    let code = c.u().unwrap_or(0);
    let message = read_str(c).unwrap_or_else(|_| "<unreadable error message>".into());
    ServiceError::Remote { code, message }
}

impl From<String> for ServiceError {
    fn from(msg: String) -> Self {
        ServiceError::Protocol(msg)
    }
}

/// A blocking client of one [`EulerService`] connection.
///
/// One request is in flight at a time per client; open several clients for
/// concurrency (the server's worker pool serves them in parallel).
pub struct ServiceClient {
    conn: Box<dyn Connection>,
    recv_timeout: Duration,
}

impl ServiceClient {
    /// Connects to a service endpoint (`tcp:127.0.0.1:<port>`, as returned
    /// by [`EulerService::endpoint`]).
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the endpoint is unreachable.
    pub fn connect(endpoint: &str) -> Result<ServiceClient, ServiceError> {
        let conn = connect_endpoint(endpoint, 20, Duration::from_millis(10))?;
        Ok(ServiceClient { conn, recv_timeout: Duration::from_secs(120) })
    }

    /// Overrides the per-reply receive timeout (default two minutes).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> ServiceClient {
        self.recv_timeout = timeout;
        self
    }

    fn recv(&self) -> Result<(u16, Vec<u64>), ServiceError> {
        let (kind, bytes) = self.conn.recv_timeout(Some(self.recv_timeout))?;
        Ok((kind, bytes_to_words(&bytes)?))
    }

    /// Registers the `.ecsr` file at `path` (a path on the *server's*
    /// filesystem) and returns its identity.
    ///
    /// # Errors
    /// [`ServiceError::Remote`] with [`error_code::REGISTER_FAILED`] when
    /// the server cannot open or verify the file.
    pub fn register(&self, path: &str) -> Result<GraphInfo, ServiceError> {
        let mut words = Vec::new();
        push_str(&mut words, path);
        self.conn.send(frame_kind::REGISTER, &words_to_bytes(&words))?;
        let (kind, words) = self.recv()?;
        let mut c = Cursor::new(&words);
        match kind {
            frame_kind::REGISTERED => Ok(GraphInfo {
                checksum: c.u()?,
                num_vertices: c.u()?,
                num_edges: c.u()?,
            }),
            frame_kind::ERROR => Err(decode_remote_error(&mut c)),
            other => Err(ServiceError::Protocol(format!(
                "expected REGISTERED, got frame kind {other:#x}"
            ))),
        }
    }

    /// Submits a run without waiting for it; follow with
    /// [`next_event`](Self::next_event) (and optionally
    /// [`cancel`](Self::cancel)).
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the request cannot be sent.
    pub fn start_run(&self, checksum: u64, opts: RunOptions) -> Result<(), ServiceError> {
        self.conn.send(frame_kind::RUN, &words_to_bytes(&encode_run(checksum, &opts)))?;
        Ok(())
    }

    /// Receives the next streamed event of the in-flight run.
    ///
    /// # Errors
    /// [`ServiceError::Remote`] for typed server failures,
    /// [`ServiceError::Transport`] for transport failures/timeouts.
    pub fn next_event(&self) -> Result<RunEvent, ServiceError> {
        let (kind, words) = self.recv()?;
        decode_event(kind, &words)
    }

    /// Asks the server to cancel the in-flight run. The stream then ends
    /// with [`RunEvent::Cancelled`] (unless the run already finished, in
    /// which case its chunks and [`RunEvent::Done`] arrive first, followed
    /// by the cancel acknowledgement for the idle connection).
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the request cannot be sent.
    pub fn cancel(&self) -> Result<(), ServiceError> {
        self.conn.send(frame_kind::CANCEL, &[])?;
        Ok(())
    }

    /// Convenience driver: submits a run and assembles the streamed chunks
    /// into a [`RunOutcome`].
    ///
    /// # Errors
    /// Any [`ServiceError`] surfaced while streaming.
    pub fn run(&self, checksum: u64, opts: RunOptions) -> Result<RunOutcome, ServiceError> {
        self.start_run(checksum, opts)?;
        let mut outcome = RunOutcome::default();
        loop {
            match self.next_event()? {
                RunEvent::Accepted { admitted_longs, cached } => {
                    outcome.admitted_longs = admitted_longs;
                    outcome.cached = cached;
                }
                RunEvent::Progress { .. } => {}
                RunEvent::Report(summary) => outcome.summary = Some(summary),
                RunEvent::Chunk { circuit, steps, .. } => {
                    if outcome.circuits.len() <= circuit {
                        outcome.circuits.resize_with(circuit + 1, Vec::new);
                    }
                    if let Some(target) = outcome.circuits.get_mut(circuit) {
                        target.extend(steps);
                    }
                }
                RunEvent::Done { .. } => return Ok(outcome),
                RunEvent::Cancelled => {
                    outcome.cancelled = true;
                    return Ok(outcome);
                }
            }
        }
    }

    /// Fetches the server's current accounting.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] or [`ServiceError::Protocol`] when the
    /// reply cannot be obtained or decoded.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        self.conn.send(frame_kind::STATS, &[])?;
        let (kind, words) = self.recv()?;
        match kind {
            frame_kind::STATS_REPLY => Ok(ServiceStats::decode(&words)?),
            frame_kind::ERROR => Err(decode_remote_error(&mut Cursor::new(&words))),
            other => Err(ServiceError::Protocol(format!(
                "expected STATS_REPLY, got frame kind {other:#x}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_options_roundtrip_through_the_wire_encoding() {
        for opts in [
            RunOptions::default(),
            RunOptions { partitions: 32, strategy: MergeStrategy::Deferred, partitioner: PartitionerKind::Ldg },
            RunOptions { partitions: 1, strategy: MergeStrategy::Deduplicated, partitioner: PartitionerKind::Hash },
        ] {
            let words = encode_run(0xDEAD_BEEF, &opts);
            let (checksum, back) = decode_run(&words).unwrap();
            assert_eq!(checksum, 0xDEAD_BEEF);
            assert_eq!(back, opts);
        }
    }

    #[test]
    fn malformed_run_payloads_yield_typed_errors_not_panics() {
        assert!(decode_run(&[]).is_err());
        assert!(decode_run(&[1, 2]).is_err());
        assert!(decode_run(&[9, 0, 0, 0]).is_err(), "zero partitions rejected");
        assert!(decode_run(&[9, 4, 99, 0]).is_err(), "unknown strategy rejected");
        assert!(decode_run(&[9, 4, 0, 99]).is_err(), "unknown partitioner rejected");
        assert!(decode_run(&[9, u64::MAX, 0, 0]).is_err(), "partition overflow rejected");
    }

    #[test]
    fn event_decoding_survives_fuzzed_words() {
        // A deterministic xorshift fuzz over every response kind: decoding
        // must return, never panic, whatever the payload bytes are.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for kinds in [
            frame_kind::ACCEPTED,
            frame_kind::PROGRESS,
            frame_kind::REPORT,
            frame_kind::CHUNK,
            frame_kind::DONE,
            frame_kind::CANCELLED,
            frame_kind::ERROR,
            0x7777,
        ] {
            for len in 0..16 {
                let words: Vec<u64> = (0..len).map(|_| rand()).collect();
                let _ = decode_event(kinds, &words);
            }
        }
        // Odd byte payloads fail word alignment with a typed error.
        assert!(bytes_to_words(&[1, 2, 3]).is_err());
    }

    #[test]
    fn strings_roundtrip_and_reject_truncation() {
        let mut words = Vec::new();
        push_str(&mut words, "graphs/torus.ecsr");
        let back = read_str(&mut Cursor::new(&words)).unwrap();
        assert_eq!(back, "graphs/torus.ecsr");
        // Declared length beyond the payload is a typed error.
        let truncated = [100u64, 0x6162_6364];
        assert!(read_str(&mut Cursor::new(&truncated)).is_err());
    }

    #[test]
    fn estimate_scales_with_edges_and_drops_with_heuristics() {
        let base = estimate_run_longs(1_000, 10_000, 8, MergeStrategy::Duplicated);
        let bigger = estimate_run_longs(1_000, 40_000, 8, MergeStrategy::Duplicated);
        assert!(bigger > base);
        let deferred = estimate_run_longs(1_000, 10_000, 8, MergeStrategy::Deferred);
        assert!(deferred <= base, "§5 heuristics never increase the estimate");
        // One partition has no remote edges: the estimate is the local state.
        let single = estimate_run_longs(1_000, 10_000, 1, MergeStrategy::Duplicated);
        assert_eq!(single, 1_000 + 3 * 10_000);
        assert!(estimate_run_longs(0, 0, 4, MergeStrategy::Duplicated) >= 1);
    }

    #[test]
    fn admission_blocks_until_a_permit_releases_and_peak_respects_the_cap() {
        let ctl = Arc::new(AdmissionController::new(1_000));
        let token = CancelToken::new();
        let first = ctl.admit(600, &token).unwrap();
        assert_eq!(ctl.admitted_longs(), 600);
        // A second 600 must wait; release the first from another thread.
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            let token = CancelToken::new();
            let permit = ctl2.admit(600, &token).unwrap();
            (ctl2.admitted_longs(), permit.longs())
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(first);
        let (admitted_during, longs) = waiter.join().unwrap();
        assert_eq!(longs, 600);
        assert_eq!(admitted_during, 600, "only one 600 fits at a time");
        assert!(ctl.peak_admitted_longs() <= 1_000, "invariant: peak never exceeds cap");
        assert_eq!(ctl.admitted_longs(), 0, "all permits released");
    }

    #[test]
    fn admission_cancellation_unblocks_a_waiter() {
        let ctl = Arc::new(AdmissionController::new(100));
        let hold_token = CancelToken::new();
        let _hold = ctl.admit(100, &hold_token).unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert!(matches!(ctl.admit(100, &token), Err(EulerError::Cancelled)));
    }

    #[test]
    fn oversized_estimates_degrade_to_exclusive_not_impossible() {
        let ctl = Arc::new(AdmissionController::new(100));
        let token = CancelToken::new();
        let permit = ctl.admit(10_000, &token).unwrap();
        assert_eq!(permit.longs(), 100, "clamped to the whole budget");
        assert_eq!(ctl.admitted_longs(), 100);
    }

    #[test]
    fn stats_and_summary_roundtrip() {
        let stats = ServiceStats {
            memory_cap_longs: 1,
            admitted_longs: 2,
            peak_admitted_longs: 3,
            runs_executed: 4,
            runs_cached: 5,
            runs_cancelled: 6,
            graphs_registered: 7,
        };
        assert_eq!(ServiceStats::decode(&stats.encode()).unwrap(), stats);
        assert!(ServiceStats::decode(&[1, 2]).is_err());
        let summary = RunSummary {
            supersteps: 3,
            transfer_longs: 10,
            peak_resident_longs: 20,
            estimated_longs: 30,
            measured_longs: 40,
        };
        assert_eq!(RunSummary::decode(&mut Cursor::new(&summary.encode())).unwrap(), summary);
    }
}
