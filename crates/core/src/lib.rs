//! # euler-core
//!
//! The partition-centric distributed Euler circuit algorithm of Jaiswal &
//! Simmhan (IPDPSW 2019) — the primary contribution reproduced by this
//! workspace.
//!
//! The algorithm runs over a graph partitioned across machines and proceeds
//! in three phases, executed iteratively under a BSP model:
//!
//! * **Phase 1** ([`phase1`]): concurrently within every partition, find
//!   edge-disjoint maximal local *paths* between odd-degree boundary vertices
//!   and local *cycles* anchored at even-degree boundary or internal vertices,
//!   consuming every local edge. Each path is replaced by a single coarse
//!   "OB-pair" edge; cycles are recorded against their anchor vertex. The
//!   consumed edges are persisted to the fragment store (the paper's
//!   "persist to disk") so partition memory shrinks.
//! * **Phase 2** ([`phase2`], [`merge_tree`]): pair up partitions using a
//!   greedy maximal weighted matching over the partition meta-graph, merge
//!   each pair onto one machine (remote edges between them become local), and
//!   re-run Phase 1 — recursively, up a merge tree of height `⌈log n⌉`.
//! * **Phase 3** ([`phase3`]): unroll the fragments recorded at every level
//!   into the final Euler circuit, splicing cycles at pivot vertices and
//!   expanding coarse edges back into the paths they stand for.
//!
//! Section 5 of the paper proposes two memory heuristics — avoiding remote
//! edge duplication and deferring remote-edge transfer up the merge tree —
//! which it evaluates only analytically. Both are implemented here as
//! [`MergeStrategy`] options and also modelled analytically in
//! [`memory_model`] so the Fig.-8 comparison (current / ideal / proposed) can
//! be regenerated either way.
//!
//! The top-level entry point is the [`pipeline`] module's [`EulerPipeline`]:
//! a builder over a graph source, a partitioner, a merge strategy and an
//! [`ExecutionBackend`] — [`InProcessBackend`] (rayon-parallel across the
//! partitions of a level) or [`BspBackend`] (the same phases on the
//! `euler-bsp` engine with per-worker state, serialised transfers and
//! superstep statistics). Both backends execute through one shared
//! merge-tree walk ([`pipeline::run_with_backend`], whose `Graph`-free core
//! [`pipeline::run_on_partitioned`] also accepts partition views sliced
//! straight from memory-mapped `.ecsr` files) and produce one unified
//! [`RunReport`]. The pre-pipeline drivers (`find_euler_circuit`,
//! `run_partitioned`, `DistributedRunner`) went through a deprecation
//! release and are now removed; see the facade crate's migration table.

#![warn(missing_docs)]

pub mod cancel;
pub mod config;
pub mod distributed;
pub mod error;
pub mod fragment;
pub mod memory_model;
pub mod merge_strategy;
pub mod merge_tree;
pub mod pathmap;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod pipeline;
pub mod service;
pub mod state;
pub mod verify;

pub use cancel::CancelToken;
pub use config::EulerConfig;
pub use distributed::{default_worker_bin, worker_main};
pub use error::EulerError;
pub use fragment::{
    Fragment, FragmentId, FragmentKind, FragmentStore, FragmentStoreStats, SpillConfig, TourEdge,
};
pub use merge_strategy::MergeStrategy;
pub use merge_tree::{MergePair, MergeTree, MergeTreeNode};
pub use pathmap::PathMap;
pub use phase1::wstream::{default_chunk_edges, stream_phase1, WStreamOutcome, WStreamStats};
pub use phase1::{ArenaPool, Parallelism, Phase1Arena, Phase1Executor};
pub use phase3::{CircuitResult, CircuitStep};
pub use pipeline::{
    run_on_partitioned, run_on_partitioned_cancellable, run_with_backend, BspBackend,
    CircuitStage, EulerPipeline, EulerPipelineBuilder, ExecutionBackend, InProcessBackend,
    LevelOutcome, LevelPartitionReport, LevelWork, MergeStage, PartitionStage, PipelineRun,
    RunReport,
};
pub use service::{
    estimate_run_longs, AdmissionController, AdmissionPermit, EulerService, GraphInfo,
    PartitionerKind, RunEvent, RunOptions, RunOutcome, RunSummary, ServiceClient, ServiceConfig,
    ServiceError, ServiceHandle, ServiceStats,
};
pub use state::{VertexTypeCounts, WorkingPartition};
