//! Cooperative cancellation for pipeline runs.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between the thread
//! driving a run and whoever may want to stop it (a service handler noticing
//! a client disconnect, a Cancel frame, a shutdown). The pipeline checks the
//! token at its natural yield points — between merge-tree supersteps and
//! before the Phase-3 unroll — and returns [`EulerError::Cancelled`] instead
//! of finishing, so a cancelled run frees its memory within one superstep.
//!
//! The token also carries coarse progress (supersteps completed out of
//! total), which the service layer streams back to clients without touching
//! the run's internals.
//!
//! [`EulerError::Cancelled`]: crate::EulerError::Cancelled

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Shared cancellation flag plus coarse progress for one pipeline run.
///
/// Clones share state. All operations are lock-free and safe to call from
/// any thread; cancellation is *cooperative* — the run notices at the next
/// superstep boundary, not instantly.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

#[derive(Debug, Default)]
struct TokenState {
    cancelled: AtomicBool,
    steps_done: AtomicU32,
    steps_total: AtomicU32,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; the run observes it at its next
    /// check point and returns [`EulerError::Cancelled`].
    ///
    /// [`EulerError::Cancelled`]: crate::EulerError::Cancelled
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Progress as `(steps_done, steps_total)`. Total is `0` until the run
    /// has built its merge tree; afterwards it is the superstep count plus
    /// one for the Phase-3 unroll.
    pub fn progress(&self) -> (u32, u32) {
        (
            self.inner.steps_done.load(Ordering::Relaxed),
            self.inner.steps_total.load(Ordering::Relaxed),
        )
    }

    /// Errs with [`EulerError::Cancelled`] once the token is cancelled —
    /// the check the pipeline runs at each yield point.
    ///
    /// [`EulerError::Cancelled`]: crate::EulerError::Cancelled
    pub(crate) fn checkpoint(&self) -> Result<(), crate::EulerError> {
        if self.is_cancelled() {
            Err(crate::EulerError::Cancelled)
        } else {
            Ok(())
        }
    }

    pub(crate) fn set_total(&self, total: u32) {
        self.inner.steps_total.store(total, Ordering::Relaxed);
    }

    pub(crate) fn note_step_done(&self) {
        self.inner.steps_done.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state_and_progress_accumulates() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert_eq!(t.progress(), (0, 0));
        u.set_total(4);
        u.note_step_done();
        u.note_step_done();
        assert_eq!(t.progress(), (2, 4));
        assert!(t.checkpoint().is_ok());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.checkpoint(), Err(crate::EulerError::Cancelled)));
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
