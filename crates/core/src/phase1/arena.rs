//! Reusable Phase-1 scratch: the [`Phase1Arena`] and its checkout pool.
//!
//! Phase 1 runs once per partition per merge level; allocating its dense
//! traversal state (interning table, CSR incidence arena, cursors, bitset,
//! walk buffers) from scratch every time dominates the cost of small levels
//! and fragments the heap on large ones. A [`Phase1Arena`] owns every buffer
//! one Phase-1 execution needs — kernel state, host-side walk scratch, and
//! the wave-speculation scratch of the parallel walker — and is reloaded in
//! place for each run: lengths are rewritten, capacities only ever grow.
//!
//! Workers check arenas out of an [`ArenaPool`] (one arena per concurrently
//! executing partition) and return them afterwards, so the same buffers are
//! reused across merge levels regardless of which thread runs which
//! partition. [`run_phase1_with_arena`](super::run_phase1_with_arena) fully
//! re-initialises every array it reads, so a dirty arena can never leak
//! state between checkouts — `arena::tests` pins that with a deliberately
//! poisoned arena.
//!
//! The committed traversal state (`KernelState`: cursors, remaining
//! degrees, visited bitset) lives in relaxed atomics. Sequentially that
//! compiles to the same plain loads and stores as before; in the parallel
//! walker it lets speculation workers read the committed snapshot while the
//! committing thread stays the only writer (waves are separated by barriers,
//! which provide the cross-thread ordering).

use super::parallel::WaveScratch;
use super::splice::SpliceIndex;
use crate::fragment::TourEdge;
use crate::state::LocalEdge;
use euler_graph::{LocalIndex, LocalIndexBufs};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Committed dense traversal state over interned vertex slots — the arrays
/// behind [`super::Traversal`]. Rebuilt in place by [`KernelState::load`]
/// for every Phase-1 run; all capacities are retained.
#[derive(Default)]
pub(crate) struct KernelState {
    /// Interning table; slot order is ascending global vertex order.
    pub index: LocalIndex,
    /// Recycle bin for the previous index's allocations.
    index_bufs: LocalIndexBufs,
    /// Interned endpoints `[u, v]` of each edge slot.
    pub ends: Vec<[u32; 2]>,
    /// CSR offsets into `incidence`: vertex slot `s` owns
    /// `incidence[offsets[s] .. offsets[s + 1]]`.
    pub offsets: Vec<u32>,
    /// Incident edge slots, grouped by vertex, in edge insertion order
    /// (a self-loop appears twice under its vertex, as in the reference).
    pub incidence: Vec<u32>,
    /// Per-vertex absolute cursor into `incidence` (consumed prefix).
    pub cursor: Vec<AtomicU32>,
    /// Remaining (unvisited) local degree per vertex slot.
    pub remaining: Vec<AtomicU32>,
    /// One bit per edge slot.
    pub visited: Vec<AtomicU64>,
    /// Monotone scan cursor for "first unvisited edge" (step 3); visited
    /// bits are never cleared, so this never moves backwards.
    pub unvisited_scan: AtomicUsize,
}

impl KernelState {
    /// Rebuilds every array for `edges`, reusing all existing capacity.
    pub fn load(&mut self, edges: &[LocalEdge]) {
        let retired = std::mem::take(&mut self.index);
        retired.into_bufs(&mut self.index_bufs);
        self.index = LocalIndex::from_vertices_reusing(
            edges.iter().flat_map(|e| [e.u, e.v]),
            &mut self.index_bufs,
        );
        let n = self.index.len();

        self.ends.clear();
        self.ends.extend(edges.iter().map(|e| {
            [
                self.index.slot(e.u).expect("endpoint interned"),
                self.index.slot(e.v).expect("endpoint interned"),
            ]
        }));

        // Counting-sort CSR build (the `bucket_by_slot` idiom, inlined so the
        // offsets/incidence arenas are reused instead of reallocated).
        // Filling in edge order means each vertex sees its incident edges in
        // insertion order, and a self-loop contributes two entries.
        let incidences = edges.len() * 2;
        assert!(
            incidences < u32::MAX as usize,
            "CSR arena overflow: {incidences} incidences do not fit u32 indices"
        );
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &[u, v] in &self.ends {
            self.offsets[u as usize + 1] += 1;
            self.offsets[v as usize + 1] += 1;
        }
        for s in 0..n {
            self.offsets[s + 1] += self.offsets[s];
        }
        // Fill positions start at the row offsets; after the fill pass the
        // same values (row starts) seed the cursors.
        self.cursor.clear();
        self.cursor.extend(self.offsets[..n].iter().map(|&o| AtomicU32::new(o)));
        self.incidence.clear();
        self.incidence.resize(incidences, 0);
        for (i, &[u, v]) in self.ends.iter().enumerate() {
            for s in [u, v] {
                let fill = self.cursor[s as usize].get_mut();
                self.incidence[*fill as usize] = i as u32;
                *fill += 1;
            }
        }
        for (s, c) in self.cursor.iter_mut().enumerate() {
            *c.get_mut() = self.offsets[s];
        }

        // The unvisited degree starts as the full CSR row width.
        self.remaining.clear();
        self.remaining.extend(
            self.offsets.windows(2).map(|w| AtomicU32::new(w[1] - w[0])),
        );
        self.visited.clear();
        self.visited.resize_with(edges.len().div_ceil(64), AtomicU64::default);
        self.unvisited_scan.store(0, Relaxed);
    }
}

/// Host-side (committing-thread-only) walk scratch.
#[derive(Default)]
pub(crate) struct HostScratch {
    /// First pending fragment each vertex slot is visible in (`mergeInto`
    /// pivot lookup), [`super::NOT_VISIBLE`] when none.
    pub visible: Vec<u32>,
    /// Tour edges of the walk in progress.
    pub tour: Vec<TourEdge>,
    /// Visited vertex-slot sequence of the walk in progress.
    pub vslots: Vec<u32>,
    /// Step-1 start queue: slots with odd initial remaining degree.
    pub odd_slots: Vec<u32>,
    /// Step-2 start queue: boundary vertices' slots, ascending.
    pub boundary_slots: Vec<u32>,
    /// Splice-order index holding the pending fragments as linked tours
    /// (node arena + first-occurrence handles); reset per run.
    pub splice: SpliceIndex,
}

/// Reusable scratch for one Phase-1 execution: checked out of an
/// [`ArenaPool`] per worker, reloaded in place per partition, reused across
/// merge levels. See the [module docs](self) for the reuse contract.
#[derive(Default)]
pub struct Phase1Arena {
    pub(crate) kernel: KernelState,
    pub(crate) host: HostScratch,
    pub(crate) wave: WaveScratch,
}

/// Capacity snapshot of an arena's buffers, for asserting that reuse across
/// levels never shrinks or reallocates below a previously reached
/// working-set size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaCapacities {
    /// Capacity of the per-vertex arrays (cursor/remaining), in slots.
    pub vertex_slots: usize,
    /// Capacity of the per-edge arrays (`ends`), in edge slots.
    pub edge_slots: usize,
    /// Capacity of the CSR incidence arena, in entries.
    pub incidence: usize,
    /// Capacity of the visited bitset, in 64-bit words.
    pub visited_words: usize,
    /// Capacity of the interning table's vertex buffers, in entries.
    pub index_vertices: usize,
    /// Capacity of the walk tour buffer, in tour edges.
    pub tour: usize,
    /// Capacity of the splice-order index's tour-node arena, in nodes.
    pub splice_nodes: usize,
    /// Size of the splice-order index's per-slot handle arrays, in slots.
    pub splice_slots: usize,
}

impl ArenaCapacities {
    /// True when every buffer of `self` is at least as large as `other`'s.
    pub fn covers(&self, other: &ArenaCapacities) -> bool {
        self.vertex_slots >= other.vertex_slots
            && self.edge_slots >= other.edge_slots
            && self.incidence >= other.incidence
            && self.visited_words >= other.visited_words
            && self.index_vertices >= other.index_vertices
            && self.tour >= other.tour
            && self.splice_nodes >= other.splice_nodes
            && self.splice_slots >= other.splice_slots
    }
}

impl Phase1Arena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current buffer capacities (never shrink across runs).
    pub fn capacities(&self) -> ArenaCapacities {
        ArenaCapacities {
            vertex_slots: self.kernel.cursor.capacity().min(self.kernel.remaining.capacity()),
            edge_slots: self.kernel.ends.capacity(),
            incidence: self.kernel.incidence.capacity(),
            visited_words: self.kernel.visited.capacity(),
            index_vertices: self
                .kernel
                .index
                .vertex_capacity()
                // The recycle bin holds the rest of the capacity between runs.
                .max(self.kernel.index_bufs.vertex_capacity()),
            tour: self.host.tour.capacity().max(self.wave.max_tour_capacity()),
            splice_nodes: self.host.splice.node_capacity(),
            splice_slots: self.host.splice.slot_capacity(),
        }
    }

    /// Deliberately corrupts every buffer the next run could read — stale
    /// visited bits, bogus cursors and degrees, garbage walk buffers — while
    /// keeping lengths plausible. Test-only: proves a reload fully
    /// re-initialises the arena and no state leaks between checkouts.
    #[cfg(test)]
    pub(crate) fn poison(&mut self) {
        for w in &mut self.kernel.visited {
            *w.get_mut() = u64::MAX;
        }
        for c in &mut self.kernel.cursor {
            *c.get_mut() = u32::MAX / 2;
        }
        for r in &mut self.kernel.remaining {
            *r.get_mut() = 7;
        }
        self.kernel.unvisited_scan.store(usize::MAX / 2, Relaxed);
        for x in &mut self.kernel.incidence {
            *x = u32::MAX / 3;
        }
        self.host.visible.fill(3);
        self.host.vslots.fill(u32::MAX / 5);
        self.host.odd_slots.fill(1);
        self.host.boundary_slots.fill(2);
        self.host.splice.poison();
        self.wave.poison();
    }
}

impl std::fmt::Debug for Phase1Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase1Arena").field("capacities", &self.capacities()).finish()
    }
}

/// A shared pool of [`Phase1Arena`]s: workers check one out per Phase-1
/// execution and return it afterwards, so arena buffers survive across merge
/// levels however partitions are scheduled onto threads.
#[derive(Clone, Debug, Default)]
pub struct ArenaPool {
    inner: Arc<Mutex<Vec<Phase1Arena>>>,
}

impl ArenaPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an arena out of the pool, creating a fresh one when empty.
    pub fn checkout(&self) -> Phase1Arena {
        self.inner.lock().pop().unwrap_or_default()
    }

    /// Returns an arena to the pool for reuse.
    pub fn restore(&self, arena: Phase1Arena) {
        self.inner.lock().push(arena);
    }

    /// Number of idle arenas currently in the pool.
    pub fn idle(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentStore;
    use crate::phase1::{run_phase1, run_phase1_parallel, run_phase1_with_arena};
    use crate::state::WorkingPartition;
    use euler_gen::synthetic;
    use euler_graph::{PartitionAssignment, PartitionedGraph};

    fn working_partitions(n: u64, extra: usize, seed: u64, parts: u32) -> Vec<WorkingPartition> {
        let g = synthetic::random_eulerian_connected(n, extra, 5, seed);
        let labels: Vec<u32> = (0..n).map(|i| (i % parts as u64) as u32).collect();
        let a = PartitionAssignment::from_labels(labels, parts).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        pg.partitions().iter().map(WorkingPartition::from_partition).collect()
    }

    /// Output + store snapshot of a fresh-arena sequential run (the oracle).
    fn oracle(wp: &WorkingPartition) -> (crate::phase1::Phase1Output, Vec<crate::Fragment>) {
        let mut wp = wp.clone();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        (out, store.snapshot())
    }

    fn assert_matches_oracle(wp: &WorkingPartition, arena: &mut Phase1Arena, threads: usize) {
        let (out_ref, frags_ref) = oracle(wp);
        let mut wp = wp.clone();
        let store = FragmentStore::new();
        let out = if threads > 1 {
            run_phase1_parallel(&mut wp, &store, arena, threads)
        } else {
            run_phase1_with_arena(&mut wp, &store, arena)
        };
        assert_eq!(out.path_map, out_ref.path_map);
        assert_eq!(out.counts_before, out_ref.counts_before);
        let frags = store.snapshot();
        assert_eq!(frags.len(), frags_ref.len());
        for (a, b) in frags.iter().zip(&frags_ref) {
            assert_eq!(a.edges, b.edges);
        }
    }

    #[test]
    fn buffers_are_reused_and_capacity_never_shrinks() {
        let mut arena = Phase1Arena::new();
        // Grow on a large partition, then shrink the workload drastically:
        // capacities must be monotone while outputs stay oracle-exact.
        let sizes = [(400u64, 40usize), (30, 2), (120, 10), (8, 0)];
        let mut caps = arena.capacities();
        for (i, &(n, extra)) in sizes.iter().enumerate() {
            for wp in &working_partitions(n, extra, i as u64, 2) {
                assert_matches_oracle(wp, &mut arena, 1);
                let grown = arena.capacities();
                assert!(grown.covers(&caps), "capacity shrank: {grown:?} < {caps:?}");
                caps = grown;
            }
        }
        // After the 400-vertex partitions, the small reloads must not have
        // reallocated below that working set.
        let big = working_partitions(400, 40, 0, 2);
        let need = big.iter().map(|wp| wp.local_edges.len()).max().unwrap();
        assert!(caps.edge_slots >= need, "edge arena lost its grown capacity");
    }

    #[test]
    fn deliberately_dirty_arena_leaks_no_state() {
        // A poisoned arena (stale visited bits, bogus cursors/degrees, wave
        // stamps ahead of the serial, garbage specs) must behave exactly like
        // a fresh one — sequentially and under the wave walker.
        for threads in [1usize, 4] {
            let mut arena = Phase1Arena::new();
            for wp in &working_partitions(80, 8, 42, 3) {
                // Dirty the arena with a real run on a different partition
                // shape first, then poison everything poisonable.
                for other in &working_partitions(50, 5, 7, 2) {
                    let store = FragmentStore::new();
                    let mut other = other.clone();
                    if threads > 1 {
                        run_phase1_parallel(&mut other, &store, &mut arena, threads);
                    } else {
                        run_phase1_with_arena(&mut other, &store, &mut arena);
                    }
                }
                arena.poison();
                assert_matches_oracle(wp, &mut arena, threads);
            }
        }
    }

    #[test]
    fn pool_hands_the_same_arena_back_and_forth() {
        let pool = ArenaPool::new();
        assert_eq!(pool.idle(), 0);
        let mut arena = pool.checkout();
        for wp in &working_partitions(150, 12, 3, 2) {
            assert_matches_oracle(wp, &mut arena, 2);
        }
        let caps = arena.capacities();
        pool.restore(arena);
        assert_eq!(pool.idle(), 1);
        // The grown arena comes back out; a fresh one is made only when empty.
        let again = pool.checkout();
        assert!(again.capacities().covers(&caps));
        assert_eq!(pool.idle(), 0);
        let extra = pool.checkout();
        assert_eq!(extra.capacities(), Phase1Arena::new().capacities());
        pool.restore(again);
        pool.restore(extra);
        assert_eq!(pool.idle(), 2);
    }
}
