//! Splice-order index: the arena-backed linked-tour representation behind
//! Phase-1 `mergeInto`.
//!
//! The dense kernel used to keep every pending fragment as a
//! `Vec<TourEdge>` and splice internal cycles in with `Vec::splice` after a
//! linear `position(..)` scan for the pivot's first occurrence — worst-case
//! quadratic on hub-centric graphs where thousands of cycles merge into one
//! fragment. This module replaces that representation with:
//!
//! * **Linked tour.** Every walked edge becomes a node in one shared arena
//!   (`nodes` + `nxt` next-links). A pending fragment is a `(head, tail,
//!   len)` view over that arena; splicing a rotated cycle is O(|cycle|)
//!   link-in, and the `Vec<TourEdge>` the store expects is produced by a
//!   single O(total) walk per fragment at persist time.
//! * **First-occurrence handles.** For every vertex slot visible in a
//!   pending fragment (the `visible` array the kernel already keeps), the
//!   index records `first_pred[slot]`: the arena node *preceding* the
//!   slot's first from-occurrence in tour order (`PRED_HEAD` when the first
//!   occurrence is the fragment head, `PRED_END` when the vertex appears
//!   only as the final `to` of a path). This makes the mergeInto insert
//!   position an O(1) lookup instead of a scan.
//! * **Order tags.** The documented semantics move a vertex's handle to the
//!   spliced cycle's occurrence exactly when its old first occurrence sat
//!   at-or-after the pivot's. Deciding that needs an order query between two
//!   handles of the same fragment, so handles are kept on a per-fragment
//!   doubly-linked list ordered by first occurrence, each carrying a u64
//!   tag; `pos(a) < pos(b)` ⟺ `tag(a) < tag(b)`. Tags are spread evenly on
//!   creation and maintained under insertion with Bender-style local
//!   relabelling (grow aligned power-of-two tag windows around the
//!   insertion point until the window is sparse enough, then re-spread) —
//!   amortised O(log n) per insert instead of the quadratic full-list
//!   relabel a fixed stride would degrade to under hub storms.
//!
//! Why `first_pred` (and not the first node itself) is stable: a splice at
//! pivot `v` links the rotated cycle right after `first_pred[v]`, so `v`'s
//! first occurrence becomes the cycle head but its *predecessor node* is
//! unchanged. And no other vertex's splice can land between `first_pred[v]`
//! and `v`'s first occurrence: two distinct vertices can never share a
//! `first_pred` node, because sharing it would mean sharing the very next
//! node as their first from-occurrence — one node, one `from()` vertex.
//!
//! Everything here is deterministic and allocation-reusing: the buffers
//! live in [`HostScratch`](super::arena::HostScratch) and are re-`reset`
//! for every run, so arena reuse across merge levels stays poison-safe and
//! bit-identical (see the arena's dirty-arena differential test).

use crate::fragment::{FragmentKind, TourEdge};

/// Absent link / absent list entry.
const NONE: u32 = u32::MAX;
/// `first_pred` sentinel: first occurrence is the fragment head.
const PRED_HEAD: u32 = u32::MAX - 1;
/// `first_pred` sentinel: the vertex has no from-occurrence (it appears
/// only as the final `to` of a path) — mergeInto appends at the tail.
const PRED_END: u32 = u32::MAX;
/// Exclusive upper bound of the tag space; live tags are in `(0, TAG_LIMIT)`.
const TAG_LIMIT: u64 = 1 << 62;

/// One pending fragment: a linked slice of the node arena plus the head and
/// tail of its first-occurrence handle list.
#[derive(Clone, Copy, Debug)]
struct Frag {
    kind: FragmentKind,
    /// First / last arena node of the tour.
    head: u32,
    tail: u32,
    len: u32,
    /// Head / tail slot of the per-fragment handle list (`NONE` when empty).
    h_head: u32,
    h_tail: u32,
}

/// The splice-order index. One per [`HostScratch`]; `reset` before each run.
#[derive(Default)]
pub(crate) struct SpliceIndex {
    /// Tour-node arena: every walked edge, in append order.
    nodes: Vec<TourEdge>,
    /// Next-links over `nodes` (`NONE` terminates a fragment's tour).
    nxt: Vec<u32>,
    frags: Vec<Frag>,
    /// Per vertex slot: arena node preceding the slot's first
    /// from-occurrence in its fragment (`PRED_HEAD` / `PRED_END` sentinels).
    /// Only meaningful for slots marked visible this run.
    first_pred: Vec<u32>,
    /// Per vertex slot: handle-list links and order tag. Only meaningful for
    /// slots with a node-valued `first_pred` this run.
    h_prev: Vec<u32>,
    h_next: Vec<u32>,
    h_tag: Vec<u64>,
    /// Per vertex slot: generation stamp deduplicating repeated occurrences
    /// of a vertex within one spliced cycle.
    mark: Vec<u32>,
    generation: u32,
    /// Scratch: handle block assembled during one create/merge call.
    block: Vec<u32>,
    /// Scratch: window entries collected during a relabel.
    window: Vec<u32>,
}

impl SpliceIndex {
    /// Prepares the index for a run over `n` vertex slots. Reuses every
    /// allocation; per-slot arrays are grown but never shrunk (arena
    /// discipline), and only `mark` needs a deterministic fill — the other
    /// per-slot entries are always written before they are read, gated by
    /// the kernel's freshly-reset `visible` array.
    pub(crate) fn reset(&mut self, n: usize) {
        self.nodes.clear();
        self.nxt.clear();
        self.frags.clear();
        self.block.clear();
        self.window.clear();
        if self.first_pred.len() < n {
            self.first_pred.resize(n, PRED_END);
            self.h_prev.resize(n, NONE);
            self.h_next.resize(n, NONE);
            self.h_tag.resize(n, 0);
        }
        self.mark.clear();
        self.mark.resize(n, u32::MAX);
        self.generation = 0;
    }

    /// Deliberately corrupts every buffer (arena poison test support).
    #[cfg(test)]
    pub(crate) fn poison(&mut self) {
        self.nodes.clear();
        self.nxt.clear();
        self.frags.clear();
        self.block.clear();
        self.window.clear();
        for p in &mut self.first_pred {
            *p = 7;
        }
        for p in &mut self.h_prev {
            *p = 7;
        }
        for p in &mut self.h_next {
            *p = 7;
        }
        for t in &mut self.h_tag {
            *t = 7;
        }
        for m in &mut self.mark {
            *m = 7;
        }
        self.generation = u32::MAX - 3;
    }

    /// Capacity of the node arena (for [`ArenaCapacities`] monotonicity).
    pub(crate) fn node_capacity(&self) -> usize {
        self.nodes.capacity().min(self.nxt.capacity())
    }

    /// Capacity of the per-slot arrays (for [`ArenaCapacities`]).
    pub(crate) fn slot_capacity(&self) -> usize {
        self.first_pred.len()
    }

    pub(crate) fn num_fragments(&self) -> usize {
        self.frags.len()
    }

    pub(crate) fn fragment_kind(&self, i: usize) -> FragmentKind {
        self.frags[i].kind
    }

    /// Creates a new pending fragment from a freshly-walked tour, marking
    /// its fresh vertex slots visible (first-wins, exactly like the old
    /// `register_visible`) and building its handle list with evenly-spread
    /// tags. Returns the fragment's index.
    pub(crate) fn create_fragment(
        &mut self,
        kind: FragmentKind,
        tour: &[TourEdge],
        vslots: &[u32],
        visible: &mut [u32],
        not_visible: u32,
    ) -> u32 {
        debug_assert!(!tour.is_empty());
        let base = self.nodes.len() as u32;
        let len = tour.len() as u32;
        let idx = self.frags.len() as u32;
        for (i, &e) in tour.iter().enumerate() {
            self.nodes.push(e);
            self.nxt.push(if i as u32 + 1 == len { NONE } else { base + i as u32 + 1 });
        }
        // Handles, in first-occurrence (walk) order.
        self.block.clear();
        for (i, &s) in vslots[..tour.len()].iter().enumerate() {
            if visible[s as usize] != not_visible {
                continue;
            }
            visible[s as usize] = idx;
            self.first_pred[s as usize] =
                if i == 0 { PRED_HEAD } else { base + i as u32 - 1 };
            self.block.push(s);
        }
        // The closing slot duplicates the start for cycles; for paths it can
        // be a vertex with no from-occurrence — an END handle, kept out of
        // the tag list (there is nothing to order it against until a splice
        // turns it into a real occurrence).
        let s_end = vslots[tour.len()];
        if visible[s_end as usize] == not_visible {
            visible[s_end as usize] = idx;
            self.first_pred[s_end as usize] = PRED_END;
        }
        let h = self.block.len() as u64;
        let stride = TAG_LIMIT / (h + 1);
        let mut prev = NONE;
        for (i, &s) in self.block.iter().enumerate() {
            let s = s as usize;
            self.h_tag[s] = (i as u64 + 1) * stride;
            self.h_prev[s] = prev;
            self.h_next[s] = NONE;
            if prev != NONE {
                self.h_next[prev as usize] = s as u32;
            }
            prev = s as u32;
        }
        let h_head = self.block.first().copied().unwrap_or(NONE);
        let h_tail = prev;
        self.frags.push(Frag { kind, head: base, tail: base + len - 1, len, h_head, h_tail });
        self.block.clear();
        idx
    }

    /// `mergeInto`: splices the cycle `tour` (rotated to start at
    /// `vslots[rot]`, the pivot) into pending fragment `at` at the pivot's
    /// first occurrence, reproducing the reference semantics exactly:
    /// the rotated cycle lands immediately before the pivot's first
    /// from-occurrence (at the tail when the pivot appears only as a final
    /// `to`), and every cycle vertex's handle moves to its occurrence
    /// inside the cycle iff its old first occurrence sat at-or-after the
    /// pivot's.
    pub(crate) fn merge_into(
        &mut self,
        at: u32,
        rot: usize,
        tour: &[TourEdge],
        vslots: &[u32],
        visible: &mut [u32],
        not_visible: u32,
    ) {
        let len = tour.len();
        let base = self.nodes.len() as u32;
        for j in 0..len {
            self.nodes.push(tour[(rot + j) % len]);
            self.nxt.push(if j + 1 == len { NONE } else { base + j as u32 + 1 });
        }
        let v = vslots[rot] as usize;
        let c_tail = base + len as u32 - 1;

        // --- Link the rotated cycle into the fragment's tour. ---------------
        let was_end = self.first_pred[v] == PRED_END;
        {
            let f = &mut self.frags[at as usize];
            match self.first_pred[v] {
                PRED_END => {
                    // Pivot visible only as the final `to`: append.
                    self.nxt[f.tail as usize] = base;
                    self.first_pred[v] = f.tail;
                    f.tail = c_tail;
                }
                PRED_HEAD => {
                    self.nxt[c_tail as usize] = f.head;
                    f.head = base;
                }
                p => {
                    // `p` precedes the pivot's first occurrence, so it has a
                    // successor and is never the tail.
                    self.nxt[c_tail as usize] = self.nxt[p as usize];
                    self.nxt[p as usize] = base;
                }
            }
            f.len += len as u32;
        }

        // --- Update handles. -------------------------------------------------
        // Handle ranks after the splice: everything strictly before the
        // pivot's old first occurrence keeps its rank; the pivot keeps its
        // rank (same predecessor node, see module docs); the cycle's fresh
        // and moved handles follow the pivot as one contiguous block in
        // cycle order; surviving later handles shift after the block.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == u32::MAX || self.generation == 0 {
            // Never collide with the reset fill (u32::MAX) even if a run
            // somehow wraps the counter.
            for m in &mut self.mark {
                *m = u32::MAX;
            }
            self.generation = 1;
        }
        let gen = self.generation;
        self.mark[v] = gen;
        let pivot_tag = if was_end { u64::MAX } else { self.h_tag[v] };
        let mut block = std::mem::take(&mut self.block);
        block.clear();
        for j in 1..len {
            let s = vslots[(rot + j) % len];
            let su = s as usize;
            if self.mark[su] == gen {
                continue; // later occurrence of a vertex already placed
            }
            self.mark[su] = gen;
            let vis = visible[su];
            if vis == not_visible {
                visible[su] = at;
                self.first_pred[su] = base + j as u32 - 1;
                block.push(s);
            } else if vis == at {
                // An END handle sits past every from-occurrence, so it
                // always moves; otherwise compare first-occurrence order
                // with the pivot via the tags. (`was_end` pivots sit at the
                // very end themselves, so node-valued handles never move.)
                let moved = if self.first_pred[su] == PRED_END {
                    true
                } else if was_end {
                    false
                } else {
                    self.h_tag[su] > pivot_tag
                };
                if moved {
                    if self.first_pred[su] != PRED_END {
                        self.unlink_handle(at, s);
                    }
                    self.first_pred[su] = base + j as u32 - 1;
                    block.push(s);
                }
            }
            // Visible in another fragment: first-wins, nothing changes.
        }

        // Insertion anchor: the pivot's own handle entry — which, for an END
        // pivot, is itself new and goes to the current end of the list.
        let (anchor, lead) = if was_end {
            (self.frags[at as usize].h_tail, Some(v as u32))
        } else {
            (v as u32, None)
        };
        let need = block.len() + lead.is_some() as usize;
        if need > 0 {
            let (lo, stride) = self.make_room(at, anchor, need);
            let mut prev = anchor;
            let mut tag = lo;
            for &s in lead.iter().chain(block.iter()) {
                tag += stride;
                self.link_handle_after(at, prev, s, tag);
                prev = s;
            }
        }
        block.clear();
        self.block = block;
    }

    /// Removes slot `s` from fragment `at`'s handle list.
    fn unlink_handle(&mut self, at: u32, s: u32) {
        let su = s as usize;
        let (p, nx) = (self.h_prev[su], self.h_next[su]);
        if p != NONE {
            self.h_next[p as usize] = nx;
        } else {
            self.frags[at as usize].h_head = nx;
        }
        if nx != NONE {
            self.h_prev[nx as usize] = p;
        } else {
            self.frags[at as usize].h_tail = p;
        }
    }

    /// Inserts slot `s` with `tag` immediately after `prev` (`NONE` = list
    /// head) in fragment `at`'s handle list.
    fn link_handle_after(&mut self, at: u32, prev: u32, s: u32, tag: u64) {
        let su = s as usize;
        let nx = if prev == NONE {
            self.frags[at as usize].h_head
        } else {
            self.h_next[prev as usize]
        };
        self.h_tag[su] = tag;
        self.h_prev[su] = prev;
        self.h_next[su] = nx;
        if prev != NONE {
            self.h_next[prev as usize] = s;
        } else {
            self.frags[at as usize].h_head = s;
        }
        if nx != NONE {
            self.h_prev[nx as usize] = s;
        } else {
            self.frags[at as usize].h_tail = s;
        }
    }

    /// Finds room for `need` consecutive tags strictly after `anchor`
    /// (`NONE` = before the current list head). Returns `(lo, stride)`;
    /// the i-th inserted entry takes tag `lo + (i+1) * stride`.
    ///
    /// Fast path: the gap to the anchor's successor is wide enough. Slow
    /// path: Bender-style local relabel — grow aligned power-of-two tag
    /// windows around the anchor until the window's density (current
    /// entries + the insertion) satisfies `total² ≤ width`, then re-spread
    /// the window evenly, leaving the insertion gap. Level 62 always
    /// accepts, so the loop terminates.
    fn make_room(&mut self, at: u32, anchor: u32, need: usize) -> (u64, u64) {
        let lo = if anchor == NONE { 0 } else { self.h_tag[anchor as usize] };
        let succ = if anchor == NONE {
            self.frags[at as usize].h_head
        } else {
            self.h_next[anchor as usize]
        };
        let hi = if succ == NONE { TAG_LIMIT } else { self.h_tag[succ as usize] };
        let gap = hi - lo;
        let stride = gap / (need as u64 + 1);
        if stride >= 1 {
            return (lo, stride);
        }
        // Local relabel. Window levels are aligned tag ranges around the
        // anchor's tag (anchor NONE ⇒ around the low end of the space).
        let center = lo;
        for level in 1..=62u32 {
            let width = 1u64 << level;
            let base = center & !(width - 1);
            let end = base.saturating_add(width);
            // Collect the contiguous run of entries whose tags fall inside
            // the window, walking outward from the insertion point.
            self.window.clear();
            let mut left = if anchor == NONE { NONE } else { anchor };
            while left != NONE && self.h_tag[left as usize] >= base {
                self.window.push(left);
                left = self.h_prev[left as usize];
            }
            self.window.reverse();
            let anchor_pos = self.window.len(); // entries ≤ anchor (1-based end)
            let mut right = succ;
            while right != NONE && self.h_tag[right as usize] < end {
                self.window.push(right);
                right = self.h_next[right as usize];
            }
            let total = (self.window.len() + need) as u64;
            if total * total <= width && width / (total + 1) >= 1 {
                let stride = width / (total + 1);
                for (i, &s) in self.window.iter().enumerate() {
                    let pos = if i < anchor_pos { i } else { i + need };
                    self.h_tag[s as usize] = base + (pos as u64 + 1) * stride;
                }
                let new_lo = if anchor == NONE {
                    base
                } else {
                    self.h_tag[anchor as usize]
                };
                return (new_lo, stride);
            }
        }
        unreachable!("tag space exhausted: more than 2^31 handles in one fragment")
    }

    /// Walks fragment `i`'s linked tour into `out` — the single O(len)
    /// materialization back to the `Vec<TourEdge>` the store persists.
    pub(crate) fn materialize(&self, i: usize, out: &mut Vec<TourEdge>) {
        let f = &self.frags[i];
        out.clear();
        out.reserve(f.len as usize);
        let mut cur = f.head;
        while cur != NONE {
            out.push(self.nodes[cur as usize]);
            cur = self.nxt[cur as usize];
        }
        debug_assert_eq!(out.len(), f.len as usize, "linked tour length drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::TourEdge;
    use euler_graph::{EdgeId, VertexId};

    const NOT_VISIBLE: u32 = u32::MAX;

    fn e(from: u64, to: u64, id: u64) -> TourEdge {
        TourEdge::Real { edge: EdgeId(id), from: VertexId(from), to: VertexId(to) }
    }

    /// Reference splice on plain vectors, mirroring phase1::reference.
    fn vec_merge(target: &mut Vec<TourEdge>, tour: &[TourEdge], rot: usize, pivot: VertexId) {
        let mut rotated = Vec::with_capacity(tour.len());
        rotated.extend_from_slice(&tour[rot..]);
        rotated.extend_from_slice(&tour[..rot]);
        let at = target.iter().position(|e| e.from() == pivot).unwrap_or(target.len());
        target.splice(at..at, rotated);
    }

    /// Differential driver: feed the same walk sequence through the index
    /// and the vector model; every fragment must materialize identically.
    struct Model {
        idx: SpliceIndex,
        visible: Vec<u32>,
        frags: Vec<Vec<TourEdge>>,
    }

    impl Model {
        fn new(n: usize) -> Self {
            let mut idx = SpliceIndex::default();
            idx.reset(n);
            Model { idx, visible: vec![NOT_VISIBLE; n], frags: Vec::new() }
        }

        /// Slots are vertex ids here (identity interning keeps tests terse).
        fn vslots(tour: &[TourEdge]) -> Vec<u32> {
            let mut v: Vec<u32> = tour.iter().map(|e| e.from().0 as u32).collect();
            v.push(tour.last().unwrap().to().0 as u32);
            v
        }

        fn walk(&mut self, kind: FragmentKind, tour: &[TourEdge]) {
            let vslots = Self::vslots(tour);
            if kind == FragmentKind::Cycle {
                let pivot = vslots[..tour.len()]
                    .iter()
                    .enumerate()
                    .find(|(_, &s)| self.visible[s as usize] != NOT_VISIBLE)
                    .map(|(rot, &s)| (rot, self.visible[s as usize]));
                if let Some((rot, at)) = pivot {
                    self.idx.merge_into(at, rot, tour, &vslots, &mut self.visible, NOT_VISIBLE);
                    let mut shadow = self.visible.clone();
                    for &s in &vslots {
                        if shadow[s as usize] == NOT_VISIBLE {
                            shadow[s as usize] = at;
                        }
                    }
                    assert_eq!(shadow, self.visible, "visibility must be first-wins");
                    vec_merge(
                        &mut self.frags[at as usize],
                        tour,
                        rot,
                        VertexId(vslots[rot] as u64),
                    );
                    return;
                }
            }
            self.idx.create_fragment(kind, tour, &vslots, &mut self.visible, NOT_VISIBLE);
            self.frags.push(tour.to_vec());
        }

        fn check(&self) {
            assert_eq!(self.idx.num_fragments(), self.frags.len());
            let mut out = Vec::new();
            for (i, expect) in self.frags.iter().enumerate() {
                self.idx.materialize(i, &mut out);
                assert_eq!(&out, expect, "fragment {i} diverged from the vector model");
            }
        }
    }

    #[test]
    fn single_cycle_round_trips() {
        let mut m = Model::new(8);
        m.walk(FragmentKind::Cycle, &[e(0, 1, 0), e(1, 2, 1), e(2, 0, 2)]);
        m.check();
    }

    #[test]
    fn splice_at_interior_pivot_matches_vector_model() {
        let mut m = Model::new(8);
        m.walk(FragmentKind::Cycle, &[e(0, 1, 0), e(1, 2, 1), e(2, 0, 2)]);
        // Cycle through vertex 2 (pivot at rot 0) and vertex 1 (pivot mid-cycle).
        m.walk(FragmentKind::Cycle, &[e(2, 3, 3), e(3, 2, 4)]);
        m.walk(FragmentKind::Cycle, &[e(4, 1, 5), e(1, 4, 6)]);
        m.check();
    }

    #[test]
    fn end_handle_pivot_appends_at_tail() {
        let mut m = Model::new(8);
        // Path 0→1→2: vertex 2 is visible only as the final `to`.
        m.walk(FragmentKind::Path, &[e(0, 1, 0), e(1, 2, 1)]);
        m.walk(FragmentKind::Cycle, &[e(2, 3, 2), e(3, 2, 3)]);
        // And a second cycle at 2 — now a real from-occurrence exists.
        m.walk(FragmentKind::Cycle, &[e(2, 4, 4), e(4, 2, 5)]);
        m.check();
    }

    #[test]
    fn moved_handle_counterexample_from_module_docs() {
        // Splicing C=[b→v, v→b] into F=[a→b, b→v, v→a] at b moves v's first
        // from-occurrence into C — the naive first-wins handle gets this
        // wrong; the order tags must not.
        let (a, b, v) = (0, 1, 2);
        let mut m = Model::new(8);
        m.walk(FragmentKind::Cycle, &[e(a, b, 0), e(b, v, 1), e(v, a, 2)]);
        m.walk(FragmentKind::Cycle, &[e(b, v, 3), e(v, b, 4)]);
        // Now splice a cycle at v: it must land before the *moved* first
        // occurrence (inside the previous cycle), as the vector model does.
        m.walk(FragmentKind::Cycle, &[e(v, 3, 5), e(3, v, 6)]);
        m.check();
    }

    #[test]
    fn hub_storm_differential_and_tag_relabel() {
        // A hub star: many petals splicing into one fragment at the same
        // pivot exhausts naive tag gaps and forces local relabels; every
        // intermediate state must match the vector model.
        let hub = 0u64;
        let mut m = Model::new(4096);
        m.walk(FragmentKind::Cycle, &[e(hub, 1, 0), e(1, hub, 1)]);
        let mut id = 2;
        for p in 0..600u64 {
            let spoke = 2 + p;
            m.walk(FragmentKind::Cycle, &[e(hub, spoke, id), e(spoke, hub, id + 1)]);
            id += 2;
        }
        m.check();
    }

    #[test]
    fn chained_pivot_storm_matches_vector_model() {
        // Petals pivot at distinct core vertices, and cross-petals revisit
        // earlier core vertices — exercising moved handles repeatedly.
        let k = 48u64;
        let mut m = Model::new(4096);
        let core: Vec<TourEdge> =
            (0..k).map(|i| e(i, (i + 1) % k, i)).collect();
        m.walk(FragmentKind::Cycle, &core);
        let mut id = k;
        for i in 0..k {
            let p = k + 2 * i;
            let q = k + 2 * i + 1;
            let j = (i * 7 + 3) % k;
            m.walk(
                FragmentKind::Cycle,
                &[e(i, p, id), e(p, j, id + 1), e(j, q, id + 2), e(q, i, id + 3)],
            );
            id += 4;
            m.check();
        }
    }

    #[test]
    fn disjoint_fragments_stay_independent() {
        let mut m = Model::new(32);
        m.walk(FragmentKind::Cycle, &[e(0, 1, 0), e(1, 0, 1)]);
        m.walk(FragmentKind::Cycle, &[e(10, 11, 2), e(11, 10, 3)]);
        m.walk(FragmentKind::Cycle, &[e(1, 2, 4), e(2, 1, 5)]);
        m.walk(FragmentKind::Cycle, &[e(11, 12, 6), e(12, 11, 7)]);
        m.check();
    }

    #[test]
    fn reset_recovers_from_poison() {
        let run = |idx: &mut SpliceIndex| {
            idx.reset(16);
            let mut visible = vec![NOT_VISIBLE; 16];
            let tour = [e(0, 1, 0), e(1, 2, 1), e(2, 0, 2)];
            let vslots = Model::vslots(&tour);
            idx.create_fragment(FragmentKind::Cycle, &tour, &vslots, &mut visible, NOT_VISIBLE);
            let cyc = [e(1, 3, 3), e(3, 1, 4)];
            let vs2 = Model::vslots(&cyc);
            idx.merge_into(0, 0, &cyc, &vs2, &mut visible, NOT_VISIBLE);
            let mut out = Vec::new();
            idx.materialize(0, &mut out);
            out
        };
        let mut idx = SpliceIndex::default();
        let clean = run(&mut idx);
        idx.poison();
        let dirty = run(&mut idx);
        assert_eq!(clean, dirty, "poisoned index must reset to bit-identical output");
    }
}
