//! Deterministic intra-partition parallel Phase 1: wave speculation.
//!
//! The paper's Phase 1 is embarrassingly parallel *within* a partition in
//! the sense that maximal walks are edge-disjoint — but the repo's
//! determinism contract is stronger than edge-disjointness: Phase-1 output
//! must be **bit-identical** to the sequential kernel ([`super::run_phase1`])
//! for every thread count, because walk trajectories depend on per-vertex
//! cursor state that earlier walks advance. Two walks that share even one
//! vertex are order-dependent.
//!
//! [`run_phase1_parallel`] therefore parallelises by *speculation* rather
//! than by racing:
//!
//! 1. The committing (main) thread predicts the next batch of start vertices
//!    — a **wave** — from the committed state (the same ascending orders the
//!    sequential kernel uses).
//! 2. Workers speculate one maximal walk per start against the immutable
//!    committed snapshot, recording consumed edges, the visited-vertex set
//!    and final cursor/remaining values in a private epoch-stamped overlay
//!    (`WorkerScratch`) — the committed arrays are never written during a
//!    wave.
//! 3. The main thread then *commits* speculations strictly in sequential
//!    start order. A speculation is valid iff no earlier commit of the same
//!    wave touched any vertex of its trajectory (checked against per-vertex
//!    wave stamps); trajectories only read state at their own vertices, so
//!    an untouched trajectory is exactly what the sequential kernel would
//!    have walked. A conflicting (or over-long) speculation is discarded
//!    and its walk simply re-executed inline on the committed state.
//!
//! Every committed walk therefore equals the sequential walk at the same
//! position, so circuits, `RunReport` records and transfer accounting are
//! bit-identical to the sequential path no matter how many threads
//! speculate — the differential harness in `tests/parallel_equivalence.rs`
//! pins this across thread counts and backends. Speedup comes from the
//! speculated walks that do commit: plentiful short walks (boundary-heavy
//! partitions) parallelise well; a partition whose edges form one giant
//! walk degrades to the sequential cost plus wave overhead, never to a
//! different answer.

use super::arena::{ArenaPool, Phase1Arena};
use super::{run_phase1_core, run_phase1_with_arena, Phase1Output, Traversal};
use crate::fragment::{FragmentStore, TourEdge};
use crate::state::{EdgeRef, WorkingPartition};
use std::cell::UnsafeCell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::Barrier;

/// How an execution backend schedules Phase-1 work onto threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Partitions of a merge level fan out across threads; each partition's
    /// Phase 1 runs sequentially (the historical default). Fastest at wide
    /// levels, but concurrent partitions interleave their fragment-store
    /// appends, so circuit composition is not bit-deterministic.
    #[default]
    PerPartition,
    /// Partitions execute one at a time in ascending id order; Phase 1
    /// *inside* each partition runs on the wave-speculation walker. Output
    /// is bit-identical to a fully sequential run for every thread count —
    /// the deterministic way to spend cores on the narrow top levels of the
    /// merge tree. (On the BSP backend the bit-identical *circuit
    /// composition* additionally needs a single-worker engine; a
    /// multi-worker engine executes its workers' partitions concurrently,
    /// interleaving fragment-store appends as under
    /// [`PerPartition`](Parallelism::PerPartition).)
    IntraPartition,
    /// Per level: [`PerPartition`](Parallelism::PerPartition) while at least
    /// as many live partitions as threads remain, otherwise
    /// [`IntraPartition`](Parallelism::IntraPartition).
    Auto,
}

/// Tuning knobs of the wave walker (test- and bench-facing; the defaults
/// are what the executor uses).
#[derive(Clone, Copy, Debug)]
pub(crate) struct WaveTuning {
    /// Speculated walks per wave, per thread.
    pub width_per_thread: usize,
    /// Lower bound on the per-speculation edge cap (the cap is
    /// `max(min_edge_cap, edges / wave_width)`; an over-long speculation is
    /// abandoned and re-walked inline, bounding wave memory).
    pub min_edge_cap: usize,
}

impl Default for WaveTuning {
    fn default() -> Self {
        WaveTuning { width_per_thread: 8, min_edge_cap: 4096 }
    }
}

/// A traversal start, as the sequential kernel names them: a vertex slot for
/// steps 1–2, the first-unvisited edge for step 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SpecStart {
    /// Walk from this vertex slot.
    Slot(u32),
    /// Walk from endpoint 0 of this edge slot (step 3's start rule).
    Edge(u32),
}

impl Default for SpecStart {
    fn default() -> Self {
        SpecStart::Slot(u32::MAX)
    }
}

/// Eligibility rule a queued start must still satisfy when its turn comes —
/// mirrors the sequential kernel's re-checks. Both rules are monotone
/// (odd degrees only ever turn even, remaining degrees only shrink), so a
/// start predicted ineligible at wave launch can never become eligible.
#[derive(Clone, Copy, Debug)]
pub(crate) enum StartRule {
    /// Step 1: remaining degree is odd.
    OddParity,
    /// Step 2: remaining degree is positive.
    Positive,
}

impl StartRule {
    #[inline]
    fn eligible(self, remaining: u32) -> bool {
        match self {
            StartRule::OddParity => remaining % 2 == 1,
            StartRule::Positive => remaining > 0,
        }
    }
}

/// The upcoming starts a wave can speculate over.
pub(crate) enum WaveQueue<'q> {
    /// Steps 1–2: the remainder of a precomputed slot queue (the pulled
    /// start itself is `rest[0]`).
    Slots {
        /// Queue remainder, in sequential order.
        rest: &'q [u32],
        /// Eligibility re-check rule.
        rule: StartRule,
    },
    /// Step 3: ascending unvisited-edge scan from the pulled start edge.
    Edges,
}

/// One speculated walk: the trajectory plus everything needed to commit it
/// (consumed edges, touched vertices with their final cursor/remaining).
#[derive(Debug, Default)]
pub(crate) struct SpecWalk {
    /// The start this speculation is for.
    start: SpecStart,
    /// True when the walk exceeded the edge cap (or its worker panicked) and
    /// must be re-walked inline.
    overflow: bool,
    /// Tour edges, exactly as [`Traversal::walk`] would produce them.
    tour: Vec<TourEdge>,
    /// Visited vertex-slot sequence (`tour.len() + 1` entries).
    vslots: Vec<u32>,
    /// Consumed edge slots, in traversal order.
    edges: Vec<u32>,
    /// Distinct touched vertex slots with their final `(cursor, remaining)`.
    touched: Vec<(u32, u32, u32)>,
}

/// Per-worker private overlay over the committed state: epoch-stamped so a
/// new speculation starts in O(1) instead of clearing the arrays.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch {
    epoch: u32,
    /// Per vertex slot: epoch at which the overlay entries became valid.
    touched_epoch: Vec<u32>,
    /// Overlay cursor per vertex slot (valid when `touched_epoch` matches).
    cursor_val: Vec<u32>,
    /// Overlay remaining degree per vertex slot.
    remaining_val: Vec<u32>,
    /// Per edge slot: epoch at which this walk consumed the edge.
    visited_epoch: Vec<u32>,
}

impl WorkerScratch {
    fn prepare(&mut self, n: usize, m: usize) {
        if self.touched_epoch.len() < n {
            self.touched_epoch.resize(n, 0);
            self.cursor_val.resize(n, 0);
            self.remaining_val.resize(n, 0);
        }
        if self.visited_epoch.len() < m {
            self.visited_epoch.resize(m, 0);
        }
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            // Wrapped: stale stamps could collide, so clear them once.
            self.touched_epoch.fill(0);
            self.visited_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Arena-resident scratch of the wave walker, reused across runs and merge
/// levels like every other arena buffer.
#[derive(Debug, Default)]
pub(crate) struct WaveScratch {
    /// Wave serial; strictly increases across waves, runs and levels so
    /// stale stamps can never collide with the current wave.
    serial: u32,
    /// Per vertex slot: serial of the wave whose commits last touched it.
    stamps: Vec<u32>,
    /// Speculation slots (one per wave entry).
    specs: Vec<SpecWalk>,
    /// Per-worker overlays (index 0 is the committing thread's).
    workers: Vec<WorkerScratch>,
}

impl WaveScratch {
    fn prepare(&mut self, threads: usize, width: usize, n: usize, m: usize) {
        if self.serial >= u32::MAX - 2 {
            self.stamps.fill(0);
            self.serial = 0;
        }
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        while self.specs.len() < width {
            self.specs.push(SpecWalk::default());
        }
        while self.workers.len() < threads {
            self.workers.push(WorkerScratch::default());
        }
        for w in self.workers.iter_mut().take(threads) {
            w.prepare(n, m);
        }
    }

    /// Largest tour-buffer capacity parked in the speculation slots. Walk
    /// buffers migrate between the host scratch and spec slots via swaps, so
    /// capacity introspection must look at both.
    pub(crate) fn max_tour_capacity(&self) -> usize {
        self.specs.iter().map(|s| s.tour.capacity()).max().unwrap_or(0)
    }

    /// Test-only: corrupt the wave scratch adversarially — stamps ahead of
    /// the serial provoke spurious conflicts (which must only cost time,
    /// never change output), garbage specs must be fully overwritten.
    #[cfg(test)]
    pub(crate) fn poison(&mut self) {
        self.stamps.fill(self.serial.wrapping_add(1));
        for s in &mut self.specs {
            s.start = SpecStart::Edge(12345);
            s.overflow = true;
            s.vslots.fill(9);
            s.edges.fill(9);
        }
        for w in &mut self.workers {
            w.touched_epoch.fill(w.epoch);
            w.visited_epoch.fill(w.epoch);
            w.cursor_val.fill(u32::MAX / 7);
            w.remaining_val.fill(u32::MAX / 7);
        }
    }
}

/// A speculation slot on the shared wave board.
///
/// Mutable access follows a strict phase protocol, delimited by the board's
/// barrier: between waves only the committing thread touches slots; during a
/// wave each slot is claimed by exactly one speculator through the `claim`
/// counter. The barrier crossings order the accesses.
struct SpecCell(UnsafeCell<SpecWalk>);

// SAFETY: see the phase protocol above — slots are never accessed from two
// threads without an intervening barrier, and each claim index is handed out
// exactly once per wave by `fetch_add`.
unsafe impl Sync for SpecCell {}

/// The shared wave board: the committed snapshot plus the wave being
/// speculated.
struct Board<'a> {
    tr: Traversal<'a>,
    specs: Vec<SpecCell>,
    /// Number of valid entries in `specs` this wave.
    published: AtomicUsize,
    /// Next spec index to claim.
    claim: AtomicUsize,
    /// Per-speculation edge cap this wave.
    cap: AtomicUsize,
    /// Set once: workers exit at the next wave barrier.
    stop: AtomicBool,
    /// Wave phase barrier (main + workers).
    barrier: Barrier,
}

/// Speculation loop of one worker thread. Returns its scratch for reuse.
fn worker_loop(board: &Board<'_>, mut ws: WorkerScratch) -> WorkerScratch {
    loop {
        board.barrier.wait();
        if board.stop.load(Relaxed) {
            return ws;
        }
        speculate_claimed(board, &mut ws);
        board.barrier.wait();
    }
}

/// Claims and speculates wave entries until the wave is exhausted.
fn speculate_claimed(board: &Board<'_>, ws: &mut WorkerScratch) {
    let count = board.published.load(Relaxed);
    let cap = board.cap.load(Relaxed);
    loop {
        let i = board.claim.fetch_add(1, Relaxed);
        if i >= count {
            return;
        }
        // SAFETY: `fetch_add` hands index `i` to exactly one speculator, and
        // the committing thread reads the slot only after the wave barrier.
        let spec = unsafe { &mut *board.specs[i].0.get() };
        // A panicking speculation (impossible absent kernel bugs) must not
        // wedge the barrier protocol: degrade the slot to the inline-walk
        // fallback, which re-derives everything from committed state.
        if catch_unwind(AssertUnwindSafe(|| speculate_walk(&board.tr, ws, spec, cap))).is_err() {
            spec.overflow = true;
        }
    }
}

/// Speculates one maximal walk from `spec.start` against the committed
/// snapshot, writing the trajectory into `spec`. Mirrors
/// [`Traversal::walk`] exactly, with cursor/remaining/visited reads going
/// through the worker's private overlay.
fn speculate_walk(tr: &Traversal<'_>, ws: &mut WorkerScratch, spec: &mut SpecWalk, cap: usize) {
    spec.overflow = false;
    spec.tour.clear();
    spec.vslots.clear();
    spec.edges.clear();
    spec.touched.clear();
    let epoch = ws.next_epoch();

    /// First-contact overlay initialisation: load the committed cursor and
    /// remaining degree, and record the vertex as touched.
    #[inline]
    fn touch(tr: &Traversal<'_>, ws: &mut WorkerScratch, spec: &mut SpecWalk, epoch: u32, v: u32) {
        let vi = v as usize;
        if ws.touched_epoch[vi] != epoch {
            ws.touched_epoch[vi] = epoch;
            ws.cursor_val[vi] = tr.k.cursor[vi].load(Relaxed);
            ws.remaining_val[vi] = tr.k.remaining[vi].load(Relaxed);
            spec.touched.push((v, 0, 0));
        }
    }

    let start = match spec.start {
        SpecStart::Slot(s) => s,
        SpecStart::Edge(e) => tr.k.ends[e as usize][0],
    };
    let mut current = start;
    let mut current_v = tr.k.index.vertex(current);
    spec.vslots.push(start);
    loop {
        touch(tr, ws, spec, epoch, current);
        // The overlay mirror of `Traversal::next_edge`: first incident edge
        // neither committed-visited nor consumed by this walk; the cursor
        // parks on it.
        let end = tr.k.offsets[current as usize + 1];
        let mut cur = ws.cursor_val[current as usize];
        let mut found = None;
        while cur < end {
            let e = tr.k.incidence[cur as usize];
            if !tr.is_visited(e) && ws.visited_epoch[e as usize] != epoch {
                found = Some(e);
                break;
            }
            cur += 1;
        }
        ws.cursor_val[current as usize] = cur;
        let Some(e) = found else { break };
        if spec.edges.len() >= cap {
            spec.overflow = true;
            break;
        }
        ws.visited_epoch[e as usize] = epoch;
        spec.edges.push(e);
        let [su, sv] = tr.k.ends[e as usize];
        touch(tr, ws, spec, epoch, su);
        touch(tr, ws, spec, epoch, sv);
        ws.remaining_val[su as usize] -= 1;
        ws.remaining_val[sv as usize] -= 1;
        let next = if su == current { sv } else { su };
        let next_v = tr.k.index.vertex(next);
        spec.tour.push(match tr.edges[e as usize].edge {
            EdgeRef::Real(edge) => TourEdge::Real { edge, from: current_v, to: next_v },
            EdgeRef::Virtual(fragment) => {
                TourEdge::Virtual { fragment, from: current_v, to: next_v }
            }
        });
        spec.vslots.push(next);
        current = next;
        current_v = next_v;
    }
    for t in &mut spec.touched {
        t.1 = ws.cursor_val[t.0 as usize];
        t.2 = ws.remaining_val[t.0 as usize];
    }
}

/// The committing side of the wave walker, handed to the shared Phase-1
/// orchestration as its walk source. Produces walks bit-identical to the
/// sequential kernel, in the same order.
pub(crate) struct WaveDriver<'b, 'a> {
    board: &'b Board<'a>,
    /// The committing thread's own speculation overlay (it claims wave
    /// entries like any worker between the barriers).
    scratch: WorkerScratch,
    stamps: &'b mut Vec<u32>,
    serial: u32,
    wave_pos: usize,
    wave_len: usize,
    width: usize,
    edge_cap: usize,
}

impl WaveDriver<'_, '_> {
    /// Produces the committed walk for `start` — the next walk of the
    /// sequential order, whose eligibility the orchestrator just re-checked
    /// against committed state. Fills `tour`/`vslots` exactly as
    /// [`Traversal::walk`] would.
    pub(crate) fn walk(
        &mut self,
        start: SpecStart,
        queue: WaveQueue<'_>,
        tr: &Traversal<'_>,
        tour: &mut Vec<TourEdge>,
        vslots: &mut Vec<u32>,
    ) {
        loop {
            while self.wave_pos < self.wave_len {
                let i = self.wave_pos;
                self.wave_pos += 1;
                // SAFETY: between waves the committing thread has exclusive
                // access to the spec slots (see `SpecCell`).
                let spec = unsafe { &mut *self.board.specs[i].0.get() };
                if spec.start != start {
                    // The orchestrator skipped this start (it became
                    // ineligible, or its step-3 edge was consumed): the
                    // speculation is simply discarded.
                    continue;
                }
                let valid = !spec.overflow
                    && spec
                        .touched
                        .iter()
                        .all(|&(v, _, _)| self.stamps[v as usize] != self.serial);
                if valid {
                    // Commit: apply final cursor/remaining, stamp the touched
                    // vertices, set the visited bits, hand the walk out.
                    for &(v, cur, rem) in &spec.touched {
                        tr.k.cursor[v as usize].store(cur, Relaxed);
                        tr.k.remaining[v as usize].store(rem, Relaxed);
                        self.stamps[v as usize] = self.serial;
                    }
                    for &e in &spec.edges {
                        tr.mark_visited(e);
                    }
                    std::mem::swap(tour, &mut spec.tour);
                    std::mem::swap(vslots, &mut spec.vslots);
                } else {
                    // Conflict with an earlier commit of this wave (or an
                    // over-long speculation): re-walk inline on the committed
                    // state — by definition the sequential result — and stamp
                    // its trail so later wave entries validate against it.
                    let slot = match start {
                        SpecStart::Slot(s) => s,
                        SpecStart::Edge(e) => tr.k.ends[e as usize][0],
                    };
                    tr.walk(slot, tour, vslots);
                    for &v in vslots.iter() {
                        self.stamps[v as usize] = self.serial;
                    }
                }
                return;
            }
            self.launch(start, &queue, tr);
        }
    }

    /// Launches a new wave: predicts the upcoming starts from the committed
    /// state (head = `start`, so progress is guaranteed), then runs one
    /// barrier-delimited speculation phase across all threads.
    fn launch(&mut self, start: SpecStart, queue: &WaveQueue<'_>, tr: &Traversal<'_>) {
        self.serial += 1;
        let mut count = 0usize;
        match *queue {
            WaveQueue::Slots { rest, rule } => {
                for &s in rest {
                    if count >= self.width {
                        break;
                    }
                    if rule.eligible(tr.remaining(s)) {
                        // SAFETY: between waves the committing thread (us)
                        // has exclusive access to the spec slots — workers
                        // only touch them between the two barrier waits
                        // below, after this loop has finished publishing.
                        unsafe { (*self.board.specs[count].0.get()).start = SpecStart::Slot(s) };
                        count += 1;
                    }
                }
                debug_assert!(count > 0, "the pulled start itself is eligible");
            }
            WaveQueue::Edges => {
                let first = match start {
                    SpecStart::Edge(e) => e,
                    SpecStart::Slot(_) => unreachable!("step 3 pulls edge starts"),
                };
                for e in first..tr.edges.len() as u32 {
                    if count >= self.width {
                        break;
                    }
                    if !tr.is_visited(e) {
                        // SAFETY: same exclusive-access window as the slot
                        // loop above — no worker reads a spec slot until
                        // the first barrier wait after publication.
                        unsafe { (*self.board.specs[count].0.get()).start = SpecStart::Edge(e) };
                        count += 1;
                    }
                }
            }
        }
        self.board.claim.store(0, Relaxed);
        self.board.cap.store(self.edge_cap, Relaxed);
        self.board.published.store(count, Relaxed);
        self.board.barrier.wait();
        speculate_claimed(self.board, &mut self.scratch);
        self.board.barrier.wait();
        self.wave_pos = 0;
        self.wave_len = count;
    }
}

/// Releases parked workers on drop — including during an orchestration
/// unwind, which would otherwise deadlock the barrier protocol (between
/// waves every worker sits at the top-of-loop barrier).
struct StopGuard<'b, 'a>(&'b Board<'a>);

impl Drop for StopGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Relaxed);
        self.0.barrier.wait();
    }
}

/// [`super::run_phase1_with_arena`] with intra-partition parallelism:
/// `threads` threads cooperate on this partition's walks through wave
/// speculation. Output — fragments, path map, residual partition state — is
/// **bit-identical** to the sequential kernel for every `threads` value;
/// see the [module docs](self) for why.
pub fn run_phase1_parallel(
    wp: &mut WorkingPartition,
    store: &FragmentStore,
    arena: &mut Phase1Arena,
    threads: usize,
) -> Phase1Output {
    run_phase1_parallel_tuned(wp, store, arena, threads, WaveTuning::default())
}

/// [`run_phase1_parallel`] with explicit wave tuning (tests force tiny caps
/// and widths to exercise the overflow and relaunch paths).
pub(crate) fn run_phase1_parallel_tuned(
    wp: &mut WorkingPartition,
    store: &FragmentStore,
    arena: &mut Phase1Arena,
    threads: usize,
    tuning: WaveTuning,
) -> Phase1Output {
    let threads = threads.max(1);
    if threads == 1 || wp.local_edges.is_empty() {
        // One thread (or nothing to walk): the wave machinery can only add
        // overhead around the identical sequential result.
        return run_phase1_with_arena(wp, store, arena);
    }

    let boundary = wp.boundary_vertices_sorted();
    let local_edges = std::mem::take(&mut wp.local_edges);
    let Phase1Arena { kernel, host, wave } = arena;
    kernel.load(&local_edges);
    let n = kernel.index.len();
    let m = local_edges.len();
    let width = (threads * tuning.width_per_thread).max(1);
    let edge_cap = (m / width).max(tuning.min_edge_cap);
    wave.prepare(threads, width, n, m);
    let WaveScratch { serial, stamps, specs, workers } = wave;

    let board = Board {
        tr: Traversal { edges: &local_edges, k: kernel },
        specs: specs.drain(..).map(|s| SpecCell(UnsafeCell::new(s))).collect(),
        published: AtomicUsize::new(0),
        claim: AtomicUsize::new(0),
        cap: AtomicUsize::new(edge_cap),
        stop: AtomicBool::new(false),
        barrier: Barrier::new(threads),
    };
    let mut idle_workers = std::mem::take(workers);

    let out = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads)
            .map(|_| {
                let board = &board;
                let ws = idle_workers.pop().expect("prepared one scratch per thread");
                scope.spawn(move || worker_loop(board, ws))
            })
            .collect();
        let out = {
            let _stop = StopGuard(&board);
            let mut driver = WaveDriver {
                board: &board,
                scratch: idle_workers.pop().expect("prepared one scratch per thread"),
                stamps,
                serial: *serial,
                wave_pos: 0,
                wave_len: 0,
                width,
                edge_cap,
            };
            let tr = board.tr;
            let out =
                run_phase1_core(wp, store, &local_edges, &boundary, &tr, host, Some(&mut driver));
            *serial = driver.serial;
            idle_workers.push(driver.scratch);
            out
            // StopGuard drops here: workers released and told to exit.
        };
        for h in handles {
            idle_workers.push(h.join().expect("phase-1 speculation worker panicked"));
        }
        out
    });

    *workers = idle_workers;
    *specs = board.specs.into_iter().map(|c| c.0.into_inner()).collect();
    out
}

/// A Phase-1 execution policy shared by the pipeline backends: a
/// [`Parallelism`] mode, a thread count, and an [`ArenaPool`] whose arenas
/// are checked out per execution and reused across merge levels.
///
/// Cloning shares the pool, so a backend and its per-level workers draw from
/// the same set of arenas.
#[derive(Clone, Debug, Default)]
pub struct Phase1Executor {
    mode: Parallelism,
    threads: Option<NonZeroUsize>,
    pool: ArenaPool,
}

impl Phase1Executor {
    /// Executor with the given scheduling mode and auto-detected threads.
    pub fn new(mode: Parallelism) -> Self {
        Phase1Executor { mode, threads: None, pool: ArenaPool::new() }
    }

    /// Sets the thread budget for intra-partition walks (and the
    /// [`Parallelism::Auto`] threshold). `0` restores auto-detection
    /// (`RAYON_NUM_THREADS`, else the host's available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = NonZeroUsize::new(threads);
        self
    }

    /// Replaces the scheduling mode, keeping the thread setting and pool.
    pub fn with_mode(mut self, mode: Parallelism) -> Self {
        self.mode = mode;
        self
    }

    /// The configured scheduling mode.
    pub fn mode(&self) -> Parallelism {
        self.mode
    }

    /// The thread budget: the explicit setting, else rayon's resolved global
    /// count (`RAYON_NUM_THREADS`, else available parallelism).
    pub fn resolved_threads(&self) -> usize {
        self.threads.map(NonZeroUsize::get).unwrap_or_else(rayon::current_num_threads)
    }

    /// Whether a merge level with `live_partitions` partitions should run
    /// intra-partition parallel walks under this executor's mode.
    pub fn intra_at(&self, live_partitions: usize) -> bool {
        match self.mode {
            Parallelism::PerPartition => false,
            Parallelism::IntraPartition => true,
            Parallelism::Auto => live_partitions < self.resolved_threads(),
        }
    }

    /// The arena pool backing this executor.
    pub fn pool(&self) -> &ArenaPool {
        &self.pool
    }

    /// Runs Phase 1 on `wp` with a pool arena: the wave walker over
    /// [`resolved_threads`](Self::resolved_threads) threads when `intra`,
    /// the sequential kernel otherwise. Both produce identical output.
    pub fn run(&self, wp: &mut WorkingPartition, store: &FragmentStore, intra: bool) -> Phase1Output {
        self.run_with_threads(wp, store, if intra { self.resolved_threads() } else { 1 })
    }

    /// [`run`](Self::run) with an explicit thread count (the BSP worker loop
    /// passes its per-worker budget through here).
    pub fn run_with_threads(
        &self,
        wp: &mut WorkingPartition,
        store: &FragmentStore,
        threads: usize,
    ) -> Phase1Output {
        let mut arena = self.pool.checkout();
        let out = if threads > 1 {
            run_phase1_parallel(wp, store, &mut arena, threads)
        } else {
            run_phase1_with_arena(wp, store, &mut arena)
        };
        self.pool.restore(arena);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_phase1;
    use super::*;
    use crate::state::LocalEdge;
    use euler_gen::synthetic;
    use euler_graph::{EdgeId, PartitionId, PartitionedGraph, VertexId};

    fn wp_from_edges(local: &[(u64, u64)], remote_at: &[u64]) -> WorkingPartition {
        WorkingPartition {
            id: PartitionId(0),
            leaves: vec![PartitionId(0)],
            level: 0,
            local_edges: local
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| LocalEdge {
                    edge: EdgeRef::Real(EdgeId(i as u64)),
                    u: VertexId(u),
                    v: VertexId(v),
                })
                .collect(),
            remote_edges: remote_at
                .iter()
                .enumerate()
                .map(|(i, &v)| crate::state::RemoteRef {
                    edge: EdgeId(1000 + i as u64),
                    local: VertexId(v),
                    remote: VertexId(9999),
                    local_leaf: PartitionId(0),
                    remote_leaf: PartitionId(1),
                })
                .collect(),
            isolated_vertices: 0,
        }
    }

    /// Runs the sequential kernel and the wave walker (under `tuning`, for
    /// each thread count) on clones of `wp` and asserts bit-identical
    /// everything: output, residual state, and stored fragments.
    fn assert_parallel_matches_sequential(wp: &WorkingPartition, tuning: WaveTuning) {
        let mut wp_seq = wp.clone();
        let store_seq = FragmentStore::new();
        let out_seq = run_phase1(&mut wp_seq, &store_seq);
        for threads in [2usize, 3, 8] {
            let mut wp_par = wp.clone();
            let store_par = FragmentStore::new();
            let mut arena = Phase1Arena::new();
            let out_par =
                run_phase1_parallel_tuned(&mut wp_par, &store_par, &mut arena, threads, tuning);
            assert_eq!(out_par.path_map, out_seq.path_map, "{threads} threads");
            assert_eq!(out_par.counts_before, out_seq.counts_before);
            assert_eq!(out_par.complexity, out_seq.complexity);
            assert_eq!(wp_par.local_edges, wp_seq.local_edges);
            assert_eq!(wp_par.remote_edges, wp_seq.remote_edges);
            let f_par = store_par.snapshot();
            let f_seq = store_seq.snapshot();
            assert_eq!(f_par.len(), f_seq.len());
            for (p, s) in f_par.iter().zip(&f_seq) {
                assert_eq!(p.id, s.id);
                assert_eq!(p.kind, s.kind);
                assert_eq!(p.edges, s.edges, "fragment {:?} at {threads} threads", p.id);
            }
        }
    }

    #[test]
    fn empty_partition() {
        // No local edges at all (remote-only partition).
        let wp = wp_from_edges(&[], &[0, 0]);
        assert_parallel_matches_sequential(&wp, WaveTuning::default());
    }

    #[test]
    fn single_vertex_self_loop() {
        let wp = wp_from_edges(&[(0, 0)], &[]);
        assert_parallel_matches_sequential(&wp, WaveTuning::default());
    }

    #[test]
    fn one_giant_cycle_with_no_odd_vertices() {
        // A whole torus as one partition: step 3 only, and the first walk
        // consumes every edge — the overflow fallback must engage (cap 8)
        // without changing the output.
        let g = synthetic::torus_grid(6, 6);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0; 36], 1).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let wp = WorkingPartition::from_partition(&pg.partitions()[0]);
        assert_parallel_matches_sequential(&wp, WaveTuning::default());
        assert_parallel_matches_sequential(
            &wp,
            WaveTuning { width_per_thread: 2, min_edge_cap: 8 },
        );
    }

    #[test]
    fn more_start_vertices_than_workers() {
        // 20 odd boundary vertices (each with one local edge to a shared hub
        // chain) against 2–8 workers: every wave is over-subscribed.
        let mut local = Vec::new();
        for i in 0..20u64 {
            local.push((i, 100 + i)); // odd pendant into distinct interiors
            local.push((100 + i, 100 + ((i + 1) % 20))); // interior ring
        }
        let remote: Vec<u64> = (0..20).collect();
        let wp = wp_from_edges(&local, &remote);
        assert_parallel_matches_sequential(&wp, WaveTuning::default());
        // Tiny waves force repeated relaunches mid-step.
        assert_parallel_matches_sequential(
            &wp,
            WaveTuning { width_per_thread: 1, min_edge_cap: 4 },
        );
    }

    #[test]
    fn random_partitions_match_across_thread_counts_and_tunings() {
        for seed in 0..6 {
            let g = synthetic::random_eulerian_connected(70, 9, 5, seed);
            let labels: Vec<u32> = (0..70).map(|i| (i % 3) as u32).collect();
            let a = euler_graph::PartitionAssignment::from_labels(labels, 3).unwrap();
            let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
            for p in pg.partitions() {
                let wp = WorkingPartition::from_partition(p);
                assert_parallel_matches_sequential(&wp, WaveTuning::default());
                assert_parallel_matches_sequential(
                    &wp,
                    WaveTuning { width_per_thread: 3, min_edge_cap: 5 },
                );
            }
        }
    }

    #[test]
    fn self_loops_and_multi_edges_in_parallel() {
        let wp = wp_from_edges(&[(0, 0), (0, 1), (1, 2), (2, 0), (0, 1), (1, 0), (2, 2)], &[]);
        assert_parallel_matches_sequential(&wp, WaveTuning::default());
        assert_parallel_matches_sequential(
            &wp,
            WaveTuning { width_per_thread: 1, min_edge_cap: 2 },
        );
    }

    #[test]
    fn one_arena_drives_many_parallel_runs() {
        // The same arena (with its wave scratch) serves different partitions
        // back to back; capacities never shrink and outputs stay identical.
        let mut arena = Phase1Arena::new();
        let mut caps = arena.capacities();
        for seed in [3u64, 1, 4] {
            let g = synthetic::random_eulerian_connected(60, 7, 5, seed);
            let labels: Vec<u32> = (0..60).map(|i| (i % 2) as u32).collect();
            let a = euler_graph::PartitionAssignment::from_labels(labels, 2).unwrap();
            let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
            for p in pg.partitions() {
                let mut wp_par = WorkingPartition::from_partition(p);
                let mut wp_seq = wp_par.clone();
                let store_par = FragmentStore::new();
                let store_seq = FragmentStore::new();
                let out_par = run_phase1_parallel(&mut wp_par, &store_par, &mut arena, 4);
                let out_seq = run_phase1(&mut wp_seq, &store_seq);
                assert_eq!(out_par.path_map, out_seq.path_map);
                assert_eq!(store_par.snapshot().len(), store_seq.snapshot().len());
                let grown = arena.capacities();
                assert!(grown.covers(&caps), "arena capacity shrank: {grown:?} < {caps:?}");
                caps = grown;
            }
        }
    }

    #[test]
    fn executor_modes_pick_intra_levels() {
        let seq = Phase1Executor::new(Parallelism::PerPartition).with_threads(8);
        assert!(!seq.intra_at(1));
        let intra = Phase1Executor::new(Parallelism::IntraPartition).with_threads(8);
        assert!(intra.intra_at(64));
        let auto = Phase1Executor::new(Parallelism::Auto).with_threads(8);
        assert!(!auto.intra_at(8), "wide level: per-partition fan-out");
        assert!(auto.intra_at(2), "narrow level: intra-partition waves");
        assert_eq!(auto.resolved_threads(), 8);
        assert_eq!(auto.mode(), Parallelism::Auto);
    }

    #[test]
    fn executor_runs_share_the_arena_pool() {
        let ex = Phase1Executor::new(Parallelism::IntraPartition).with_threads(2);
        let g = synthetic::torus_grid(4, 4);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0; 16], 1).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let store = FragmentStore::new();
        let mut wp = WorkingPartition::from_partition(&pg.partitions()[0]);
        let out = ex.run(&mut wp, &store, true);
        assert_eq!(out.path_map.local_edges_consumed, g.num_edges());
        assert_eq!(ex.pool().idle(), 1, "arena returned to the pool");
        let mut wp2 = WorkingPartition::from_partition(&pg.partitions()[0]);
        let store2 = FragmentStore::new();
        ex.run(&mut wp2, &store2, false);
        assert_eq!(ex.pool().idle(), 1, "same arena reused, not duplicated");
    }
}
