//! Reference Phase-1 implementation over hash-map traversal state.
//!
//! This is the original, straightforward transcription of Alg. 1: adjacency,
//! cursors and remaining degrees in `HashMap<VertexId, _>`, traversal starts
//! from a `BTreeSet`. It is retained verbatim as (a) the behavioural oracle
//! for the dense rewrite in the parent module — the two must produce
//! bit-identical fragments and path maps on every input — and (b) the
//! "before" side of the `BENCH_phase1.json` measurement.
//!
//! Do not optimise this module; its value is that it stays simple and
//! obviously faithful to the paper.

use super::{register_visible_ref, Phase1Output, PendingFragment, PivotRef};
use crate::fragment::{Fragment, FragmentId, FragmentKind, FragmentStore, TourEdge};
use crate::pathmap::{CycleEntry, PathEntry, PathMap};
use crate::state::{EdgeRef, LocalEdge, WorkingPartition};
use euler_graph::VertexId;
use std::collections::{BTreeSet, HashMap};

/// Hash-map traversal helper over the local edges of one partition.
struct Traverser<'a> {
    edges: &'a [LocalEdge],
    /// For every vertex, the indices of its incident local-edge slots.
    adjacency: HashMap<VertexId, Vec<usize>>,
    /// Per-vertex cursor into its adjacency list (already-consumed prefix).
    cursor: HashMap<VertexId, usize>,
    visited: Vec<bool>,
    /// Remaining (unvisited) local degree per vertex.
    remaining: HashMap<VertexId, u64>,
}

impl<'a> Traverser<'a> {
    fn new(edges: &'a [LocalEdge]) -> Self {
        let mut adjacency: HashMap<VertexId, Vec<usize>> = HashMap::new();
        let mut remaining: HashMap<VertexId, u64> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            adjacency.entry(e.u).or_default().push(i);
            adjacency.entry(e.v).or_default().push(i);
            *remaining.entry(e.u).or_insert(0) += 1;
            *remaining.entry(e.v).or_insert(0) += 1;
        }
        Traverser {
            edges,
            adjacency,
            cursor: HashMap::new(),
            visited: vec![false; edges.len()],
            remaining,
        }
    }

    fn remaining_degree(&self, v: VertexId) -> u64 {
        self.remaining.get(&v).copied().unwrap_or(0)
    }

    /// Next unvisited incident slot of `v`, if any.
    fn next_slot(&mut self, v: VertexId) -> Option<usize> {
        let list = self.adjacency.get(&v)?;
        let cursor = self.cursor.entry(v).or_insert(0);
        while *cursor < list.len() {
            let slot = list[*cursor];
            if !self.visited[slot] {
                return Some(slot);
            }
            *cursor += 1;
        }
        None
    }

    /// Maximal traversal from `start` along unvisited local edges, consuming
    /// them. Returns the tour edges in traversal order (possibly empty).
    fn walk(&mut self, start: VertexId) -> Vec<TourEdge> {
        let mut tour = Vec::new();
        let mut current = start;
        while let Some(slot) = self.next_slot(current) {
            self.visited[slot] = true;
            let e = &self.edges[slot];
            let next = if e.u == current { e.v } else { e.u };
            *self.remaining.get_mut(&e.u).expect("endpoint tracked") -= 1;
            *self.remaining.get_mut(&e.v).expect("endpoint tracked") -= 1;
            tour.push(match e.edge {
                EdgeRef::Real(edge) => TourEdge::Real { edge, from: current, to: next },
                EdgeRef::Virtual(fragment) => TourEdge::Virtual { fragment, from: current, to: next },
            });
            current = next;
        }
        tour
    }

    fn any_unvisited(&self) -> Option<usize> {
        self.visited.iter().position(|&v| !v)
    }
}

/// Runs the reference Phase 1 on `wp`, persisting fragments into `store` and
/// replacing the partition's local edges with the coarse OB-pair edges of the
/// paths found. Semantically identical to [`super::run_phase1`].
pub fn run_phase1_reference(wp: &mut WorkingPartition, store: &FragmentStore) -> Phase1Output {
    let counts_before = wp.vertex_type_counts();
    let complexity = counts_before.phase1_complexity();
    let remote_deg = wp.remote_degrees();
    let local_edges = std::mem::take(&mut wp.local_edges);
    let mut traverser = Traverser::new(&local_edges);

    let mut pending: Vec<PendingFragment> = Vec::new();
    // First position of every visible vertex in every pending fragment, used
    // by mergeInto to find pivots.
    let mut visible: HashMap<VertexId, PivotRef> = HashMap::new();

    // --- Step 1: OB paths. -------------------------------------------------
    let mut odd: BTreeSet<VertexId> = traverser
        .remaining
        .iter()
        .filter(|(_, &d)| d % 2 == 1)
        .map(|(&v, _)| v)
        .collect();
    while let Some(&start) = odd.iter().next() {
        odd.remove(&start);
        let tour = traverser.walk(start);
        debug_assert!(!tour.is_empty(), "odd-degree vertex must have an unvisited edge");
        let end = tour.last().expect("non-empty").to();
        debug_assert_ne!(start, end, "a maximal walk from an odd vertex ends elsewhere (Lemma 1)");
        odd.remove(&end);
        let idx = pending.len();
        register_visible_ref(&mut visible, idx, &tour);
        pending.push(PendingFragment { kind: FragmentKind::Path, edges: tour });
    }

    // --- Step 2: cycles at boundary vertices. -------------------------------
    let mut boundary: Vec<VertexId> = remote_deg.keys().copied().collect();
    boundary.sort_unstable();
    for b in boundary {
        if traverser.remaining_degree(b) == 0 {
            continue; // trivial singleton: nothing to record
        }
        let tour = traverser.walk(b);
        debug_assert_eq!(tour.last().map(|e| e.to()), Some(b), "even-degree traversal closes (Lemma 2)");
        let idx = pending.len();
        register_visible_ref(&mut visible, idx, &tour);
        pending.push(PendingFragment { kind: FragmentKind::Cycle, edges: tour });
    }

    // --- Step 3: cycles at internal vertices, spliced at pivots. ------------
    let mut internal_cycles_merged = 0u64;
    let mut pivot_lookups = 0u64;
    while let Some(slot) = traverser.any_unvisited() {
        let start = local_edges[slot].u;
        let tour = traverser.walk(start);
        debug_assert_eq!(tour.last().map(|e| e.to()), Some(start), "internal traversal closes (Lemma 2)");
        // mergeInto: find a pivot vertex shared with an existing fragment.
        pivot_lookups += 1;
        let pivot = tour
            .iter()
            .map(|e| e.from())
            .find(|v| visible.contains_key(v))
            .map(|v| (v, visible[&v]));
        match pivot {
            Some((pivot_vertex, at)) => {
                // Rotate the cycle to start at the pivot, then splice it into
                // the containing fragment at the pivot's current position.
                let rot = tour
                    .iter()
                    .position(|e| e.from() == pivot_vertex)
                    .expect("pivot is a tour endpoint");
                let mut rotated = Vec::with_capacity(tour.len());
                rotated.extend_from_slice(&tour[rot..]);
                rotated.extend_from_slice(&tour[..rot]);
                let target = &mut pending[at.fragment].edges;
                let insert_at = target
                    .iter()
                    .position(|e| e.from() == pivot_vertex)
                    .unwrap_or(target.len());
                for e in &rotated {
                    visible.entry(e.from()).or_insert(PivotRef { fragment: at.fragment });
                }
                target.splice(insert_at..insert_at, rotated);
                internal_cycles_merged += 1;
            }
            None => {
                // Disconnected local subgraph: keep as a standalone cycle.
                let idx = pending.len();
                register_visible_ref(&mut visible, idx, &tour);
                pending.push(PendingFragment { kind: FragmentKind::Cycle, edges: tour });
            }
        }
    }

    // --- Persist fragments and rebuild the in-memory state. -----------------
    let mut path_map = PathMap::new(wp.id, wp.level);
    path_map.internal_cycles_merged = internal_cycles_merged;
    path_map.local_edges_consumed = local_edges.len() as u64;
    let mut new_local = Vec::new();
    let mut materialization_longs = 0u64;
    for pf in pending {
        let fragment = Fragment {
            id: FragmentId(0),
            kind: pf.kind,
            level: wp.level,
            partition: wp.id,
            edges: pf.edges,
        };
        debug_assert!(fragment.is_well_formed(), "phase 1 produced a malformed fragment");
        materialization_longs += fragment.disk_longs();
        let start = fragment.start();
        let end = fragment.end();
        let kind = fragment.kind;
        let id = store.push(fragment);
        match kind {
            FragmentKind::Path => {
                path_map.paths.push(PathEntry { fragment: id, from: start, to: end });
                new_local.push(LocalEdge { edge: EdgeRef::Virtual(id), u: start, v: end });
            }
            FragmentKind::Cycle => {
                path_map.cycles.push(CycleEntry { fragment: id, anchor: start });
            }
        }
    }

    wp.local_edges = new_local;
    wp.isolated_vertices = 0; // internal vertices are dropped from memory
    // The stats mirror the dense kernel's splice-order index semantically
    // (same decisions, same persisted bytes), so the differential suites can
    // assert them bit-for-bit.
    let splice = super::SpliceStats {
        pivot_lookups,
        linked_splices: internal_cycles_merged,
        materialization_longs,
    };
    Phase1Output { path_map, counts_before, complexity, splice }
}
