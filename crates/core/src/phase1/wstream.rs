//! Phase 1 in the W-streaming model: one pass over a chunked edge stream,
//! `O(n log n)` resident traversal state, partial tours spilled through the
//! fragment store.
//!
//! The dense kernels ([`crate::phase1::arena`]) materialise every local edge
//! of a partition in a resident incidence arena before walking it — the last
//! unbounded-memory stage of the out-of-core spine. This module replaces that
//! arena with the chain machine of Glazik, Schiemann and Srivastav ("Finding
//! Euler Tours in One Pass in the W-Streaming Model"): edges arrive in
//! arbitrary chunked order through an [`EdgeStream`], and the only resident
//! state is
//!
//! * two `u32`-per-vertex arrays (`chain_at`, `degree`),
//! * a set of *open chains* — partial tours — each holding at most
//!   `Θ(log n)` buffered tour edges before it is flushed to the
//!   [`FragmentStore`] and replaced by a single coarse
//!   [`TourEdge::Virtual`] entry.
//!
//! Because at most one open chain end can exist per vertex (an end exists at
//! `v` iff `v`'s local degree so far is odd), there are at most `n/2` open
//! chains, so the resident footprint is `O(n)` words for the arrays plus
//! `O(n log n)` words of chain buffers — independent of `m`. The exact
//! footprint is tracked in Longs by [`WStreamStats`] and asserted by the
//! memory-envelope tests.
//!
//! The machine runs once, globally, over the whole stream, but keeps strictly
//! partition-local tours: a local edge `(u, v)` (both endpoints in the same
//! partition under the [`PartitionAssignment`]) feeds that partition's
//! chains, while a cut edge becomes a [`RemoteRef`] on both sides, exactly as
//! the dense partitioner would produce. The residue — one coarse local edge
//! per still-open chain, plus all remote edges — is packaged into level-0
//! [`WorkingPartition`]s, and the ordinary merge-tree walk (in-process or
//! BSP) takes over from there. Closed partition-local cycles are emitted as
//! [`FragmentKind::Cycle`] fragments and spliced by Phase 3 like any other.

use crate::error::EulerError;
use crate::fragment::{Fragment, FragmentId, FragmentKind, FragmentStore, TourEdge};
use crate::state::{EdgeRef, LocalEdge, RemoteRef, WorkingPartition};
use euler_graph::stream::EdgeStream;
use euler_graph::{
    EdgeId, GraphError, MetaGraph, PartitionAssignment, PartitionId, StreamOrder, VertexId,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Sentinel for "no open chain end at this vertex".
const NO_CHAIN: u32 = u32::MAX;

/// Exact resident-state accounting for one W-streaming Phase-1 pass, in
/// 8-byte Longs (the paper's memory unit).
///
/// `resident_longs`/`peak_resident_longs` cover the *traversal* state that
/// replaces the dense incidence arena: the two per-vertex `u32` arrays
/// (charged at two vertices per Long), every open chain (4 Longs of header
/// plus 3 per buffered tour edge) and the vertex-grouped self-loop dedup
/// set. Residual local/remote edges handed to the merge-tree walk are
/// reported separately (they exist identically in the dense path and are
/// accounted by [`WorkingPartition::memory_longs`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WStreamStats {
    /// Vertices covered by the partition assignment.
    pub num_vertices: u64,
    /// Stream entries consumed (`m` for edge-id order, `2m` vertex-grouped).
    pub entries_streamed: u64,
    /// Distinct edges ingested (local + cut + self-loops).
    pub edges_ingested: u64,
    /// Open-chain buffer capacity before a flush (tour edges).
    pub chunk_edges: u64,
    /// Resident traversal state at end of stream, in Longs.
    pub resident_longs: u64,
    /// Peak resident traversal state over the pass, in Longs.
    pub peak_resident_longs: u64,
    /// Fragments written through the store (paths + cycles).
    pub fragments_emitted: u64,
    /// Closed partition-local cycles emitted.
    pub cycles_emitted: u64,
    /// Open-chain buffers flushed to path fragments mid-stream.
    pub open_chain_flushes: u64,
    /// Coarse local edges handed to the merge-tree walk.
    pub residual_local_edges: u64,
    /// Remote (cut) edge references handed to the merge-tree walk.
    pub residual_remote_edges: u64,
}

/// Everything the pipeline needs to continue after a W-streaming pass.
#[derive(Debug)]
pub struct WStreamOutcome {
    /// Level-0 working state for every partition id `0..P`, sorted by id.
    pub states: Vec<WorkingPartition>,
    /// Partition meta-graph with cut-edge weights, equivalent to
    /// [`MetaGraph::from_partitioned`] on the dense path.
    pub meta: MetaGraph,
    /// Resident-state accounting for the pass.
    pub stats: WStreamStats,
    /// First odd-degree vertex (with its degree), if any — the streaming
    /// equivalent of `Csr::first_odd_vertex` for the Eulerian precondition.
    pub first_odd: Option<(VertexId, u64)>,
}

/// An open chain: a partial tour whose two endpoints are still extendable.
///
/// The buffer holds the most recent tour edges; older spans have been
/// flushed to the fragment store and are represented by a single
/// [`TourEdge::Virtual`] entry. Invariants: the buffer is never empty,
/// `buf.front().from() == head` and `buf.back().to() == tail`, and
/// `head != tail` (equal ends close immediately into a cycle).
struct Chain {
    partition: PartitionId,
    head: VertexId,
    tail: VertexId,
    buf: VecDeque<TourEdge>,
}

/// The streaming chain machine. One instance processes the whole stream;
/// per-vertex arrays are global because every local edge belongs wholly to
/// one partition, so a vertex's chain slot is only ever touched by its own
/// partition's edges.
struct Machine<'a> {
    assignment: &'a PartitionAssignment,
    store: &'a FragmentStore,
    /// Flush threshold: buffers longer than this become path fragments.
    chunk: usize,
    n: u64,
    /// Longs charged for the two `u32`-per-vertex arrays.
    array_longs: u64,
    /// `chain_at[v]` = slab index of the chain with an open end at `v`.
    chain_at: Vec<u32>,
    /// Total degree seen so far per vertex (saturating; parity is exact for
    /// any graph whose maximum degree fits in a `u32`).
    degree: Vec<u32>,
    chains: Vec<Option<Chain>>,
    free: Vec<u32>,
    /// Longs held by open chains (4 per chain + 3 per buffered edge).
    chain_longs: u64,
    /// Vertex-grouped only: edge ids of self-loops seen once in the current
    /// source group (a self-loop appears twice in its vertex's adjacency).
    loop_pending: HashSet<u64>,
    current_source: u64,
    /// Whether entries are half-edges that need endpoint-order dedup.
    dedup_half_edges: bool,
    /// Residual remote references per partition.
    remote: Vec<Vec<RemoteRef>>,
    /// Cut half-edge counts per ordered partition pair (halved at the end).
    cut_weights: HashMap<(PartitionId, PartitionId), u64>,
    /// First error raised inside the sink (sinks cannot return `Result`).
    err: Option<EulerError>,
    stats: WStreamStats,
}

/// Validates one stream entry against the assignment's vertex universe.
///
/// This is the only place untrusted stream data crosses into the machine,
/// so it is index-free and panic-free (enforced by `euler-lint`'s
/// `no-panic-in-decode` rule); everything downstream may trust `u, v < n`.
fn checked_entry(u: u64, v: u64, n: u64) -> Result<(), EulerError> {
    if u < n && v < n {
        Ok(())
    } else {
        let largest = if u < v { v } else { u };
        Err(EulerError::Graph(GraphError::IncompleteAssignment {
            expected: largest.saturating_add(1),
            actual: n,
        }))
    }
}

impl<'a> Machine<'a> {
    fn new(
        assignment: &'a PartitionAssignment,
        store: &'a FragmentStore,
        chunk: usize,
        dedup_half_edges: bool,
    ) -> Self {
        let n = assignment.num_vertices();
        let p = assignment.num_partitions() as usize;
        let array_longs = n.div_ceil(2) * 2;
        let mut stats = WStreamStats {
            num_vertices: n,
            chunk_edges: chunk as u64,
            resident_longs: array_longs,
            peak_resident_longs: array_longs,
            ..WStreamStats::default()
        };
        stats.peak_resident_longs = stats.resident_longs;
        Machine {
            assignment,
            store,
            chunk,
            n,
            array_longs,
            chain_at: vec![NO_CHAIN; n as usize],
            degree: vec![0; n as usize],
            chains: Vec::new(),
            free: Vec::new(),
            chain_longs: 0,
            loop_pending: HashSet::new(),
            current_source: u64::MAX,
            dedup_half_edges,
            remote: vec![Vec::new(); p],
            cut_weights: HashMap::new(),
            err: None,
            stats,
        }
    }

    /// Recomputes the resident counter and tracks the peak. Called after
    /// every state mutation that can grow the footprint.
    fn touch(&mut self) {
        self.stats.resident_longs =
            self.array_longs + self.chain_longs + self.loop_pending.len() as u64;
        if self.stats.resident_longs > self.stats.peak_resident_longs {
            self.stats.peak_resident_longs = self.stats.resident_longs;
        }
    }

    /// Routes one `(edge_id, u, v)` entry. For vertex-grouped streams `u` is
    /// the group's source vertex and each undirected edge arrives twice.
    fn ingest(&mut self, e: u64, u: u64, v: u64) {
        if self.err.is_some() {
            return;
        }
        if let Err(err) = checked_entry(u, v, self.n) {
            self.err = Some(err);
            return;
        }
        self.stats.entries_streamed += 1;
        let (uv, vv) = (VertexId(u), VertexId(v));
        let pu = self.assignment.partition_of(uv);
        let pv = self.assignment.partition_of(vv);
        if self.dedup_half_edges {
            // Half-edge entry grouped under source u.
            self.degree[u as usize] = self.degree[u as usize].saturating_add(1);
            if u != self.current_source {
                self.loop_pending.clear();
                self.current_source = u;
            }
            if u == v {
                // A self-loop appears twice in its own group; process the
                // first occurrence, drop the second.
                if self.loop_pending.remove(&e) {
                    self.touch();
                    return;
                }
                self.loop_pending.insert(e);
                self.touch();
                self.ingest_edge(EdgeId(e), uv, vv, pu, pv);
            } else if pu == pv {
                // Local edges are processed once, at their smaller endpoint's
                // group (sources ascend, so that group comes first).
                if u < v {
                    self.ingest_edge(EdgeId(e), uv, vv, pu, pv);
                }
            } else {
                // Cut edges are processed on every occurrence: each side
                // contributes its own RemoteRef, like the dense partitioner.
                self.ingest_edge(EdgeId(e), uv, vv, pu, pv);
            }
        } else {
            // Edge-id order: each undirected edge arrives exactly once.
            self.degree[u as usize] = self.degree[u as usize].saturating_add(1);
            self.degree[v as usize] = self.degree[v as usize].saturating_add(1);
            if pu == pv {
                self.ingest_edge(EdgeId(e), uv, vv, pu, pv);
            } else {
                // Push both sides' RemoteRefs so the residue matches the
                // dense path, where every cut edge appears in both
                // partitions' remote lists.
                self.push_remote(EdgeId(e), uv, vv, pu, pv);
                self.push_remote(EdgeId(e), vv, uv, pv, pu);
                self.stats.edges_ingested += 1;
            }
        }
    }

    /// Ingests a validated, deduplicated edge into the chain machine (local)
    /// or the remote residue (cut).
    fn ingest_edge(&mut self, e: EdgeId, u: VertexId, v: VertexId, pu: PartitionId, pv: PartitionId) {
        if pu != pv {
            // Only reached on vertex-grouped streams (edge-id order handles
            // cut edges inline in `ingest`): this occurrence contributes its
            // own side's RemoteRef, and the edge is counted once, at its
            // smaller endpoint's occurrence.
            self.push_remote(e, u, v, pu, pv);
            if u < v {
                self.stats.edges_ingested += 1;
            }
            return;
        }
        self.stats.edges_ingested += 1;
        if u == v {
            // Self-loops are closed cycles on arrival; they never enter a
            // chain (they would violate the one-end-per-vertex invariant).
            self.emit_cycle(pu, vec![TourEdge::Real { edge: e, from: u, to: v }]);
            return;
        }
        let cu = self.chain_at[u.index()];
        let cv = self.chain_at[v.index()];
        match (cu != NO_CHAIN, cv != NO_CHAIN) {
            (false, false) => self.new_chain(pu, e, u, v),
            (true, false) => self.extend(cu, e, u, v),
            (false, true) => self.extend(cv, e, v, u),
            (true, true) if cu == cv => self.close(cu, e, u, v),
            (true, true) => self.merge(cu, cv, e, u, v),
        }
    }

    fn push_remote(&mut self, e: EdgeId, local: VertexId, remote: VertexId, lp: PartitionId, rp: PartitionId) {
        self.remote[lp.index()].push(RemoteRef {
            edge: e,
            local,
            remote,
            local_leaf: lp,
            remote_leaf: rp,
        });
        let key = if lp.0 <= rp.0 { (lp, rp) } else { (rp, lp) };
        *self.cut_weights.entry(key).or_insert(0) += 1;
    }

    fn alloc_chain(&mut self, chain: Chain) -> u32 {
        self.chain_longs += 4 + 3 * chain.buf.len() as u64;
        if let Some(slot) = self.free.pop() {
            self.chains[slot as usize] = Some(chain);
            slot
        } else {
            self.chains.push(Some(chain));
            (self.chains.len() - 1) as u32
        }
    }

    fn free_chain(&mut self, slot: u32) -> Chain {
        let chain = self.chains[slot as usize].take().expect("live chain slot");
        self.chain_longs -= 4 + 3 * chain.buf.len() as u64;
        self.free.push(slot);
        chain
    }

    /// Case 1: neither endpoint has an open end — start a fresh chain u→v.
    fn new_chain(&mut self, p: PartitionId, e: EdgeId, u: VertexId, v: VertexId) {
        let mut buf = VecDeque::new();
        buf.push_back(TourEdge::Real { edge: e, from: u, to: v });
        let slot = self.alloc_chain(Chain { partition: p, head: u, tail: v, buf });
        self.chain_at[u.index()] = slot;
        self.chain_at[v.index()] = slot;
        self.touch();
    }

    /// Reverses a chain in place (used to orient before append/close/merge).
    /// Costs O(buffer) = O(log n), within the W-streaming processing budget.
    fn reverse_chain(chain: &mut Chain) {
        let mut tmp: Vec<TourEdge> = chain.buf.drain(..).map(|t| t.reversed()).collect();
        tmp.reverse();
        chain.buf.extend(tmp);
        std::mem::swap(&mut chain.head, &mut chain.tail);
    }

    /// Case 2: exactly one endpoint (`u`) has an open end — orient that
    /// chain to finish at `u` and append u→v.
    fn extend(&mut self, slot: u32, e: EdgeId, u: VertexId, v: VertexId) {
        let chain = self.chains[slot as usize].as_mut().expect("live chain slot");
        if chain.tail == u {
            chain.buf.push_back(TourEdge::Real { edge: e, from: u, to: v });
            chain.tail = v;
        } else {
            debug_assert_eq!(chain.head, u);
            chain.buf.push_front(TourEdge::Real { edge: e, from: v, to: u });
            chain.head = v;
        }
        self.chain_longs += 3;
        self.chain_at[u.index()] = NO_CHAIN;
        self.chain_at[v.index()] = slot;
        self.touch();
        self.maybe_flush(slot);
    }

    /// Case 3: both ends belong to the same chain — the edge closes it into
    /// a partition-local cycle, emitted as a fragment immediately.
    fn close(&mut self, slot: u32, e: EdgeId, u: VertexId, v: VertexId) {
        self.chain_at[u.index()] = NO_CHAIN;
        self.chain_at[v.index()] = NO_CHAIN;
        let mut chain = self.free_chain(slot);
        // Orient the chain to run v → … → u, then append u→v: a cycle
        // anchored at v.
        if chain.tail != u {
            Self::reverse_chain(&mut chain);
        }
        debug_assert_eq!(chain.tail, u);
        debug_assert_eq!(chain.head, v);
        chain.buf.push_back(TourEdge::Real { edge: e, from: u, to: v });
        let partition = chain.partition;
        self.emit_cycle(partition, chain.buf.into_iter().collect());
    }

    /// Case 4: the ends belong to two different chains — join them through
    /// the new edge. The merged chain's far ends stay distinct (each vertex
    /// holds at most one open end), so no further closure can be pending.
    fn merge(&mut self, c1: u32, c2: u32, e: EdgeId, u: VertexId, v: VertexId) {
        self.chain_at[u.index()] = NO_CHAIN;
        self.chain_at[v.index()] = NO_CHAIN;
        let mut second = self.free_chain(c2);
        if second.head != v {
            Self::reverse_chain(&mut second);
        }
        debug_assert_eq!(second.head, v);
        let far = second.tail;
        let moved = second.buf.len() as u64;
        let chain = self.chains[c1 as usize].as_mut().expect("live chain slot");
        if chain.tail != u {
            Self::reverse_chain(chain);
        }
        debug_assert_eq!(chain.tail, u);
        chain.buf.push_back(TourEdge::Real { edge: e, from: u, to: v });
        chain.buf.extend(second.buf);
        chain.tail = far;
        // The new edge, plus c2's buffered entries (free_chain released them
        // with c2's header, but they live on inside c1's buffer).
        self.chain_longs += 3 + 3 * moved;
        self.chain_at[far.index()] = c1;
        self.touch();
        self.maybe_flush(c1);
    }

    /// Flushes an over-long chain buffer to a path fragment, leaving a
    /// single coarse virtual edge behind. Nested flushes compose: the next
    /// fragment's first entry may itself be virtual, and Phase 3 expands
    /// them recursively.
    fn maybe_flush(&mut self, slot: u32) {
        let (edges, partition) = {
            let chain = self.chains[slot as usize].as_mut().expect("live chain slot");
            if chain.buf.len() <= self.chunk {
                return;
            }
            (chain.buf.drain(..).collect::<Vec<TourEdge>>(), chain.partition)
        };
        let released = 3 * (edges.len() as u64 - 1);
        let fid = self.push_fragment(FragmentKind::Path, partition, edges);
        let chain = self.chains[slot as usize].as_mut().expect("live chain slot");
        chain.buf.push_back(TourEdge::Virtual { fragment: fid, from: chain.head, to: chain.tail });
        self.chain_longs -= released;
        self.stats.open_chain_flushes += 1;
        self.touch();
    }

    fn emit_cycle(&mut self, partition: PartitionId, edges: Vec<TourEdge>) {
        self.push_fragment(FragmentKind::Cycle, partition, edges);
        self.stats.cycles_emitted += 1;
        self.touch();
    }

    fn push_fragment(&mut self, kind: FragmentKind, partition: PartitionId, edges: Vec<TourEdge>) -> FragmentId {
        self.stats.fragments_emitted += 1;
        self.store.push(Fragment { id: FragmentId(0), kind, level: 0, partition, edges })
    }

    /// Consumes the machine after the stream ends: residualises every still
    /// open chain into one coarse local edge, packages per-partition working
    /// states and the weighted meta-graph, and reports the Eulerian check.
    fn finish(mut self) -> Result<WStreamOutcome, EulerError> {
        if let Some(err) = self.err {
            return Err(err);
        }
        let p = self.assignment.num_partitions() as usize;
        let mut locals: Vec<Vec<LocalEdge>> = vec![Vec::new(); p];
        for slot in 0..self.chains.len() {
            if self.chains[slot].is_none() {
                continue;
            }
            let chain = self.free_chain(slot as u32);
            self.chain_at[chain.head.index()] = NO_CHAIN;
            self.chain_at[chain.tail.index()] = NO_CHAIN;
            let edge = if chain.buf.len() == 1 {
                match chain.buf[0] {
                    TourEdge::Real { edge, .. } => EdgeRef::Real(edge),
                    TourEdge::Virtual { fragment, .. } => EdgeRef::Virtual(fragment),
                }
            } else {
                let partition = chain.partition;
                let edges: Vec<TourEdge> = chain.buf.into_iter().collect();
                EdgeRef::Virtual(self.push_fragment(FragmentKind::Path, partition, edges))
            };
            locals[chain.partition.index()].push(LocalEdge { edge, u: chain.head, v: chain.tail });
        }
        self.touch();

        // Isolated vertices (degree 0) per partition, for faithful level-0
        // vertex accounting — matching `Partition::isolated` on the dense
        // path.
        let mut isolated = vec![0u64; p];
        let mut first_odd = None;
        for v in 0..self.n as usize {
            let d = self.degree[v];
            if d == 0 {
                isolated[self.assignment.partition_of(VertexId(v as u64)).index()] += 1;
            }
            if first_odd.is_none() && d % 2 == 1 {
                first_odd = Some((VertexId(v as u64), d as u64));
            }
        }

        let mut states = Vec::with_capacity(p);
        for id in 0..p {
            let local_edges = std::mem::take(&mut locals[id]);
            let remote_edges = std::mem::take(&mut self.remote[id]);
            self.stats.residual_local_edges += local_edges.len() as u64;
            self.stats.residual_remote_edges += remote_edges.len() as u64;
            states.push(WorkingPartition {
                id: PartitionId(id as u32),
                leaves: vec![PartitionId(id as u32)],
                level: 0,
                local_edges,
                remote_edges,
                isolated_vertices: isolated[id],
            });
        }

        // Each cut edge was counted once per side; halve to get the
        // undirected cut weight, like `MetaGraph::from_partitioned`.
        let vertices: Vec<PartitionId> = (0..p as u32).map(PartitionId).collect();
        let pairs: Vec<(PartitionId, PartitionId, u64)> =
            self.cut_weights.iter().map(|(&(a, b), &w)| (a, b, w / 2)).collect();
        let meta = MetaGraph::from_weights(vertices, &pairs);

        Ok(WStreamOutcome { states, meta, stats: self.stats, first_odd })
    }
}

/// Default open-chain buffer capacity: `Θ(log n)` tour edges, the W-streaming
/// sweet spot between resident state and fragment count.
pub fn default_chunk_edges(num_vertices: u64) -> usize {
    let lg = 64 - num_vertices.saturating_add(2).leading_zeros() as usize;
    8 * lg.max(1)
}

/// Runs the W-streaming Phase-1 pass: one pass over `stream`, partial tours
/// through `store`, residual state per partition of `assignment`.
///
/// `chunk_edges` bounds each open chain's resident buffer; pass `0` for the
/// `Θ(log n)` default. Works with both stream orders: edge-id-ordered
/// streams feed each edge once, vertex-grouped streams are deduplicated by
/// endpoint order (and per-group for self-loops) using the edge ids
/// delivered by [`EdgeStream::stream_with_ids`].
pub fn stream_phase1(
    stream: &mut dyn EdgeStream,
    assignment: &PartitionAssignment,
    store: &FragmentStore,
    chunk_edges: usize,
) -> Result<WStreamOutcome, EulerError> {
    let n = assignment.num_vertices();
    if let Some(sn) = stream.num_vertices() {
        if sn != n {
            return Err(EulerError::Graph(GraphError::IncompleteAssignment {
                expected: sn,
                actual: n,
            }));
        }
    }
    let chunk = if chunk_edges == 0 { default_chunk_edges(n) } else { chunk_edges };
    let dedup = stream.order() == StreamOrder::VertexGrouped;
    let mut machine = Machine::new(assignment, store, chunk, dedup);
    stream.stream_with_ids(&mut |batch| {
        for &(e, u, v) in batch {
            machine.ingest(e, u, v);
        }
    })?;
    machine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentStore;
    use euler_graph::{GraphBuilder, GraphEdgeStream};

    fn one_part(n: u64) -> PartitionAssignment {
        PartitionAssignment::from_labels(vec![0; n as usize], 1).unwrap()
    }

    fn store() -> FragmentStore {
        FragmentStore::new()
    }

    #[test]
    fn triangle_closes_into_a_single_cycle_fragment() {
        let mut g = GraphBuilder::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let g = g.build().unwrap();
        let store = store();
        let mut stream = GraphEdgeStream::new(&g);
        let out = stream_phase1(&mut stream, &one_part(3), &store, 0).unwrap();
        assert_eq!(out.stats.cycles_emitted, 1);
        assert_eq!(out.stats.edges_ingested, 3);
        assert_eq!(store.len(), 1);
        assert!(out.states[0].local_edges.is_empty());
        assert!(out.states[0].remote_edges.is_empty());
        assert_eq!(out.first_odd, None);
        let frag = store.get(crate::fragment::FragmentId(0));
        assert_eq!(frag.kind, FragmentKind::Cycle);
        assert_eq!(frag.edges.len(), 3);
        assert_eq!(frag.start(), frag.end());
    }

    #[test]
    fn self_loop_is_an_immediate_one_edge_cycle() {
        let mut g = GraphBuilder::with_vertices(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let g = g.build().unwrap();
        let store = store();
        let mut stream = GraphEdgeStream::new(&g);
        let out = stream_phase1(&mut stream, &one_part(2), &store, 0).unwrap();
        // Self-loop cycle + the 0-1-0 multi-edge cycle.
        assert_eq!(out.stats.cycles_emitted, 2);
        assert_eq!(out.stats.edges_ingested, 3);
        assert_eq!(out.first_odd, None);
        let kinds: Vec<usize> =
            store.snapshot().iter().map(|f| f.edges.len()).collect();
        assert!(kinds.contains(&1), "one-edge self-loop cycle expected: {kinds:?}");
    }

    #[test]
    fn open_path_residualises_as_one_coarse_local_edge() {
        // 0-1-2-3-4 path with even interior degrees is not Eulerian, but the
        // machine must still residualise it: one open chain end at 0, one at
        // 4.
        let mut g = GraphBuilder::with_vertices(5);
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        let g = g.build().unwrap();
        let store = store();
        let mut stream = GraphEdgeStream::new(&g);
        let out = stream_phase1(&mut stream, &one_part(5), &store, 2).unwrap();
        assert_eq!(out.states[0].local_edges.len(), 1);
        let le = out.states[0].local_edges[0];
        let ends = [le.u, le.v];
        assert!(ends.contains(&VertexId(0)) && ends.contains(&VertexId(4)), "{ends:?}");
        assert!(matches!(le.edge, EdgeRef::Virtual(_)), "4 edges > chunk 2 must flush");
        assert!(out.stats.open_chain_flushes >= 1);
        assert_eq!(out.first_odd, Some((VertexId(0), 1)));
        // Expanding the residual fragment chain recovers all 4 real edges.
        assert_eq!(store.total_real_edges(), 4);
    }

    #[test]
    fn cut_edges_become_remote_refs_on_both_sides_with_halved_weights() {
        // Two vertices, two partitions, two parallel cut edges.
        let mut g = GraphBuilder::with_vertices(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let g = g.build().unwrap();
        let assignment = PartitionAssignment::from_labels(vec![0, 1], 2).unwrap();
        let store = store();
        let mut stream = GraphEdgeStream::new(&g);
        let out = stream_phase1(&mut stream, &assignment, &store, 0).unwrap();
        assert_eq!(out.states.len(), 2);
        assert_eq!(out.states[0].remote_edges.len(), 2);
        assert_eq!(out.states[1].remote_edges.len(), 2);
        assert_eq!(out.stats.residual_remote_edges, 4);
        assert_eq!(out.meta.total_weight(), 2, "undirected cut weight must be halved");
        for r in &out.states[0].remote_edges {
            assert_eq!(r.local, VertexId(0));
            assert_eq!(r.remote, VertexId(1));
            assert_eq!(r.local_leaf, PartitionId(0));
            assert_eq!(r.remote_leaf, PartitionId(1));
        }
    }

    #[test]
    fn vertex_grouped_and_edge_id_order_agree_on_totals() {
        // A 4-vertex Eulerian multigraph with a self-loop and a multi-edge.
        let mut g = GraphBuilder::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(1, 3);
        g.add_edge(3, 1);
        g.add_edge(2, 2);
        let g = g.build().unwrap();
        let assignment = one_part(4);

        let store_vg = store();
        let out_vg =
            stream_phase1(&mut GraphEdgeStream::new(&g), &assignment, &store_vg, 0).unwrap();

        // The same edge set through an edge-id-ordered producer (each edge
        // delivered exactly once, like an edge-list file).
        struct Listed(Vec<(u64, u64)>);
        impl EdgeStream for Listed {
            fn order(&self) -> StreamOrder {
                StreamOrder::EdgeIdOrder
            }
            fn num_vertices(&self) -> Option<u64> {
                Some(4)
            }
            fn stream(
                &mut self,
                sink: &mut euler_graph::stream::EdgeBatchSink<'_>,
            ) -> Result<euler_graph::StreamSummary, GraphError> {
                sink(&self.0);
                Ok(euler_graph::StreamSummary {
                    num_vertices: 4,
                    entries: self.0.len() as u64,
                })
            }
        }
        let mut id_stream =
            Listed(vec![(0, 1), (1, 2), (2, 0), (1, 3), (3, 1), (2, 2)]);
        let store_id = store();
        let out_id = stream_phase1(&mut id_stream, &assignment, &store_id, 0).unwrap();

        assert_eq!(out_vg.stats.edges_ingested, 6);
        assert_eq!(out_id.stats.edges_ingested, 6);
        assert_eq!(out_vg.stats.entries_streamed, 12);
        assert_eq!(out_id.stats.entries_streamed, 6);
        // Every real edge ends up exactly once in fragments + residuals.
        let covered = |store: &FragmentStore, out: &WStreamOutcome| {
            let residual_real = out
                .states
                .iter()
                .flat_map(|s| &s.local_edges)
                .filter(|l| matches!(l.edge, EdgeRef::Real(_)))
                .count() as u64;
            store.total_real_edges() + residual_real
        };
        assert_eq!(covered(&store_vg, &out_vg), 6);
        assert_eq!(covered(&store_id, &out_id), 6);
        assert_eq!(out_vg.first_odd, None);
        assert_eq!(out_id.first_odd, None);
    }

    #[test]
    fn resident_state_tracks_arrays_plus_open_chains() {
        let mut g = GraphBuilder::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let g = g.build().unwrap();
        let store = store();
        let mut stream = GraphEdgeStream::new(&g);
        let out = stream_phase1(&mut stream, &one_part(4), &store, 8).unwrap();
        // 4 vertices → 4 Longs of arrays; residualising frees the chains.
        assert_eq!(out.stats.resident_longs, 4);
        // Peak: arrays + two 1-edge chains (4 + 3 Longs each).
        assert_eq!(out.stats.peak_resident_longs, 4 + 2 * 7);
    }

    #[test]
    fn out_of_range_vertex_is_a_typed_error() {
        struct Bogus;
        impl EdgeStream for Bogus {
            fn order(&self) -> StreamOrder {
                StreamOrder::EdgeIdOrder
            }
            fn num_vertices(&self) -> Option<u64> {
                None
            }
            fn stream(
                &mut self,
                sink: &mut euler_graph::stream::EdgeBatchSink<'_>,
            ) -> Result<euler_graph::StreamSummary, GraphError> {
                sink(&[(0, 7)]);
                Ok(euler_graph::StreamSummary { num_vertices: 8, entries: 1 })
            }
        }
        let store = store();
        let err = stream_phase1(&mut Bogus, &one_part(2), &store, 0).unwrap_err();
        assert!(
            matches!(
                err,
                EulerError::Graph(GraphError::IncompleteAssignment { expected: 8, actual: 2 })
            ),
            "{err}"
        );
    }
}
