//! Deprecated pre-pipeline entry points.
//!
//! The two drivers that used to live here — the in-process
//! [`find_euler_circuit`]/[`run_partitioned`] runner and the BSP-engine
//! [`DistributedRunner`] — are now thin wrappers over the unified
//! [`crate::pipeline`]: both delegate to the same merge-tree walk
//! ([`crate::pipeline::run_with_backend`]) on [`InProcessBackend`] and
//! [`BspBackend`] respectively. They are kept so existing callers (and this
//! module's test suite) prove the pipeline behaves identically; new code
//! should use [`EulerPipeline`](crate::pipeline::EulerPipeline) or
//! [`crate::pipeline::run_with_backend`].

use crate::config::EulerConfig;
use crate::error::EulerError;
use crate::merge_tree::MergeTree;
use crate::phase3::CircuitResult;
use crate::pipeline::{run_with_backend, BspBackend, InProcessBackend};
pub use crate::pipeline::{LevelPartitionReport, RunReport};
use euler_graph::{Graph, PartitionAssignment};

/// Runs the full pipeline and returns just the circuit result.
///
/// See [`run_partitioned`] for the variant that also returns the detailed
/// [`RunReport`].
#[deprecated(note = "use EulerPipeline::builder() or pipeline::run_with_backend with InProcessBackend")]
pub fn find_euler_circuit(
    g: &Graph,
    assignment: &PartitionAssignment,
    config: &EulerConfig,
) -> Result<CircuitResult, EulerError> {
    #[allow(deprecated)]
    run_partitioned(g, assignment, config).map(|(result, _)| result)
}

/// Runs the full pipeline (Phases 1–3) in-process and returns the circuit
/// together with the per-level report used by the experiment harnesses.
#[deprecated(note = "use EulerPipeline::builder() or pipeline::run_with_backend with InProcessBackend")]
pub fn run_partitioned(
    g: &Graph,
    assignment: &PartitionAssignment,
    config: &EulerConfig,
) -> Result<(CircuitResult, RunReport), EulerError> {
    run_with_backend(g, assignment, config, &InProcessBackend::new())
}

/// Outcome of a distributed run.
#[deprecated(note = "use EulerPipeline with BspBackend; RunReport::engine carries the engine stats")]
pub struct DistributedOutcome {
    /// The reconstructed circuit(s).
    pub result: CircuitResult,
    /// Superstep-level statistics from the BSP engine (compute/shuffle/
    /// memory per superstep, modelled platform overhead).
    pub engine_stats: euler_bsp::EngineStats,
    /// The merge tree used.
    pub merge_tree: MergeTree,
}

/// Executes the algorithm on the `euler-bsp` engine, one worker per
/// partition (the paper's one-executor-per-partition deployment) unless the
/// engine config says otherwise.
#[deprecated(note = "use EulerPipeline::builder().backend(BspBackend::with_engine(..))")]
pub struct DistributedRunner {
    /// Engine configuration (worker count, cost model).
    pub engine: euler_bsp::BspConfig,
    /// Algorithm configuration.
    pub config: EulerConfig,
}

#[allow(deprecated)]
impl DistributedRunner {
    /// Creates a runner with one worker per partition and the given algorithm
    /// configuration.
    pub fn new(config: EulerConfig) -> Self {
        DistributedRunner { engine: euler_bsp::BspConfig::one_worker_per_partition(), config }
    }

    /// Sets the engine configuration.
    pub fn with_engine(mut self, engine: euler_bsp::BspConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Runs the full pipeline.
    pub fn run(
        &self,
        g: &Graph,
        assignment: &PartitionAssignment,
    ) -> Result<DistributedOutcome, EulerError> {
        let backend = BspBackend::with_engine(self.engine);
        let (result, report) = run_with_backend(g, assignment, &self.config, &backend)?;
        Ok(DistributedOutcome {
            result,
            engine_stats: report.engine.expect("BspBackend always reports engine stats"),
            merge_tree: report.merge_tree,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::merge_strategy::MergeStrategy;
    use crate::verify::verify_result;
    use euler_gen::synthetic;
    use euler_partition::{HashPartitioner, LdgPartitioner, Partitioner};
    use std::time::Duration;

    fn verify_ok(g: &Graph, assignment: &PartitionAssignment, config: &EulerConfig) {
        let (result, report) = run_partitioned(g, assignment, config).unwrap();
        verify_result(g, &result).unwrap();
        assert_eq!(result.total_edges(), g.num_edges());
        assert_eq!(report.num_partitions, assignment.num_partitions());
    }

    #[test]
    fn fig1_graph_end_to_end() {
        let (g, a) = synthetic::paper_fig1();
        let config = EulerConfig::default().with_verify(true);
        let (result, report) = run_partitioned(&g, &a, &config).unwrap();
        assert_eq!(result.num_circuits(), 1);
        assert_eq!(result.total_edges(), 16);
        // 4 partitions -> 3 supersteps (Fig. 2).
        assert_eq!(report.supersteps, 3);
        let seq = result.vertex_sequence().unwrap();
        assert_eq!(seq.first(), seq.last());
    }

    #[test]
    fn torus_grid_all_partitioners() {
        let g = synthetic::torus_grid(8, 10);
        for k in [1u32, 2, 3, 4] {
            let a = LdgPartitioner::new(k).partition(&g);
            verify_ok(&g, &a, &EulerConfig::default());
            let a = HashPartitioner::new(k).partition(&g);
            verify_ok(&g, &a, &EulerConfig::default());
        }
    }

    #[test]
    fn all_merge_strategies_yield_valid_circuits() {
        let g = synthetic::random_eulerian_connected(120, 15, 6, 9);
        let a = LdgPartitioner::new(4).partition(&g);
        for strategy in MergeStrategy::all() {
            let config = EulerConfig::default().with_merge_strategy(strategy).with_verify(true);
            let (result, _) = run_partitioned(&g, &a, &config).unwrap();
            assert_eq!(result.num_circuits(), 1, "strategy {strategy}");
            assert_eq!(result.total_edges(), g.num_edges());
        }
    }

    #[test]
    fn non_eulerian_input_rejected() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2)]);
        let a = HashPartitioner::new(2).partition(&g);
        let err = find_euler_circuit(&g, &a, &EulerConfig::default()).unwrap_err();
        assert!(matches!(err, EulerError::Graph(euler_graph::GraphError::NotEulerian { .. })));
    }

    #[test]
    fn disconnected_eulerian_graph_yields_one_circuit_per_component() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)]);
        let a = HashPartitioner::new(2).partition(&g);
        let (result, _) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        assert_eq!(result.num_circuits(), 2);
        assert_eq!(result.total_edges(), 6);
        verify_result(&g, &result).unwrap();
    }

    #[test]
    fn report_has_one_record_per_partition_per_level() {
        let g = synthetic::torus_grid(10, 10);
        let a = LdgPartitioner::new(8).partition(&g);
        let (_, report) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        assert_eq!(report.supersteps, 4); // 8 partitions -> 4 Phase-1 rounds
        assert_eq!(report.level(0).len(), 8);
        assert_eq!(report.level(1).len(), 4);
        assert_eq!(report.level(2).len(), 2);
        assert_eq!(report.level(3).len(), 1);
        // Cumulative memory is monotonically non-increasing as levels progress
        // once remote edges start being consumed (paper's observation).
        let cumulative = report.cumulative_memory_by_level();
        assert_eq!(cumulative.len(), 4);
        assert!(cumulative[0] > 0);
        // Fig. 9: the root level holds no remote edges.
        let root = report.level(3)[0];
        assert_eq!(root.counts.remote_edges, 0);
        // The shim records which backend ran the walk.
        assert_eq!(report.backend, "in-process");
        assert!(report.engine.is_none());
    }

    #[test]
    fn memory_accounting_deferred_never_exceeds_dedup() {
        let g = synthetic::random_eulerian_connected(200, 30, 6, 3);
        let a = LdgPartitioner::new(8).partition(&g);
        let (_, dedup) = run_partitioned(&g, &a, &EulerConfig::default().with_merge_strategy(MergeStrategy::Deduplicated)).unwrap();
        let (_, deferred) = run_partitioned(&g, &a, &EulerConfig::default().with_merge_strategy(MergeStrategy::Deferred)).unwrap();
        let c_dedup = dedup.cumulative_memory_by_level();
        let c_def = deferred.cumulative_memory_by_level();
        for (d, f) in c_dedup.iter().zip(c_def.iter()) {
            assert!(f <= d, "deferred {f} > dedup {d}");
        }
        // Transfers also shrink.
        assert!(deferred.total_transfer_longs <= dedup.total_transfer_longs);
    }

    #[test]
    fn sequential_and_parallel_levels_agree() {
        let g = synthetic::random_eulerian_connected(80, 10, 5, 11);
        let a = LdgPartitioner::new(4).partition(&g);
        let (r1, _) = run_partitioned(&g, &a, &EulerConfig::default().sequential()).unwrap();
        let (r2, _) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        verify_result(&g, &r1).unwrap();
        verify_result(&g, &r2).unwrap();
        assert_eq!(r1.total_edges(), r2.total_edges());
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let g = synthetic::circulant(50, &[1, 2]);
        let a = HashPartitioner::new(1).partition(&g);
        let (result, report) = run_partitioned(&g, &a, &EulerConfig::default().with_verify(true)).unwrap();
        assert_eq!(report.supersteps, 1);
        assert_eq!(result.num_circuits(), 1);
    }

    #[test]
    fn distributed_runner_matches_in_process() {
        let g = synthetic::torus_grid(8, 8);
        let a = LdgPartitioner::new(4).partition(&g);
        let runner = DistributedRunner::new(EulerConfig::default().with_verify(true));
        let outcome = runner.run(&g, &a).unwrap();
        assert_eq!(outcome.result.num_circuits(), 1);
        assert_eq!(outcome.result.total_edges(), g.num_edges());
        // 4 partitions -> 3 supersteps of the engine.
        assert_eq!(outcome.engine_stats.num_supersteps(), 3);
        // Children shipped their state across workers at least twice.
        assert!(outcome.engine_stats.total_remote_bytes() > 0);
    }

    #[test]
    fn distributed_runner_with_cost_model_reports_overhead() {
        let g = synthetic::torus_grid(6, 6);
        let a = HashPartitioner::new(4).partition(&g);
        let runner = DistributedRunner::new(EulerConfig::default()).with_engine(
            euler_bsp::BspConfig::one_worker_per_partition()
                .with_cost_model(euler_bsp::PlatformCostModel::spark_like()),
        );
        let outcome = runner.run(&g, &a).unwrap();
        assert!(outcome.engine_stats.modelled_platform_overhead > Duration::ZERO);
        verify_result(&g, &outcome.result).unwrap();
    }

    #[test]
    fn larger_rmat_eulerized_graph_end_to_end() {
        let (g, _) = euler_gen::configs::GraphConfig::by_name("G20/P2").unwrap().generate(-7);
        let a = LdgPartitioner::new(2).partition(&g);
        let (result, _) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        verify_result(&g, &result).unwrap();
        assert_eq!(result.total_edges(), g.num_edges());
    }
}
