//! Drivers that execute the full three-phase algorithm.
//!
//! Two runners share the same Phase-1/2/3 implementations:
//!
//! * [`find_euler_circuit`] / [`run_partitioned`] — the in-process runner.
//!   Partitions of a level run concurrently on rayon threads; it produces a
//!   detailed [`RunReport`] with the per-level, per-partition quantities the
//!   paper's Figs. 6–9 are built from.
//! * [`DistributedRunner`] — executes the same algorithm on the `euler-bsp`
//!   engine: one engine partition per graph partition, one superstep per merge
//!   level, children shipping their serialised state to their parent after
//!   each level. It reports the engine's superstep statistics (shuffle bytes,
//!   per-partition time splits, modelled platform overhead), which is what the
//!   Fig.-5/6 harnesses consume.

use crate::config::EulerConfig;
use crate::error::EulerError;
use crate::fragment::FragmentStore;
use crate::memory_model::{LevelTrace, PartitionLevelState};
use crate::merge_strategy::MergeStrategy;
use crate::merge_tree::MergeTree;
use crate::phase1::{run_phase1, Phase1Output};
use crate::phase2::{apply_remote_edge_dedup, merge_partitions, remote_edge_needed_level};
use crate::phase3::{unroll, CircuitResult};
use crate::state::{VertexTypeCounts, WorkingPartition};
use crate::verify::verify_result;
use euler_graph::{properties, Graph, MetaGraph, PartitionAssignment, PartitionId, PartitionedGraph};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Per-partition, per-level record of one Phase-1 execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelPartitionReport {
    /// Merge level (0 = leaf partitions).
    pub level: u32,
    /// Partition (current merged id).
    pub partition: PartitionId,
    /// Vertex/edge composition at the start of the level (Fig. 9).
    pub counts: VertexTypeCounts,
    /// The `|B|+|I|+|L|` complexity measure (Fig. 7 x-axis).
    pub complexity: u64,
    /// Measured Phase-1 time (Fig. 7 y-axis).
    pub phase1_time: Duration,
    /// Time spent merging child partitions into this one before Phase 1
    /// (zero at level 0).
    pub merge_time: Duration,
    /// Active in-memory state in Longs at the start of the level, under the
    /// configured merge strategy (Fig. 8).
    pub memory_longs: u64,
    /// Remote edges that become local at this level's merge (input to the
    /// deferred-transfer model).
    pub remote_needed_now: u64,
    /// Longs received from merged children at the start of this level.
    pub transfer_in_longs: u64,
    /// Paths (OB-pairs) found by Phase 1.
    pub paths_found: u64,
    /// Standalone cycles found by Phase 1.
    pub cycles_found: u64,
    /// Internal cycles spliced into earlier fragments.
    pub internal_cycles_merged: u64,
}

/// Full report of one in-process run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of leaf partitions.
    pub num_partitions: u32,
    /// Number of Phase-1 rounds executed (the coordination cost, §3.5).
    pub supersteps: u32,
    /// Merge strategy used.
    pub strategy: MergeStrategy,
    /// Per-partition, per-level records.
    pub per_partition: Vec<LevelPartitionReport>,
    /// Total wall time of phases 1–2.
    pub phase12_time: Duration,
    /// Wall time of Phase 3.
    pub phase3_time: Duration,
    /// Total Longs shipped between partitions across all merges.
    pub total_transfer_longs: u64,
    /// Longs written to the fragment store ("disk").
    pub fragment_disk_longs: u64,
    /// The merge tree used.
    pub merge_tree: MergeTree,
}

impl RunReport {
    /// Records for one level.
    pub fn level(&self, level: u32) -> Vec<&LevelPartitionReport> {
        self.per_partition.iter().filter(|r| r.level == level).collect()
    }

    /// Cumulative active memory (Longs) per level — the solid lines of Fig. 8.
    pub fn cumulative_memory_by_level(&self) -> Vec<u64> {
        (0..self.supersteps)
            .map(|l| self.level(l).iter().map(|r| r.memory_longs).sum())
            .collect()
    }

    /// Average active memory per partition per level — the dashed lines of Fig. 8.
    pub fn average_memory_by_level(&self) -> Vec<f64> {
        (0..self.supersteps)
            .map(|l| {
                let rs = self.level(l);
                if rs.is_empty() {
                    0.0
                } else {
                    rs.iter().map(|r| r.memory_longs).sum::<u64>() as f64 / rs.len() as f64
                }
            })
            .collect()
    }

    /// Converts the report into the per-level trace consumed by the
    /// analytical memory model (Fig. 8 current/ideal/proposed).
    pub fn level_trace(&self) -> Vec<LevelTrace> {
        (0..self.supersteps)
            .map(|l| LevelTrace {
                level: l,
                partitions: self
                    .level(l)
                    .iter()
                    .map(|r| PartitionLevelState {
                        vertices: r.counts.total_vertices(),
                        local_edges: r.counts.local_edges,
                        remote_edges: r.counts.remote_edges,
                        remote_needed_now: r.remote_needed_now,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Total user compute time (Phase 1 + merging) across all partitions.
    pub fn total_compute_time(&self) -> Duration {
        self.per_partition.iter().map(|r| r.phase1_time + r.merge_time).sum()
    }
}

/// Accounts the active in-memory Longs of a partition under a merge strategy.
fn active_memory_longs(wp: &WorkingPartition, tree: &MergeTree, level: u32, strategy: MergeStrategy) -> u64 {
    let counts = wp.vertex_type_counts();
    let base = counts.total_vertices() + 3 * counts.local_edges;
    let remote = match strategy {
        MergeStrategy::Duplicated | MergeStrategy::Deduplicated => counts.remote_edges,
        MergeStrategy::Deferred => wp
            .remote_edges
            .iter()
            .filter(|r| remote_edge_needed_level(tree, r) <= level)
            .count() as u64,
    };
    base + 4 * remote
}

/// Longs shipped when this partition's state is sent to its merge parent.
fn transfer_longs(wp: &WorkingPartition, tree: &MergeTree, level: u32, strategy: MergeStrategy) -> u64 {
    let remote = match strategy {
        MergeStrategy::Duplicated | MergeStrategy::Deduplicated => wp.remote_edges.len() as u64,
        MergeStrategy::Deferred => wp
            .remote_edges
            .iter()
            .filter(|r| remote_edge_needed_level(tree, r) <= level)
            .count() as u64,
    };
    3 * wp.local_edges.len() as u64 + 4 * remote + 4
}

/// Runs the full pipeline and returns just the circuit result.
///
/// See [`run_partitioned`] for the variant that also returns the detailed
/// [`RunReport`].
pub fn find_euler_circuit(
    g: &Graph,
    assignment: &PartitionAssignment,
    config: &EulerConfig,
) -> Result<CircuitResult, EulerError> {
    run_partitioned(g, assignment, config).map(|(result, _)| result)
}

/// Runs the full pipeline (Phases 1–3) in-process and returns the circuit
/// together with the per-level report used by the experiment harnesses.
pub fn run_partitioned(
    g: &Graph,
    assignment: &PartitionAssignment,
    config: &EulerConfig,
) -> Result<(CircuitResult, RunReport), EulerError> {
    if config.require_eulerian {
        if let Some(v) = properties::odd_vertices(g).first() {
            return Err(EulerError::Graph(euler_graph::GraphError::NotEulerian {
                vertex: *v,
                degree: g.degree(*v),
            }));
        }
    }
    let pg = PartitionedGraph::from_assignment(g, assignment)?;
    let meta = MetaGraph::from_partitioned(&pg);
    let tree = MergeTree::build(&meta);
    let store = FragmentStore::new();

    let mut states: Vec<WorkingPartition> =
        pg.partitions().iter().map(WorkingPartition::from_partition).collect();
    if config.merge_strategy.deduplicates() {
        apply_remote_edge_dedup(&mut states);
    }

    let mut report = RunReport {
        num_partitions: pg.num_partitions(),
        supersteps: tree.num_supersteps(),
        strategy: config.merge_strategy,
        merge_tree: tree.clone(),
        ..Default::default()
    };

    let t_run = Instant::now();
    let mut pending_merge_time: HashMap<PartitionId, (Duration, u64)> = HashMap::new();

    for level in 0..tree.num_supersteps() {
        // --- Phase 1 on all active partitions of this level. ---------------
        let strategy = config.merge_strategy;
        let tree_ref = &tree;
        let store_ref = &store;
        let run_one = |wp: &mut WorkingPartition| -> (PartitionId, u64, u64, Phase1Output, Duration) {
            let memory = active_memory_longs(wp, tree_ref, level, strategy);
            let needed_now: u64 = wp
                .remote_edges
                .iter()
                .filter(|r| remote_edge_needed_level(tree_ref, r) == level)
                .count() as u64;
            let t0 = Instant::now();
            let out = run_phase1(wp, store_ref);
            (wp.id, memory, needed_now, out, t0.elapsed())
        };
        let outputs: Vec<(PartitionId, u64, u64, Phase1Output, Duration)> = if config.parallel_within_level {
            states.par_iter_mut().map(run_one).collect()
        } else {
            states.iter_mut().map(run_one).collect()
        };
        for (pid, memory, needed_now, out, elapsed) in outputs {
            let (merge_time, transfer_in) = pending_merge_time.remove(&pid).unwrap_or_default();
            report.per_partition.push(LevelPartitionReport {
                level,
                partition: pid,
                counts: out.counts_before,
                complexity: out.complexity,
                phase1_time: elapsed,
                merge_time,
                memory_longs: memory,
                remote_needed_now: needed_now,
                transfer_in_longs: transfer_in,
                paths_found: out.path_map.num_paths() as u64,
                cycles_found: out.path_map.num_cycles() as u64,
                internal_cycles_merged: out.path_map.internal_cycles_merged,
            });
        }

        if level + 1 >= tree.num_supersteps() {
            break;
        }

        // --- Phase 2: merge the pairs planned for this level. ---------------
        for pair in tree.pairs_at(level) {
            let child_idx = states.iter().position(|s| s.id == pair.child);
            let has_parent = states.iter().any(|s| s.id == pair.parent);
            let Some(child_idx) = child_idx.filter(|_| has_parent) else {
                continue;
            };
            let child = states.swap_remove(child_idx);
            // Locate the parent after the swap_remove above.
            let parent_idx = states.iter().position(|s| s.id == pair.parent).expect("parent present");
            let parent = states.swap_remove(parent_idx);
            let shipped = transfer_longs(&child, &tree, level, config.merge_strategy);
            report.total_transfer_longs += shipped;
            let t0 = Instant::now();
            let (merged, _stats) = merge_partitions(parent, child, &tree, level);
            let merge_elapsed = t0.elapsed();
            let entry = pending_merge_time.entry(merged.id).or_default();
            entry.0 += merge_elapsed;
            entry.1 += shipped;
            states.push(merged);
        }
        // Unmerged partitions are carried to the next level unchanged.
        for s in &mut states {
            if s.level == level {
                s.level = level + 1;
            }
        }
    }
    report.phase12_time = t_run.elapsed();

    // --- Phase 3: unroll the fragments into the circuit. --------------------
    let t3 = Instant::now();
    let result = unroll(&store);
    report.phase3_time = t3.elapsed();
    report.fragment_disk_longs = store.disk_longs();

    if config.verify {
        verify_result(g, &result)?;
    }
    Ok((result, report))
}

// ---------------------------------------------------------------------------
// Distributed runner on the euler-bsp engine.
// ---------------------------------------------------------------------------

/// Wire encoding of a [`WorkingPartition`] as a flat u64 sequence, used for
/// the byte-accounted transfers of the distributed runner.
mod wire {
    use super::*;
    use crate::state::{EdgeRef, LocalEdge, RemoteRef};
    use euler_graph::{EdgeId, VertexId};

    pub fn encode(wp: &WorkingPartition) -> Vec<u64> {
        let mut out = Vec::with_capacity(4 + 4 * wp.local_edges.len() + 5 * wp.remote_edges.len());
        out.push(wp.id.0 as u64);
        out.push(wp.level as u64);
        out.push(wp.local_edges.len() as u64);
        out.push(wp.remote_edges.len() as u64);
        out.push(wp.leaves.len() as u64);
        for l in &wp.leaves {
            out.push(l.0 as u64);
        }
        for e in &wp.local_edges {
            match e.edge {
                EdgeRef::Real(id) => {
                    out.push(0);
                    out.push(id.0);
                }
                EdgeRef::Virtual(id) => {
                    out.push(1);
                    out.push(id.0);
                }
            }
            out.push(e.u.0);
            out.push(e.v.0);
        }
        for r in &wp.remote_edges {
            out.push(r.edge.0);
            out.push(r.local.0);
            out.push(r.remote.0);
            out.push(r.local_leaf.0 as u64);
            out.push(r.remote_leaf.0 as u64);
        }
        out
    }

    pub fn decode(data: &[u64]) -> WorkingPartition {
        let mut i = 0usize;
        let mut next = || {
            let v = data[i];
            i += 1;
            v
        };
        let id = PartitionId(next() as u32);
        let level = next() as u32;
        let n_local = next() as usize;
        let n_remote = next() as usize;
        let n_leaves = next() as usize;
        let leaves = (0..n_leaves).map(|_| PartitionId(next() as u32)).collect();
        let mut local_edges = Vec::with_capacity(n_local);
        for _ in 0..n_local {
            let tag = next();
            let idv = next();
            let u = VertexId(next());
            let v = VertexId(next());
            let edge = if tag == 0 {
                EdgeRef::Real(EdgeId(idv))
            } else {
                EdgeRef::Virtual(crate::fragment::FragmentId(idv))
            };
            local_edges.push(LocalEdge { edge, u, v });
        }
        let mut remote_edges = Vec::with_capacity(n_remote);
        for _ in 0..n_remote {
            remote_edges.push(RemoteRef {
                edge: EdgeId(next()),
                local: VertexId(next()),
                remote: VertexId(next()),
                local_leaf: PartitionId(next() as u32),
                remote_leaf: PartitionId(next() as u32),
            });
        }
        WorkingPartition { id, leaves, level, local_edges, remote_edges, isolated_vertices: 0 }
    }
}

/// Outcome of a distributed run.
pub struct DistributedOutcome {
    /// The reconstructed circuit(s).
    pub result: CircuitResult,
    /// Superstep-level statistics from the BSP engine (compute/shuffle/
    /// memory per superstep, modelled platform overhead).
    pub engine_stats: euler_bsp::EngineStats,
    /// The merge tree used.
    pub merge_tree: MergeTree,
}

/// Per-engine-partition state of the distributed program.
enum DistState {
    Active(Box<WorkingPartition>),
    Retired,
}

struct DistProgram {
    tree: MergeTree,
    store: FragmentStore,
    height: u32,
}

impl euler_bsp::PartitionProgram for DistProgram {
    type State = DistState;

    fn superstep(
        &self,
        ctx: &mut euler_bsp::PartitionContext,
        state: &mut DistState,
        messages: Vec<euler_bsp::Envelope>,
    ) -> Vec<euler_bsp::Envelope> {
        let level = ctx.superstep;
        let DistState::Active(wp) = state else {
            ctx.vote_to_halt();
            return vec![];
        };

        // Merge any child states received at the end of the previous level.
        for m in &messages {
            let decoded = ctx.time("create_partition_object", || {
                wire::decode(&euler_bsp::message::codec::decode_u64s(&m.payload))
            });
            let current = std::mem::take(wp.as_mut());
            let merged = ctx.time("copy_sink_partition", || {
                merge_partitions(current, decoded, &self.tree, level.saturating_sub(1)).0
            });
            **wp = merged;
        }

        // Phase 1 for this level.
        ctx.time("phase1_tour", || {
            run_phase1(wp, &self.store);
        });
        ctx.report_memory_longs(wp.memory_longs());

        // Am I a child at this level? Then ship my state to the parent.
        if level < self.height {
            if let Some(pair) = self.tree.pairs_at(level).iter().find(|p| p.child == wp.id) {
                let parent = pair.parent;
                let payload = ctx.time("copy_source_partition", || {
                    euler_bsp::message::codec::encode_u64s(&wire::encode(wp))
                });
                let from = ctx.partition;
                *state = DistState::Retired;
                ctx.vote_to_halt();
                return vec![euler_bsp::Envelope::new(from, parent.0, 0, payload)];
            }
            // Parent or carried-over partition: stay active for the next level.
            return vec![];
        }
        // Root level reached: done.
        ctx.vote_to_halt();
        vec![]
    }
}

/// Executes the algorithm on the `euler-bsp` engine, one worker per
/// partition (the paper's one-executor-per-partition deployment) unless the
/// engine config says otherwise.
pub struct DistributedRunner {
    /// Engine configuration (worker count, cost model).
    pub engine: euler_bsp::BspConfig,
    /// Algorithm configuration.
    pub config: EulerConfig,
}

impl DistributedRunner {
    /// Creates a runner with one worker per partition and the given algorithm
    /// configuration.
    pub fn new(config: EulerConfig) -> Self {
        DistributedRunner { engine: euler_bsp::BspConfig::one_worker_per_partition(), config }
    }

    /// Sets the engine configuration.
    pub fn with_engine(mut self, engine: euler_bsp::BspConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Runs the full pipeline.
    pub fn run(
        &self,
        g: &Graph,
        assignment: &PartitionAssignment,
    ) -> Result<DistributedOutcome, EulerError> {
        if self.config.require_eulerian {
            if let Some(v) = properties::odd_vertices(g).first() {
                return Err(EulerError::Graph(euler_graph::GraphError::NotEulerian {
                    vertex: *v,
                    degree: g.degree(*v),
                }));
            }
        }
        let pg = PartitionedGraph::from_assignment(g, assignment)?;
        let meta = MetaGraph::from_partitioned(&pg);
        let tree = MergeTree::build(&meta);
        let store = FragmentStore::new();

        let mut states: Vec<WorkingPartition> =
            pg.partitions().iter().map(WorkingPartition::from_partition).collect();
        if self.config.merge_strategy.deduplicates() {
            apply_remote_edge_dedup(&mut states);
        }
        // Engine partition index i hosts graph partition i.
        states.sort_by_key(|s| s.id);
        let initial: Vec<DistState> = states.into_iter().map(|s| DistState::Active(Box::new(s))).collect();

        let program = DistProgram { tree: tree.clone(), store: store.clone(), height: tree.height() };
        let engine = euler_bsp::BspEngine::new(self.engine);
        let outcome = engine.run(&program, initial);

        let result = unroll(&store);
        if self.config.verify {
            verify_result(g, &result)?;
        }
        Ok(DistributedOutcome { result, engine_stats: outcome.stats, merge_tree: tree })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_gen::synthetic;
    use euler_partition::{HashPartitioner, LdgPartitioner, Partitioner};

    fn verify_ok(g: &Graph, assignment: &PartitionAssignment, config: &EulerConfig) {
        let (result, report) = run_partitioned(g, assignment, config).unwrap();
        verify_result(g, &result).unwrap();
        assert_eq!(result.total_edges(), g.num_edges());
        assert_eq!(report.num_partitions, assignment.num_partitions());
    }

    #[test]
    fn fig1_graph_end_to_end() {
        let (g, a) = synthetic::paper_fig1();
        let config = EulerConfig::default().with_verify(true);
        let (result, report) = run_partitioned(&g, &a, &config).unwrap();
        assert_eq!(result.num_circuits(), 1);
        assert_eq!(result.total_edges(), 16);
        // 4 partitions -> 3 supersteps (Fig. 2).
        assert_eq!(report.supersteps, 3);
        let seq = result.vertex_sequence().unwrap();
        assert_eq!(seq.first(), seq.last());
    }

    #[test]
    fn torus_grid_all_partitioners() {
        let g = synthetic::torus_grid(8, 10);
        for k in [1u32, 2, 3, 4] {
            let a = LdgPartitioner::new(k).partition(&g);
            verify_ok(&g, &a, &EulerConfig::default());
            let a = HashPartitioner::new(k).partition(&g);
            verify_ok(&g, &a, &EulerConfig::default());
        }
    }

    #[test]
    fn all_merge_strategies_yield_valid_circuits() {
        let g = synthetic::random_eulerian_connected(120, 15, 6, 9);
        let a = LdgPartitioner::new(4).partition(&g);
        for strategy in MergeStrategy::all() {
            let config = EulerConfig::default().with_merge_strategy(strategy).with_verify(true);
            let (result, _) = run_partitioned(&g, &a, &config).unwrap();
            assert_eq!(result.num_circuits(), 1, "strategy {strategy}");
            assert_eq!(result.total_edges(), g.num_edges());
        }
    }

    #[test]
    fn non_eulerian_input_rejected() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2)]);
        let a = HashPartitioner::new(2).partition(&g);
        let err = find_euler_circuit(&g, &a, &EulerConfig::default()).unwrap_err();
        assert!(matches!(err, EulerError::Graph(euler_graph::GraphError::NotEulerian { .. })));
    }

    #[test]
    fn disconnected_eulerian_graph_yields_one_circuit_per_component() {
        let g = euler_graph::builder::graph_from_edges(&[(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)]);
        let a = HashPartitioner::new(2).partition(&g);
        let (result, _) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        assert_eq!(result.num_circuits(), 2);
        assert_eq!(result.total_edges(), 6);
        verify_result(&g, &result).unwrap();
    }

    #[test]
    fn report_has_one_record_per_partition_per_level() {
        let g = synthetic::torus_grid(10, 10);
        let a = LdgPartitioner::new(8).partition(&g);
        let (_, report) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        assert_eq!(report.supersteps, 4); // 8 partitions -> 4 Phase-1 rounds
        assert_eq!(report.level(0).len(), 8);
        assert_eq!(report.level(1).len(), 4);
        assert_eq!(report.level(2).len(), 2);
        assert_eq!(report.level(3).len(), 1);
        // Cumulative memory is monotonically non-increasing as levels progress
        // once remote edges start being consumed (paper's observation).
        let cumulative = report.cumulative_memory_by_level();
        assert_eq!(cumulative.len(), 4);
        assert!(cumulative[0] > 0);
        // Fig. 9: the root level holds no remote edges.
        let root = report.level(3)[0];
        assert_eq!(root.counts.remote_edges, 0);
    }

    #[test]
    fn memory_accounting_deferred_never_exceeds_dedup() {
        let g = synthetic::random_eulerian_connected(200, 30, 6, 3);
        let a = LdgPartitioner::new(8).partition(&g);
        let (_, dedup) = run_partitioned(&g, &a, &EulerConfig::default().with_merge_strategy(MergeStrategy::Deduplicated)).unwrap();
        let (_, deferred) = run_partitioned(&g, &a, &EulerConfig::default().with_merge_strategy(MergeStrategy::Deferred)).unwrap();
        let c_dedup = dedup.cumulative_memory_by_level();
        let c_def = deferred.cumulative_memory_by_level();
        for (d, f) in c_dedup.iter().zip(c_def.iter()) {
            assert!(f <= d, "deferred {f} > dedup {d}");
        }
        // Transfers also shrink.
        assert!(deferred.total_transfer_longs <= dedup.total_transfer_longs);
    }

    #[test]
    fn sequential_and_parallel_levels_agree() {
        let g = synthetic::random_eulerian_connected(80, 10, 5, 11);
        let a = LdgPartitioner::new(4).partition(&g);
        let (r1, _) = run_partitioned(&g, &a, &EulerConfig::default().sequential()).unwrap();
        let (r2, _) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        verify_result(&g, &r1).unwrap();
        verify_result(&g, &r2).unwrap();
        assert_eq!(r1.total_edges(), r2.total_edges());
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let g = synthetic::circulant(50, &[1, 2]);
        let a = HashPartitioner::new(1).partition(&g);
        let (result, report) = run_partitioned(&g, &a, &EulerConfig::default().with_verify(true)).unwrap();
        assert_eq!(report.supersteps, 1);
        assert_eq!(result.num_circuits(), 1);
    }

    #[test]
    fn distributed_runner_matches_in_process() {
        let g = synthetic::torus_grid(8, 8);
        let a = LdgPartitioner::new(4).partition(&g);
        let runner = DistributedRunner::new(EulerConfig::default().with_verify(true));
        let outcome = runner.run(&g, &a).unwrap();
        assert_eq!(outcome.result.num_circuits(), 1);
        assert_eq!(outcome.result.total_edges(), g.num_edges());
        // 4 partitions -> 3 supersteps of the engine.
        assert_eq!(outcome.engine_stats.num_supersteps(), 3);
        // Children shipped their state across workers at least twice.
        assert!(outcome.engine_stats.total_remote_bytes() > 0);
    }

    #[test]
    fn distributed_runner_with_cost_model_reports_overhead() {
        let g = synthetic::torus_grid(6, 6);
        let a = HashPartitioner::new(4).partition(&g);
        let runner = DistributedRunner::new(EulerConfig::default()).with_engine(
            euler_bsp::BspConfig::one_worker_per_partition()
                .with_cost_model(euler_bsp::PlatformCostModel::spark_like()),
        );
        let outcome = runner.run(&g, &a).unwrap();
        assert!(outcome.engine_stats.modelled_platform_overhead > Duration::ZERO);
        verify_result(&g, &outcome.result).unwrap();
    }

    #[test]
    fn larger_rmat_eulerized_graph_end_to_end() {
        let (g, _) = euler_gen::configs::GraphConfig::by_name("G20/P2").unwrap().generate(-7);
        let a = LdgPartitioner::new(2).partition(&g);
        let (result, _) = run_partitioned(&g, &a, &EulerConfig::default()).unwrap();
        verify_result(&g, &result).unwrap();
        assert_eq!(result.total_edges(), g.num_edges());
    }
}
