//! Phase 1: identifying local paths and cycles within a partition (Alg. 1).
//!
//! Within one partition, Phase 1 consumes *every* local edge exactly once:
//!
//! 1. While some vertex has odd unvisited local degree, start a maximal
//!    traversal there. By Lemma 1 it ends at another odd-degree vertex,
//!    yielding an edge-disjoint **path** between two odd boundary vertices
//!    (an *OB-pair*). The path is persisted as a fragment and replaced in
//!    memory by a single coarse edge between its endpoints.
//! 2. For every boundary vertex that still has unvisited local edges, start a
//!    maximal traversal. By Lemma 2 it returns to its start, yielding a
//!    **cycle** anchored at that boundary vertex, persisted and dropped from
//!    memory.
//! 3. While unvisited local edges remain, start a maximal traversal at one of
//!    their endpoints (an internal vertex), yielding an internal cycle. Per
//!    Lemma 3 it intersects an earlier fragment of this run at a *pivot*
//!    vertex, into which it is spliced (`mergeInto`); if the partition's
//!    local subgraph is disconnected and no pivot exists, the cycle is kept
//!    as a standalone anchored cycle (a generalisation the paper's
//!    connected-partition assumption makes unnecessary).
//!
//! # Dense traversal state
//!
//! Phase 1 touches every local edge exactly once, so its inner loop is the
//! dominant per-superstep cost. The kernel keeps all traversal state in flat
//! arrays over *interned* vertex slots rather than hash maps (the layout the
//! W-streaming / StrSort Euler-tour algorithms rely on for their bounds):
//!
//! * a [`euler_graph::LocalIndex`] assigns each distinct endpoint a dense
//!   `u32` slot in ascending `VertexId` order;
//! * adjacency is a CSR pair (`offsets` + `incidence` of edge slots), built
//!   with two counting passes, preserving edge insertion order per vertex;
//! * per-vertex cursors and remaining degrees are flat arrays indexed by
//!   slot; visited edges are one bit each in a bitset;
//! * step-1/step-3 start vertices come from ascending slot scans (slot order
//!   *is* ascending vertex order), replacing the reference `BTreeSet`.
//!
//! All of this state lives in a reusable [`Phase1Arena`] (see
//! [`arena`](mod@arena)): [`run_phase1_with_arena`] reloads the buffers in
//! place, so repeated runs across merge levels stop allocating once the
//! arena has grown to the working-set size. [`run_phase1`] is the
//! convenience wrapper over a throwaway arena.
//!
//! The inner traversal loop performs no `HashMap`/`BTreeSet` operations at
//! all. The original hash-map implementation is preserved unchanged in
//! [`reference`](mod@reference) and the two are proven bit-identical (same
//! fragments, same `PathMap`, same residual partition state) by the property
//! tests in `tests/property_circuit.rs`.
//!
//! # Parallel execution
//!
//! The function is deterministic: traversal starts are chosen in ascending
//! vertex order and edges are consumed in insertion order. That determinism
//! extends to the intra-partition parallel walker in
//! [`parallel`](mod@parallel) ([`run_phase1_parallel`]): workers *speculate*
//! maximal walks from upcoming start vertices against the committed state
//! and the main thread commits them in exact sequential order, so the output
//! is bit-identical to [`run_phase1`] for every thread count. Both paths run
//! the same orchestration (`run_phase1_core`); only the source of walks
//! differs.

pub mod arena;
pub mod parallel;
pub mod reference;
mod splice;
pub mod wstream;

use crate::fragment::{Fragment, FragmentId, FragmentKind, FragmentStore, TourEdge};
use crate::pathmap::{CycleEntry, PathEntry, PathMap};
use crate::state::{EdgeRef, LocalEdge, VertexTypeCounts, WorkingPartition};
use arena::{HostScratch, KernelState};
use euler_graph::VertexId;
use parallel::{SpecStart, StartRule, WaveDriver, WaveQueue};
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;

pub use arena::{ArenaCapacities, ArenaPool, Phase1Arena};
pub use parallel::{run_phase1_parallel, Parallelism, Phase1Executor};

/// Output of one Phase-1 run on one partition.
#[derive(Clone, Debug)]
pub struct Phase1Output {
    /// Summary of the fragments found (the paper's `pathMap`).
    pub path_map: PathMap,
    /// Vertex/edge composition at the start of the run (Fig. 9 input).
    pub counts_before: VertexTypeCounts,
    /// The complexity measure `|B| + |I| + |L|` at the start of the run
    /// (Fig. 7's x axis).
    pub complexity: u64,
    /// Splice-order-index work counters for this run.
    pub splice: SpliceStats,
}

/// `mergeInto` work counters, exact and kernel-independent: the reference
/// implementation computes the same values from the same decisions, so the
/// differential suites can assert them bit-for-bit alongside the fragments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpliceStats {
    /// Step-3 cycles that searched their vertices for a pivot (one lookup
    /// per internal cycle, whether or not a pivot was found).
    pub pivot_lookups: u64,
    /// Internal cycles linked into a pending fragment (`mergeInto` calls).
    pub linked_splices: u64,
    /// Longs written while materializing linked tours into persisted
    /// fragments (`Σ disk_longs` over this run's fragments).
    pub materialization_longs: u64,
}

/// A fragment under construction during one Phase-1 run, before it receives
/// its global id from the store.
struct PendingFragment {
    kind: FragmentKind,
    edges: Vec<TourEdge>,
}

/// Which pending fragment a visible vertex belongs to (reference
/// implementation). The exact position is looked up at splice time (earlier
/// splices shift positions).
#[derive(Clone, Copy)]
struct PivotRef {
    fragment: usize,
}

/// Registers the vertices of `edges` as visible in `fragment` (reference
/// implementation's hash-map form).
fn register_visible_ref(
    visible: &mut HashMap<VertexId, PivotRef>,
    fragment: usize,
    edges: &[TourEdge],
) {
    for e in edges {
        visible.entry(e.from()).or_insert(PivotRef { fragment });
    }
    if let Some(last) = edges.last() {
        visible.entry(last.to()).or_insert(PivotRef { fragment });
    }
}

/// Sentinel slot value: "not visible in any pending fragment".
const NOT_VISIBLE: u32 = u32::MAX;

/// Read-only view over the committed dense traversal state of a loaded
/// [`KernelState`]. All mutation goes through relaxed atomics, so the view
/// is `Copy + Sync`: the sequential kernel and the committing thread of the
/// parallel walker use the same methods, and speculation workers may read
/// the committed snapshot concurrently (waves are barrier-separated, which
/// orders the writes).
#[derive(Clone, Copy)]
pub(crate) struct Traversal<'a> {
    /// The partition's local edges; edge slot `e` is `edges[e]`.
    pub edges: &'a [LocalEdge],
    /// The loaded kernel arrays.
    pub k: &'a KernelState,
}

impl<'a> Traversal<'a> {
    /// Remaining (unvisited) local degree of vertex slot `s`.
    #[inline]
    pub fn remaining(&self, s: u32) -> u32 {
        self.k.remaining[s as usize].load(Relaxed)
    }

    #[inline]
    pub fn is_visited(&self, e: u32) -> bool {
        self.k.visited[(e >> 6) as usize].load(Relaxed) & (1u64 << (e & 63)) != 0
    }

    /// Sets an edge's visited bit. Single-writer: only the walking /
    /// committing thread calls this.
    #[inline]
    pub fn mark_visited(&self, e: u32) {
        let w = &self.k.visited[(e >> 6) as usize];
        w.store(w.load(Relaxed) | 1u64 << (e & 63), Relaxed);
    }

    /// Next unvisited incident edge slot of vertex slot `s`, if any. The
    /// cursor parks on the returned edge (it is consumed by the caller) and
    /// never re-scans the consumed prefix.
    #[inline]
    fn next_edge(&self, s: u32) -> Option<u32> {
        let end = self.k.offsets[s as usize + 1];
        let mut cur = self.k.cursor[s as usize].load(Relaxed);
        while cur < end {
            let e = self.k.incidence[cur as usize];
            if !self.is_visited(e) {
                self.k.cursor[s as usize].store(cur, Relaxed);
                return Some(e);
            }
            cur += 1;
        }
        self.k.cursor[s as usize].store(cur, Relaxed);
        None
    }

    /// Maximal traversal from vertex slot `start`, consuming unvisited local
    /// edges. Appends tour edges to `tour` and the visited vertex-slot
    /// sequence (`tour.len() + 1` entries) to `vslots`.
    pub fn walk(&self, start: u32, tour: &mut Vec<TourEdge>, vslots: &mut Vec<u32>) {
        tour.clear();
        vslots.clear();
        vslots.push(start);
        let mut current = start;
        let mut current_v = self.k.index.vertex(current);
        while let Some(e) = self.next_edge(current) {
            self.mark_visited(e);
            let [su, sv] = self.k.ends[e as usize];
            let next = if su == current { sv } else { su };
            let r = &self.k.remaining[su as usize];
            r.store(r.load(Relaxed) - 1, Relaxed);
            let r = &self.k.remaining[sv as usize];
            r.store(r.load(Relaxed) - 1, Relaxed);
            let next_v = self.k.index.vertex(next);
            tour.push(match self.edges[e as usize].edge {
                EdgeRef::Real(edge) => TourEdge::Real { edge, from: current_v, to: next_v },
                EdgeRef::Virtual(fragment) => {
                    TourEdge::Virtual { fragment, from: current_v, to: next_v }
                }
            });
            vslots.push(next);
            current = next;
            current_v = next_v;
        }
    }

    /// First unvisited edge slot, if any (monotone linear scan overall).
    fn any_unvisited(&self) -> Option<u32> {
        let m = self.edges.len();
        let mut i = self.k.unvisited_scan.load(Relaxed);
        while i < m {
            if !self.is_visited(i as u32) {
                self.k.unvisited_scan.store(i, Relaxed);
                return Some(i as u32);
            }
            i += 1;
        }
        self.k.unvisited_scan.store(i, Relaxed);
        None
    }
}

/// The Fig.-9 vertex classification, computed from the traverser's pre-walk
/// arrays by merging two sorted sequences (interned local-endpoint vertices
/// and boundary vertices) — equal to `WorkingPartition::vertex_type_counts`
/// without building a second index.
fn counts_from_traverser(
    tr: &Traversal<'_>,
    boundary: &[VertexId],
    remote_edges: u64,
    isolated: u64,
) -> VertexTypeCounts {
    let mut counts = VertexTypeCounts {
        remote_edges,
        local_edges: tr.edges.len() as u64,
        even_internal: isolated,
        ..Default::default()
    };
    let mut bi = 0;
    for (s, &v) in tr.k.index.vertices().iter().enumerate() {
        // Boundary vertices below `v` touch no local edge: even (degree 0).
        while bi < boundary.len() && boundary[bi] < v {
            counts.even_boundary += 1;
            bi += 1;
        }
        let is_boundary = bi < boundary.len() && boundary[bi] == v;
        if is_boundary {
            bi += 1;
        }
        match (is_boundary, tr.remaining(s as u32) % 2 == 1) {
            (true, true) => counts.odd_boundary += 1,
            (true, false) => counts.even_boundary += 1,
            (false, _) => counts.even_internal += 1,
        }
    }
    counts.even_boundary += (boundary.len() - bi) as u64;
    counts
}

/// Runs Phase 1 on `wp`, persisting fragments into `store` and replacing the
/// partition's local edges with the coarse OB-pair edges of the paths found.
///
/// Deterministic and bit-identical to [`reference::run_phase1_reference`]:
/// ascending-slot scans visit vertices in ascending global order (the
/// `BTreeSet` order of the reference), parity of the remaining degree tracks
/// membership in the shrinking odd set (interior visits consume two
/// incidences, endpoints one), and CSR incidence preserves per-vertex edge
/// insertion order.
///
/// Allocates a throwaway [`Phase1Arena`]; repeated callers should hold an
/// arena (or an [`ArenaPool`]) and use [`run_phase1_with_arena`] instead.
pub fn run_phase1(wp: &mut WorkingPartition, store: &FragmentStore) -> Phase1Output {
    let mut arena = Phase1Arena::new();
    run_phase1_with_arena(wp, store, &mut arena)
}

/// [`run_phase1`] over a caller-held [`Phase1Arena`]: every buffer is
/// reloaded in place, so runs across merge levels reuse the arena's grown
/// capacity instead of reallocating. Output is identical to [`run_phase1`]
/// whatever state the arena was left in.
pub fn run_phase1_with_arena(
    wp: &mut WorkingPartition,
    store: &FragmentStore,
    arena: &mut Phase1Arena,
) -> Phase1Output {
    let boundary = wp.boundary_vertices_sorted();
    let local_edges = std::mem::take(&mut wp.local_edges);
    let Phase1Arena { kernel, host, .. } = arena;
    kernel.load(&local_edges);
    let tr = Traversal { edges: &local_edges, k: kernel };
    run_phase1_core(wp, store, &local_edges, &boundary, &tr, host, None)
}

/// The shared Phase-1 orchestration: steps 1–3, `mergeInto` splicing, and
/// fragment persistence. The sequential path (`walks: None`) executes every
/// maximal traversal inline; the parallel path hands a [`WaveDriver`] that
/// produces the *same* walks, in the same order, from speculating workers.
fn run_phase1_core(
    wp: &mut WorkingPartition,
    store: &FragmentStore,
    local_edges: &[LocalEdge],
    boundary: &[VertexId],
    tr: &Traversal<'_>,
    host: &mut HostScratch,
    mut walks: Option<&mut WaveDriver<'_, '_>>,
) -> Phase1Output {
    let counts_before =
        counts_from_traverser(tr, boundary, wp.remote_edges.len() as u64, wp.isolated_vertices);
    let complexity = counts_before.phase1_complexity();
    let n = tr.k.index.len();

    let HostScratch { visible, tour, vslots, odd_slots, boundary_slots, splice } = host;
    // First pending fragment each vertex slot is visible in (mergeInto pivot
    // lookup), NOT_VISIBLE when none.
    visible.clear();
    visible.resize(n, NOT_VISIBLE);
    // Pending fragments live in the splice-order index as linked tours;
    // `Vec<TourEdge>` is only materialized once, at persist time.
    splice.reset(n);

    // --- Step 1: OB paths. -------------------------------------------------
    // The odd set is fixed at the start of the step: every walk turns exactly
    // its two endpoints even and leaves all other parities unchanged, so
    // "still has odd remaining degree" is equivalent to membership in the
    // reference implementation's shrinking BTreeSet.
    odd_slots.clear();
    odd_slots.extend((0..n as u32).filter(|&s| tr.remaining(s) % 2 == 1));
    for i in 0..odd_slots.len() {
        let s = odd_slots[i];
        if tr.remaining(s).is_multiple_of(2) {
            continue; // consumed as the far endpoint of an earlier walk
        }
        match walks.as_deref_mut() {
            Some(w) => w.walk(
                SpecStart::Slot(s),
                WaveQueue::Slots { rest: &odd_slots[i..], rule: StartRule::OddParity },
                tr,
                tour,
                vslots,
            ),
            None => tr.walk(s, tour, vslots),
        }
        debug_assert!(!tour.is_empty(), "odd-degree vertex must have an unvisited edge");
        debug_assert_ne!(
            vslots.first(),
            vslots.last(),
            "a maximal walk from an odd vertex ends elsewhere (Lemma 1)"
        );
        splice.create_fragment(FragmentKind::Path, tour, vslots, visible, NOT_VISIBLE);
    }

    // --- Step 2: cycles at boundary vertices. -------------------------------
    boundary_slots.clear();
    boundary_slots.extend(boundary.iter().filter_map(|&b| tr.k.index.slot(b)));
    for i in 0..boundary_slots.len() {
        let s = boundary_slots[i];
        if tr.remaining(s) == 0 {
            continue; // trivial singleton: nothing to record
        }
        match walks.as_deref_mut() {
            Some(w) => w.walk(
                SpecStart::Slot(s),
                WaveQueue::Slots { rest: &boundary_slots[i..], rule: StartRule::Positive },
                tr,
                tour,
                vslots,
            ),
            None => tr.walk(s, tour, vslots),
        }
        debug_assert_eq!(vslots.last(), Some(&s), "even-degree traversal closes (Lemma 2)");
        splice.create_fragment(FragmentKind::Cycle, tour, vslots, visible, NOT_VISIBLE);
    }

    // --- Step 3: cycles at internal vertices, spliced at pivots. ------------
    let mut internal_cycles_merged = 0u64;
    let mut pivot_lookups = 0u64;
    while let Some(e) = tr.any_unvisited() {
        let start = tr.k.ends[e as usize][0];
        match walks.as_deref_mut() {
            Some(w) => w.walk(SpecStart::Edge(e), WaveQueue::Edges, tr, tour, vslots),
            None => tr.walk(start, tour, vslots),
        }
        debug_assert_eq!(vslots.last(), Some(&start), "internal traversal closes (Lemma 2)");
        // mergeInto: find a pivot vertex shared with an existing fragment.
        // Only the `tour.len()` from-slots are candidates (the final slot
        // closes the cycle and duplicates the first), as in the reference.
        pivot_lookups += 1;
        let pivot = vslots[..tour.len()]
            .iter()
            .enumerate()
            .find(|(_, &s)| visible[s as usize] != NOT_VISIBLE)
            .map(|(rot, &s)| (rot, visible[s as usize]));
        match pivot {
            Some((rot, at)) => {
                // Rotate the cycle to start at the pivot and link it in at
                // the pivot's first occurrence: O(1) position lookup via the
                // first-occurrence handle, O(|cycle|) link-in.
                splice.merge_into(at, rot, tour, vslots, visible, NOT_VISIBLE);
                internal_cycles_merged += 1;
            }
            None => {
                // Disconnected local subgraph: keep as a standalone cycle.
                splice.create_fragment(FragmentKind::Cycle, tour, vslots, visible, NOT_VISIBLE);
            }
        }
    }

    // --- Persist fragments and rebuild the in-memory state. -----------------
    let mut path_map = PathMap::new(wp.id, wp.level);
    path_map.internal_cycles_merged = internal_cycles_merged;
    path_map.local_edges_consumed = local_edges.len() as u64;
    let mut new_local = Vec::new();
    let mut materialization_longs = 0u64;
    for i in 0..splice.num_fragments() {
        let mut edges = Vec::new();
        splice.materialize(i, &mut edges);
        let fragment = Fragment {
            id: FragmentId(0),
            kind: splice.fragment_kind(i),
            level: wp.level,
            partition: wp.id,
            edges,
        };
        debug_assert!(fragment.is_well_formed(), "phase 1 produced a malformed fragment");
        materialization_longs += fragment.disk_longs();
        let start = fragment.start();
        let end = fragment.end();
        let kind = fragment.kind;
        let id = store.push(fragment);
        match kind {
            FragmentKind::Path => {
                path_map.paths.push(PathEntry { fragment: id, from: start, to: end });
                new_local.push(LocalEdge { edge: EdgeRef::Virtual(id), u: start, v: end });
            }
            FragmentKind::Cycle => {
                path_map.cycles.push(CycleEntry { fragment: id, anchor: start });
            }
        }
    }

    wp.local_edges = new_local;
    wp.isolated_vertices = 0; // internal vertices are dropped from memory
    let splice_stats = SpliceStats {
        pivot_lookups,
        linked_splices: internal_cycles_merged,
        materialization_longs,
    };
    Phase1Output { path_map, counts_before, complexity, splice: splice_stats }
}

#[cfg(test)]
mod tests {
    use super::reference::run_phase1_reference;
    use super::*;
    use crate::state::WorkingPartition;
    use euler_gen::synthetic::{self, paper_fig1};
    use euler_graph::{PartitionId, PartitionedGraph};

    fn fig1_working() -> Vec<WorkingPartition> {
        let (g, a) = paper_fig1();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        pg.partitions().iter().map(WorkingPartition::from_partition).collect()
    }

    #[test]
    fn fig1_p3_produces_one_ob_pair() {
        // Paper's P3 = {v6..v9} has local path e6,7 e7,8 e8,9 which becomes
        // the OB-pair e6,9 (Fig. 1b).
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wps[2], &store);
        assert_eq!(out.path_map.num_paths(), 1);
        assert_eq!(out.path_map.num_cycles(), 0);
        let p = out.path_map.paths[0];
        let endpoints = [p.from.0, p.to.0];
        assert!(endpoints.contains(&5) && endpoints.contains(&8)); // v6 and v9
        // The partition's memory now holds one coarse edge and 2 remote edges.
        assert_eq!(wps[2].local_edges.len(), 1);
        assert!(matches!(wps[2].local_edges[0].edge, EdgeRef::Virtual(_)));
        assert_eq!(out.path_map.local_edges_consumed, 3);
    }

    #[test]
    fn fig1_p2_produces_one_eb_cycle() {
        // Paper's P2 = {v3, v4, v5}: local cycle e3,4 e4,5 e3,5 anchored at v3.
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wps[1], &store);
        assert_eq!(out.path_map.num_paths(), 0);
        assert_eq!(out.path_map.num_cycles(), 1);
        assert_eq!(out.path_map.cycles[0].anchor, euler_graph::VertexId(2)); // v3
        assert!(wps[1].local_edges.is_empty());
        assert_eq!(wps[1].remote_edges.len(), 2);
        let frag = store.get(out.path_map.cycles[0].fragment);
        assert_eq!(frag.len(), 3);
        assert!(frag.is_well_formed());
    }

    #[test]
    fn all_local_edges_consumed_exactly_once() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let mut consumed = 0;
        for wp in &mut wps {
            let before = wp.local_edges.len() as u64;
            let out = run_phase1(wp, &store);
            assert_eq!(out.path_map.local_edges_consumed, before);
            consumed += before;
        }
        // Real edges recorded in the store equal the local edges consumed.
        assert_eq!(store.total_real_edges(), consumed);
    }

    #[test]
    fn lemma1_paths_end_at_odd_boundary_vertices() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        for wp in &mut wps {
            let remote = wp.remote_degrees();
            let local = wp.local_degrees();
            let out = run_phase1(wp, &store);
            for p in &out.path_map.paths {
                for v in [p.from, p.to] {
                    let ld = local.get(&v).copied().unwrap_or(0);
                    assert_eq!(ld % 2, 1, "path endpoint {v} must have odd local degree");
                    assert!(remote.contains_key(&v), "path endpoint {v} must be a boundary vertex");
                }
            }
        }
    }

    #[test]
    fn lemma2_cycles_close_on_their_anchor() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        for wp in &mut wps {
            let out = run_phase1(wp, &store);
            for c in &out.path_map.cycles {
                let frag = store.get(c.fragment);
                assert_eq!(frag.start(), c.anchor);
                assert_eq!(frag.end(), c.anchor);
            }
        }
    }

    #[test]
    fn internal_cycles_are_merged_into_prior_fragments() {
        // A single partition containing two triangles sharing a vertex plus a
        // pendant path to a boundary: the second triangle must be spliced.
        // Build: boundary vertex 0 with 1 remote edge, triangle 0-1-2-0,
        // triangle 2-3-4-2 (internal), so the traversal from 0 may leave the
        // second triangle for step 3.
        let local = [(0u64, 1u64),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 2)];
        let mut wp = WorkingPartition {
            id: PartitionId(0),
            leaves: vec![PartitionId(0)],
            level: 0,
            local_edges: local
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| LocalEdge {
                    edge: EdgeRef::Real(euler_graph::EdgeId(i as u64)),
                    u: euler_graph::VertexId(u),
                    v: euler_graph::VertexId(v),
                })
                .collect(),
            remote_edges: vec![
                crate::state::RemoteRef {
                    edge: euler_graph::EdgeId(100),
                    local: euler_graph::VertexId(0),
                    remote: euler_graph::VertexId(99),
                    local_leaf: PartitionId(0),
                    remote_leaf: PartitionId(1),
                },
                crate::state::RemoteRef {
                    edge: euler_graph::EdgeId(101),
                    local: euler_graph::VertexId(0),
                    remote: euler_graph::VertexId(99),
                    local_leaf: PartitionId(0),
                    remote_leaf: PartitionId(1),
                },
            ],
            isolated_vertices: 0,
        };
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        // All 6 local edges must be captured in fragments of this partition.
        assert_eq!(store.total_real_edges(), 6);
        // No paths (vertex 0 has even local degree), everything hangs off the
        // boundary cycle at v0, with the second triangle spliced or anchored.
        assert_eq!(out.path_map.num_paths(), 0);
        assert!(out.path_map.num_cycles() >= 1);
        let total_frag_edges: usize = store.snapshot().iter().map(|f| f.len()).sum();
        assert_eq!(total_frag_edges, 6);
    }

    #[test]
    fn disconnected_internal_component_kept_as_standalone_cycle() {
        // Two vertex-disjoint triangles, no remote edges at all: the second
        // triangle cannot be merged into the first and is kept standalone.
        let local = [(0u64, 1u64), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let mut wp = WorkingPartition {
            id: PartitionId(0),
            leaves: vec![PartitionId(0)],
            level: 0,
            local_edges: local
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| LocalEdge {
                    edge: EdgeRef::Real(euler_graph::EdgeId(i as u64)),
                    u: euler_graph::VertexId(u),
                    v: euler_graph::VertexId(v),
                })
                .collect(),
            remote_edges: vec![],
            isolated_vertices: 0,
        };
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        assert_eq!(out.path_map.num_cycles(), 2);
        assert_eq!(out.path_map.internal_cycles_merged, 0);
    }

    #[test]
    fn torus_partition_consumes_everything_without_paths() {
        // A whole torus as a single partition (no remote edges): step 3 only.
        let g = synthetic::torus_grid(6, 6);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0; 36], 1).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let mut wp = WorkingPartition::from_partition(&pg.partitions()[0]);
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        assert_eq!(out.path_map.num_paths(), 0);
        assert_eq!(store.total_real_edges(), g.num_edges());
        assert!(wp.local_edges.is_empty());
        assert!(wp.is_exhausted());
        // The torus is connected, so everything ends up in standalone cycles
        // plus splices; at least one standalone cycle seeds the process and
        // every edge is accounted for exactly once.
        assert!(out.path_map.num_cycles() >= 1);
        let fragment_edges: usize = store.snapshot().iter().map(|f| f.len()).sum();
        assert_eq!(fragment_edges as u64, g.num_edges());
    }

    #[test]
    fn complexity_measure_reported() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wps[1], &store);
        // P2: B=1, I=2, L=3.
        assert_eq!(out.complexity, 6);
        assert_eq!(out.counts_before.local_edges, 3);
    }

    /// Asserts the dense and reference implementations produce bit-identical
    /// outputs on `wp`.
    fn assert_equivalent(wp: &WorkingPartition) {
        let store_dense = FragmentStore::new();
        let store_ref = FragmentStore::new();
        let mut wp_dense = wp.clone();
        let mut wp_ref = wp.clone();
        let out_dense = run_phase1(&mut wp_dense, &store_dense);
        let out_ref = run_phase1_reference(&mut wp_ref, &store_ref);
        assert_eq!(out_dense.path_map, out_ref.path_map, "path maps must match");
        assert_eq!(out_dense.complexity, out_ref.complexity);
        assert_eq!(out_dense.counts_before, out_ref.counts_before);
        assert_eq!(wp_dense.local_edges, wp_ref.local_edges, "residual coarse edges must match");
        assert_eq!(wp_dense.remote_edges, wp_ref.remote_edges);
        let frags_dense = store_dense.snapshot();
        let frags_ref = store_ref.snapshot();
        assert_eq!(frags_dense.len(), frags_ref.len(), "fragment counts must match");
        for (d, r) in frags_dense.iter().zip(&frags_ref) {
            assert_eq!(d.id, r.id);
            assert_eq!(d.kind, r.kind);
            assert_eq!(d.edges, r.edges, "fragment {:?} edges must match", d.id);
        }
    }

    #[test]
    fn dense_matches_reference_on_fig1() {
        for wp in fig1_working() {
            assert_equivalent(&wp);
        }
    }

    #[test]
    fn dense_matches_reference_on_torus_and_random_graphs() {
        let g = synthetic::torus_grid(8, 8);
        let a = euler_graph::PartitionAssignment::from_labels(
            (0..64).map(|i| (i % 4) as u32).collect(),
            4,
        )
        .unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        for p in pg.partitions() {
            assert_equivalent(&WorkingPartition::from_partition(p));
        }
        for seed in 0..10 {
            let g = synthetic::random_eulerian_connected(60, 8, 5, seed);
            let labels: Vec<u32> = (0..60).map(|i| (i % 3) as u32).collect();
            let a = euler_graph::PartitionAssignment::from_labels(labels, 3).unwrap();
            let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
            for p in pg.partitions() {
                assert_equivalent(&WorkingPartition::from_partition(p));
            }
        }
    }

    #[test]
    fn dense_matches_reference_with_self_loops_and_multi_edges() {
        let local = [(0u64, 0u64), (0, 1), (1, 2), (2, 0), (0, 1), (1, 0)];
        let wp = WorkingPartition {
            id: PartitionId(0),
            leaves: vec![PartitionId(0)],
            level: 0,
            local_edges: local
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| LocalEdge {
                    edge: EdgeRef::Real(euler_graph::EdgeId(i as u64)),
                    u: euler_graph::VertexId(u),
                    v: euler_graph::VertexId(v),
                })
                .collect(),
            remote_edges: vec![],
            isolated_vertices: 0,
        };
        assert_equivalent(&wp);
    }

    #[test]
    fn one_arena_serves_many_runs_bit_identically() {
        // The same arena drives every partition of every level-0 state in
        // sequence; outputs must match fresh-arena runs exactly.
        let mut arena = Phase1Arena::new();
        for seed in 0..4 {
            let g = synthetic::random_eulerian_connected(50, 6, 5, seed);
            let labels: Vec<u32> = (0..50).map(|i| (i % 3) as u32).collect();
            let a = euler_graph::PartitionAssignment::from_labels(labels, 3).unwrap();
            let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
            for p in pg.partitions() {
                let mut wp_arena = WorkingPartition::from_partition(p);
                let mut wp_fresh = wp_arena.clone();
                let store_arena = FragmentStore::new();
                let store_fresh = FragmentStore::new();
                let out_arena = run_phase1_with_arena(&mut wp_arena, &store_arena, &mut arena);
                let out_fresh = run_phase1(&mut wp_fresh, &store_fresh);
                assert_eq!(out_arena.path_map, out_fresh.path_map);
                assert_eq!(out_arena.counts_before, out_fresh.counts_before);
                assert_eq!(wp_arena.local_edges, wp_fresh.local_edges);
                assert_eq!(store_arena.snapshot().len(), store_fresh.snapshot().len());
                for (a, b) in store_arena.snapshot().iter().zip(&store_fresh.snapshot()) {
                    assert_eq!(a.edges, b.edges);
                }
            }
        }
    }
}
