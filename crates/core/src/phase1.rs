//! Phase 1: identifying local paths and cycles within a partition (Alg. 1).
//!
//! Within one partition, Phase 1 consumes *every* local edge exactly once:
//!
//! 1. While some vertex has odd unvisited local degree, start a maximal
//!    traversal there. By Lemma 1 it ends at another odd-degree vertex,
//!    yielding an edge-disjoint **path** between two odd boundary vertices
//!    (an *OB-pair*). The path is persisted as a fragment and replaced in
//!    memory by a single coarse edge between its endpoints.
//! 2. For every boundary vertex that still has unvisited local edges, start a
//!    maximal traversal. By Lemma 2 it returns to its start, yielding a
//!    **cycle** anchored at that boundary vertex, persisted and dropped from
//!    memory.
//! 3. While unvisited local edges remain, start a maximal traversal at one of
//!    their endpoints (an internal vertex), yielding an internal cycle. Per
//!    Lemma 3 it intersects an earlier fragment of this run at a *pivot*
//!    vertex, into which it is spliced (`mergeInto`); if the partition's
//!    local subgraph is disconnected and no pivot exists, the cycle is kept
//!    as a standalone anchored cycle (a generalisation the paper's
//!    connected-partition assumption makes unnecessary).
//!
//! The function is deterministic: traversal starts are chosen in ascending
//! vertex order and edges are consumed in insertion order.

use crate::fragment::{Fragment, FragmentId, FragmentKind, FragmentStore, TourEdge};
use crate::pathmap::{CycleEntry, PathEntry, PathMap};
use crate::state::{EdgeRef, LocalEdge, VertexTypeCounts, WorkingPartition};
use euler_graph::VertexId;
use std::collections::{BTreeSet, HashMap};

/// Output of one Phase-1 run on one partition.
#[derive(Clone, Debug)]
pub struct Phase1Output {
    /// Summary of the fragments found (the paper's `pathMap`).
    pub path_map: PathMap,
    /// Vertex/edge composition at the start of the run (Fig. 9 input).
    pub counts_before: VertexTypeCounts,
    /// The complexity measure `|B| + |I| + |L|` at the start of the run
    /// (Fig. 7's x axis).
    pub complexity: u64,
}

/// Internal traversal helper over the local edges of one partition.
struct Traverser<'a> {
    edges: &'a [LocalEdge],
    /// For every vertex, the indices of its incident local-edge slots.
    adjacency: HashMap<VertexId, Vec<usize>>,
    /// Per-vertex cursor into its adjacency list (already-consumed prefix).
    cursor: HashMap<VertexId, usize>,
    visited: Vec<bool>,
    /// Remaining (unvisited) local degree per vertex.
    remaining: HashMap<VertexId, u64>,
}

impl<'a> Traverser<'a> {
    fn new(edges: &'a [LocalEdge]) -> Self {
        let mut adjacency: HashMap<VertexId, Vec<usize>> = HashMap::new();
        let mut remaining: HashMap<VertexId, u64> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            adjacency.entry(e.u).or_default().push(i);
            adjacency.entry(e.v).or_default().push(i);
            *remaining.entry(e.u).or_insert(0) += 1;
            *remaining.entry(e.v).or_insert(0) += 1;
        }
        Traverser {
            edges,
            adjacency,
            cursor: HashMap::new(),
            visited: vec![false; edges.len()],
            remaining,
        }
    }

    fn remaining_degree(&self, v: VertexId) -> u64 {
        self.remaining.get(&v).copied().unwrap_or(0)
    }

    /// Next unvisited incident slot of `v`, if any.
    fn next_slot(&mut self, v: VertexId) -> Option<usize> {
        let list = self.adjacency.get(&v)?;
        let cursor = self.cursor.entry(v).or_insert(0);
        while *cursor < list.len() {
            let slot = list[*cursor];
            if !self.visited[slot] {
                return Some(slot);
            }
            *cursor += 1;
        }
        None
    }

    /// Maximal traversal from `start` along unvisited local edges, consuming
    /// them. Returns the tour edges in traversal order (possibly empty).
    fn walk(&mut self, start: VertexId) -> Vec<TourEdge> {
        let mut tour = Vec::new();
        let mut current = start;
        while let Some(slot) = self.next_slot(current) {
            self.visited[slot] = true;
            let e = &self.edges[slot];
            let next = if e.u == current { e.v } else { e.u };
            *self.remaining.get_mut(&e.u).expect("endpoint tracked") -= 1;
            *self.remaining.get_mut(&e.v).expect("endpoint tracked") -= 1;
            tour.push(match e.edge {
                EdgeRef::Real(edge) => TourEdge::Real { edge, from: current, to: next },
                EdgeRef::Virtual(fragment) => TourEdge::Virtual { fragment, from: current, to: next },
            });
            current = next;
        }
        tour
    }

    fn any_unvisited(&self) -> Option<usize> {
        self.visited.iter().position(|&v| !v)
    }
}

/// A fragment under construction during one Phase-1 run, before it receives
/// its global id from the store.
struct PendingFragment {
    kind: FragmentKind,
    edges: Vec<TourEdge>,
}

/// Which pending fragment a visible vertex belongs to. The exact position is
/// looked up at splice time (earlier splices shift positions).
#[derive(Clone, Copy)]
struct PivotRef {
    fragment: usize,
}

/// Runs Phase 1 on `wp`, persisting fragments into `store` and replacing the
/// partition's local edges with the coarse OB-pair edges of the paths found.
pub fn run_phase1(wp: &mut WorkingPartition, store: &FragmentStore) -> Phase1Output {
    let counts_before = wp.vertex_type_counts();
    let complexity = counts_before.phase1_complexity();
    let remote_deg = wp.remote_degrees();
    let local_edges = std::mem::take(&mut wp.local_edges);
    let mut traverser = Traverser::new(&local_edges);

    let mut pending: Vec<PendingFragment> = Vec::new();
    // First position of every visible vertex in every pending fragment, used
    // by mergeInto to find pivots.
    let mut visible: HashMap<VertexId, PivotRef> = HashMap::new();

    fn register_visible(visible: &mut HashMap<VertexId, PivotRef>, fragment: usize, edges: &[TourEdge]) {
        for e in edges {
            visible.entry(e.from()).or_insert(PivotRef { fragment });
        }
        if let Some(last) = edges.last() {
            visible.entry(last.to()).or_insert(PivotRef { fragment });
        }
    }

    // --- Step 1: OB paths. -------------------------------------------------
    let mut odd: BTreeSet<VertexId> = traverser
        .remaining
        .iter()
        .filter(|(_, &d)| d % 2 == 1)
        .map(|(&v, _)| v)
        .collect();
    while let Some(&start) = odd.iter().next() {
        odd.remove(&start);
        let tour = traverser.walk(start);
        debug_assert!(!tour.is_empty(), "odd-degree vertex must have an unvisited edge");
        let end = tour.last().expect("non-empty").to();
        debug_assert_ne!(start, end, "a maximal walk from an odd vertex ends elsewhere (Lemma 1)");
        odd.remove(&end);
        let idx = pending.len();
        register_visible(&mut visible, idx, &tour);
        pending.push(PendingFragment { kind: FragmentKind::Path, edges: tour });
    }

    // --- Step 2: cycles at boundary vertices. -------------------------------
    let mut boundary: Vec<VertexId> = remote_deg.keys().copied().collect();
    boundary.sort_unstable();
    for b in boundary {
        if traverser.remaining_degree(b) == 0 {
            continue; // trivial singleton: nothing to record
        }
        let tour = traverser.walk(b);
        debug_assert_eq!(tour.last().map(|e| e.to()), Some(b), "even-degree traversal closes (Lemma 2)");
        let idx = pending.len();
        register_visible(&mut visible, idx, &tour);
        pending.push(PendingFragment { kind: FragmentKind::Cycle, edges: tour });
    }

    // --- Step 3: cycles at internal vertices, spliced at pivots. ------------
    let mut internal_cycles_merged = 0u64;
    while let Some(slot) = traverser.any_unvisited() {
        let start = local_edges[slot].u;
        let tour = traverser.walk(start);
        debug_assert_eq!(tour.last().map(|e| e.to()), Some(start), "internal traversal closes (Lemma 2)");
        // mergeInto: find a pivot vertex shared with an existing fragment.
        let pivot = tour
            .iter()
            .map(|e| e.from())
            .find(|v| visible.contains_key(v))
            .map(|v| (v, visible[&v]));
        match pivot {
            Some((pivot_vertex, at)) => {
                // Rotate the cycle to start at the pivot, then splice it into
                // the containing fragment at the pivot's current position.
                let rot = tour
                    .iter()
                    .position(|e| e.from() == pivot_vertex)
                    .expect("pivot is a tour endpoint");
                let mut rotated = Vec::with_capacity(tour.len());
                rotated.extend_from_slice(&tour[rot..]);
                rotated.extend_from_slice(&tour[..rot]);
                let target = &mut pending[at.fragment].edges;
                let insert_at = target
                    .iter()
                    .position(|e| e.from() == pivot_vertex)
                    .unwrap_or(target.len());
                for e in &rotated {
                    visible.entry(e.from()).or_insert(PivotRef { fragment: at.fragment });
                }
                target.splice(insert_at..insert_at, rotated);
                internal_cycles_merged += 1;
            }
            None => {
                // Disconnected local subgraph: keep as a standalone cycle.
                let idx = pending.len();
                register_visible(&mut visible, idx, &tour);
                pending.push(PendingFragment { kind: FragmentKind::Cycle, edges: tour });
            }
        }
    }

    // --- Persist fragments and rebuild the in-memory state. -----------------
    let mut path_map = PathMap::new(wp.id, wp.level);
    path_map.internal_cycles_merged = internal_cycles_merged;
    path_map.local_edges_consumed = local_edges.len() as u64;
    let mut new_local = Vec::new();
    for pf in pending {
        let fragment = Fragment {
            id: FragmentId(0),
            kind: pf.kind,
            level: wp.level,
            partition: wp.id,
            edges: pf.edges,
        };
        debug_assert!(fragment.is_well_formed(), "phase 1 produced a malformed fragment");
        let start = fragment.start();
        let end = fragment.end();
        let kind = fragment.kind;
        let id = store.push(fragment);
        match kind {
            FragmentKind::Path => {
                path_map.paths.push(PathEntry { fragment: id, from: start, to: end });
                new_local.push(LocalEdge { edge: EdgeRef::Virtual(id), u: start, v: end });
            }
            FragmentKind::Cycle => {
                path_map.cycles.push(CycleEntry { fragment: id, anchor: start });
            }
        }
    }

    wp.local_edges = new_local;
    wp.isolated_vertices = 0; // internal vertices are dropped from memory
    Phase1Output { path_map, counts_before, complexity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::WorkingPartition;
    use euler_gen::synthetic::{self, paper_fig1};
    use euler_graph::{PartitionId, PartitionedGraph};

    fn fig1_working() -> Vec<WorkingPartition> {
        let (g, a) = paper_fig1();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        pg.partitions().iter().map(WorkingPartition::from_partition).collect()
    }

    #[test]
    fn fig1_p3_produces_one_ob_pair() {
        // Paper's P3 = {v6..v9} has local path e6,7 e7,8 e8,9 which becomes
        // the OB-pair e6,9 (Fig. 1b).
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wps[2], &store);
        assert_eq!(out.path_map.num_paths(), 1);
        assert_eq!(out.path_map.num_cycles(), 0);
        let p = out.path_map.paths[0];
        let endpoints = [p.from.0, p.to.0];
        assert!(endpoints.contains(&5) && endpoints.contains(&8)); // v6 and v9
        // The partition's memory now holds one coarse edge and 2 remote edges.
        assert_eq!(wps[2].local_edges.len(), 1);
        assert!(matches!(wps[2].local_edges[0].edge, EdgeRef::Virtual(_)));
        assert_eq!(out.path_map.local_edges_consumed, 3);
    }

    #[test]
    fn fig1_p2_produces_one_eb_cycle() {
        // Paper's P2 = {v3, v4, v5}: local cycle e3,4 e4,5 e3,5 anchored at v3.
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wps[1], &store);
        assert_eq!(out.path_map.num_paths(), 0);
        assert_eq!(out.path_map.num_cycles(), 1);
        assert_eq!(out.path_map.cycles[0].anchor, euler_graph::VertexId(2)); // v3
        assert!(wps[1].local_edges.is_empty());
        assert_eq!(wps[1].remote_edges.len(), 2);
        let frag = store.get(out.path_map.cycles[0].fragment);
        assert_eq!(frag.len(), 3);
        assert!(frag.is_well_formed());
    }

    #[test]
    fn all_local_edges_consumed_exactly_once() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let mut consumed = 0;
        for wp in &mut wps {
            let before = wp.local_edges.len() as u64;
            let out = run_phase1(wp, &store);
            assert_eq!(out.path_map.local_edges_consumed, before);
            consumed += before;
        }
        // Real edges recorded in the store equal the local edges consumed.
        assert_eq!(store.total_real_edges(), consumed);
    }

    #[test]
    fn lemma1_paths_end_at_odd_boundary_vertices() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        for wp in &mut wps {
            let remote = wp.remote_degrees();
            let local = wp.local_degrees();
            let out = run_phase1(wp, &store);
            for p in &out.path_map.paths {
                for v in [p.from, p.to] {
                    let ld = local.get(&v).copied().unwrap_or(0);
                    assert_eq!(ld % 2, 1, "path endpoint {v} must have odd local degree");
                    assert!(remote.contains_key(&v), "path endpoint {v} must be a boundary vertex");
                }
            }
        }
    }

    #[test]
    fn lemma2_cycles_close_on_their_anchor() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        for wp in &mut wps {
            let out = run_phase1(wp, &store);
            for c in &out.path_map.cycles {
                let frag = store.get(c.fragment);
                assert_eq!(frag.start(), c.anchor);
                assert_eq!(frag.end(), c.anchor);
            }
        }
    }

    #[test]
    fn internal_cycles_are_merged_into_prior_fragments() {
        // A single partition containing two triangles sharing a vertex plus a
        // pendant path to a boundary: the second triangle must be spliced.
        // Build: boundary vertex 0 with 1 remote edge, triangle 0-1-2-0,
        // triangle 2-3-4-2 (internal), so the traversal from 0 may leave the
        // second triangle for step 3.
        let local = vec![
            (0u64, 1u64),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 2),
        ];
        let mut wp = WorkingPartition {
            id: PartitionId(0),
            leaves: vec![PartitionId(0)],
            level: 0,
            local_edges: local
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| LocalEdge {
                    edge: EdgeRef::Real(euler_graph::EdgeId(i as u64)),
                    u: euler_graph::VertexId(u),
                    v: euler_graph::VertexId(v),
                })
                .collect(),
            remote_edges: vec![
                crate::state::RemoteRef {
                    edge: euler_graph::EdgeId(100),
                    local: euler_graph::VertexId(0),
                    remote: euler_graph::VertexId(99),
                    local_leaf: PartitionId(0),
                    remote_leaf: PartitionId(1),
                },
                crate::state::RemoteRef {
                    edge: euler_graph::EdgeId(101),
                    local: euler_graph::VertexId(0),
                    remote: euler_graph::VertexId(99),
                    local_leaf: PartitionId(0),
                    remote_leaf: PartitionId(1),
                },
            ],
            isolated_vertices: 0,
        };
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        // All 6 local edges must be captured in fragments of this partition.
        assert_eq!(store.total_real_edges(), 6);
        // No paths (vertex 0 has even local degree), everything hangs off the
        // boundary cycle at v0, with the second triangle spliced or anchored.
        assert_eq!(out.path_map.num_paths(), 0);
        assert!(out.path_map.num_cycles() >= 1);
        let total_frag_edges: usize = store.snapshot().iter().map(|f| f.len()).sum();
        assert_eq!(total_frag_edges, 6);
    }

    #[test]
    fn disconnected_internal_component_kept_as_standalone_cycle() {
        // Two vertex-disjoint triangles, no remote edges at all: the second
        // triangle cannot be merged into the first and is kept standalone.
        let local = vec![(0u64, 1u64), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        let mut wp = WorkingPartition {
            id: PartitionId(0),
            leaves: vec![PartitionId(0)],
            level: 0,
            local_edges: local
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| LocalEdge {
                    edge: EdgeRef::Real(euler_graph::EdgeId(i as u64)),
                    u: euler_graph::VertexId(u),
                    v: euler_graph::VertexId(v),
                })
                .collect(),
            remote_edges: vec![],
            isolated_vertices: 0,
        };
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        assert_eq!(out.path_map.num_cycles(), 2);
        assert_eq!(out.path_map.internal_cycles_merged, 0);
    }

    #[test]
    fn torus_partition_consumes_everything_without_paths() {
        // A whole torus as a single partition (no remote edges): step 3 only.
        let g = synthetic::torus_grid(6, 6);
        let a = euler_graph::PartitionAssignment::from_labels(vec![0; 36], 1).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let mut wp = WorkingPartition::from_partition(&pg.partitions()[0]);
        let store = FragmentStore::new();
        let out = run_phase1(&mut wp, &store);
        assert_eq!(out.path_map.num_paths(), 0);
        assert_eq!(store.total_real_edges(), g.num_edges());
        assert!(wp.local_edges.is_empty());
        assert!(wp.is_exhausted());
        // The torus is connected, so everything ends up in standalone cycles
        // plus splices; at least one standalone cycle seeds the process and
        // every edge is accounted for exactly once.
        assert!(out.path_map.num_cycles() >= 1);
        let fragment_edges: usize = store.snapshot().iter().map(|f| f.len()).sum();
        assert_eq!(fragment_edges as u64, g.num_edges());
    }

    #[test]
    fn complexity_measure_reported() {
        let mut wps = fig1_working();
        let store = FragmentStore::new();
        let out = run_phase1(&mut wps[1], &store);
        // P2: B=1, I=2, L=3.
        assert_eq!(out.complexity, 6);
        assert_eq!(out.counts_before.local_edges, 3);
    }
}
