//! Error types for the Euler circuit algorithm.

use euler_graph::{GraphError, VertexId};
use std::fmt;

/// Errors raised by the partition-centric Euler circuit algorithm.
#[derive(Debug)]
pub enum EulerError {
    /// The input graph failed the Eulerian precondition.
    Graph(GraphError),
    /// The circuit reconstruction visited an edge more than once (internal
    /// invariant violation — indicates a bug, surfaced instead of panicking).
    DuplicateEdge {
        /// The edge that was emitted twice.
        edge: euler_graph::EdgeId,
    },
    /// The circuit reconstruction finished but some edges were never emitted.
    MissingEdges {
        /// Number of edges not covered.
        missing: u64,
    },
    /// Two consecutive circuit edges do not share the expected vertex.
    BrokenChain {
        /// Position in the circuit where the chain breaks.
        position: usize,
        /// Vertex the previous edge ended at.
        expected: VertexId,
        /// Vertex the next edge starts at.
        found: VertexId,
    },
    /// The circuit does not return to its starting vertex.
    NotClosed {
        /// Start vertex of the circuit.
        start: VertexId,
        /// End vertex of the circuit.
        end: VertexId,
    },
    /// The edges span multiple connected components, so a single circuit does
    /// not exist; the result carries one circuit per component instead.
    MultipleCircuits {
        /// Number of edge-disjoint closed circuits produced.
        count: usize,
    },
    /// The configuration is invalid (e.g. zero partitions).
    InvalidConfig(String),
    /// A distributed run failed unrecoverably (transport failure, restart
    /// budget exhausted, protocol violation).
    Distributed(String),
    /// The run was cancelled via a [`CancelToken`](crate::CancelToken)
    /// before it finished; no result was produced.
    Cancelled,
}

impl fmt::Display for EulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EulerError::Graph(e) => write!(f, "input graph error: {e}"),
            EulerError::DuplicateEdge { edge } => write!(f, "edge {edge} appears more than once in the circuit"),
            EulerError::MissingEdges { missing } => write!(f, "{missing} edges are missing from the circuit"),
            EulerError::BrokenChain { position, expected, found } => write!(
                f,
                "circuit breaks at position {position}: expected to continue from {expected}, found {found}"
            ),
            EulerError::NotClosed { start, end } => {
                write!(f, "circuit starts at {start} but ends at {end}")
            }
            EulerError::MultipleCircuits { count } => {
                write!(f, "graph edges are disconnected; produced {count} separate circuits")
            }
            EulerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EulerError::Distributed(msg) => write!(f, "distributed run failed: {msg}"),
            EulerError::Cancelled => write!(f, "run cancelled before completion"),
        }
    }
}

impl std::error::Error for EulerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EulerError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for EulerError {
    fn from(e: GraphError) -> Self {
        EulerError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::EdgeId;

    #[test]
    fn display_mentions_key_fields() {
        let e = EulerError::DuplicateEdge { edge: EdgeId(5) };
        assert!(e.to_string().contains("e5"));
        let e = EulerError::MissingEdges { missing: 3 };
        assert!(e.to_string().contains('3'));
        let e = EulerError::NotClosed { start: VertexId(1), end: VertexId(2) };
        assert!(e.to_string().contains("v1") && e.to_string().contains("v2"));
        let e = EulerError::MultipleCircuits { count: 2 };
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn graph_error_converts() {
        let ge = GraphError::Disconnected { components: 2 };
        let e: EulerError = ge.into();
        assert!(matches!(e, EulerError::Graph(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
