//! The evolving in-memory state of a (possibly merged) partition.
//!
//! A [`WorkingPartition`] is what a machine holds for one partition at one
//! merge level: the local edges Phase 1 must consume (real graph edges at
//! level 0; a mix of newly-localised former remote edges and coarse virtual
//! edges at higher levels), plus the remote edges that still point at other
//! partitions. Everything else — consumed edges, interior vertices of paths,
//! cycles — lives in the [`crate::FragmentStore`] ("disk") and does not count
//! toward partition memory, exactly as in the paper's design.

use crate::fragment::FragmentId;
use euler_graph::{EdgeId, LocalIndex, Partition, PartitionId, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reference to a traversable local edge: either a real graph edge or a
/// coarse OB-pair edge standing for a lower-level path fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeRef {
    /// A real edge of the input graph.
    Real(EdgeId),
    /// A coarse edge standing for a path fragment.
    Virtual(FragmentId),
}

/// A local edge of a working partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalEdge {
    /// What is being traversed.
    pub edge: EdgeRef,
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
}

/// A remote edge of a working partition: one endpoint here, one in another
/// partition (identified by the *leaf* partition that originally owned it;
/// the current merged owner is resolved through the merge tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteRef {
    /// The underlying graph edge.
    pub edge: EdgeId,
    /// The endpoint inside this partition.
    pub local: VertexId,
    /// The endpoint inside the other partition.
    pub remote: VertexId,
    /// Leaf partition that originally owned the local endpoint (used to
    /// decide, via the merge tree, at which level this edge becomes local).
    pub local_leaf: PartitionId,
    /// Leaf partition that originally owned the remote endpoint.
    pub remote_leaf: PartitionId,
}

/// Per-partition vertex/edge composition at the start of a Phase-1 run —
/// the quantities plotted per partition and level in Fig. 9.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexTypeCounts {
    /// Internal vertices (no remote edges), necessarily of even local degree.
    pub even_internal: u64,
    /// Boundary vertices with even local degree (`EB`).
    pub even_boundary: u64,
    /// Boundary vertices with odd local degree (`OB`).
    pub odd_boundary: u64,
    /// Remote edges held by the partition.
    pub remote_edges: u64,
    /// Local edges held by the partition.
    pub local_edges: u64,
}

impl VertexTypeCounts {
    /// Total vertices counted.
    pub fn total_vertices(&self) -> u64 {
        self.even_internal + self.even_boundary + self.odd_boundary
    }

    /// The Phase-1 complexity measure `O(|B| + |I| + |L|)` (§3.5).
    pub fn phase1_complexity(&self) -> u64 {
        self.total_vertices() + self.local_edges
    }
}

/// The in-memory state of one (possibly merged) partition at one level.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkingPartition {
    /// Current partition id (the id of the merge-tree parent representing it).
    pub id: PartitionId,
    /// Leaf partitions merged into this one (including itself).
    pub leaves: Vec<PartitionId>,
    /// Merge level this state belongs to (0 = original partitions).
    pub level: u32,
    /// Local edges awaiting consumption by Phase 1 at this level.
    pub local_edges: Vec<LocalEdge>,
    /// Remote edges to partitions not yet merged in.
    pub remote_edges: Vec<RemoteRef>,
    /// Vertices that carry no edges at all in this partition (isolated within
    /// the partition). Kept only for faithful vertex accounting at level 0.
    pub isolated_vertices: u64,
}

impl WorkingPartition {
    /// Builds the level-0 working state from a static graph partition.
    pub fn from_partition(p: &Partition) -> Self {
        let local_edges = p
            .local_edges
            .iter()
            .map(|&(e, u, v)| LocalEdge { edge: EdgeRef::Real(e), u, v })
            .collect();
        let remote_edges = p
            .remote_edges
            .iter()
            .map(|r| RemoteRef {
                edge: r.edge,
                local: r.local_vertex,
                remote: r.remote_vertex,
                local_leaf: p.id,
                remote_leaf: r.remote_partition,
            })
            .collect();
        let mut wp = WorkingPartition {
            id: p.id,
            leaves: vec![p.id],
            level: 0,
            local_edges,
            remote_edges,
            isolated_vertices: 0,
        };
        // Count vertices of the original partition that touch no edge at all.
        let with_edges = LocalIndex::from_vertices(
            wp.local_edges
                .iter()
                .flat_map(|e| [e.u, e.v])
                .chain(wp.remote_edges.iter().map(|r| r.local)),
        );
        wp.isolated_vertices = p.vertices().filter(|v| !with_edges.contains(*v)).count() as u64;
        wp
    }

    /// Local degree of every vertex appearing in the local edges. A self-loop
    /// contributes 2.
    pub fn local_degrees(&self) -> HashMap<VertexId, u64> {
        let mut deg: HashMap<VertexId, u64> = HashMap::new();
        for e in &self.local_edges {
            *deg.entry(e.u).or_insert(0) += 1;
            *deg.entry(e.v).or_insert(0) += 1;
        }
        deg
    }

    /// Remote degree of every vertex appearing in the remote edges.
    pub fn remote_degrees(&self) -> HashMap<VertexId, u64> {
        let mut deg: HashMap<VertexId, u64> = HashMap::new();
        for r in &self.remote_edges {
            *deg.entry(r.local).or_insert(0) += 1;
        }
        deg
    }

    /// The partition's boundary vertices (local endpoints of remote edges),
    /// ascending and de-duplicated. Computed without hashing — this is the
    /// start-vertex list for Phase 1's step 2, whose order is part of the
    /// algorithm's determinism contract.
    pub fn boundary_vertices_sorted(&self) -> Vec<VertexId> {
        let mut boundary: Vec<VertexId> = self.remote_edges.iter().map(|r| r.local).collect();
        boundary.sort_unstable();
        boundary.dedup();
        boundary
    }

    /// A dense index over every vertex this partition currently retains
    /// (endpoints of local edges plus local endpoints of remote edges), with
    /// per-slot local degrees and boundary flags — the flat-array form of the
    /// edge/boundary bookkeeping used by the vertex classification below and
    /// by the Phase-1 kernel.
    pub fn degree_index(&self) -> (LocalIndex, Vec<u32>, Vec<bool>) {
        let index = LocalIndex::from_vertices(
            self.local_edges
                .iter()
                .flat_map(|e| [e.u, e.v])
                .chain(self.remote_edges.iter().map(|r| r.local)),
        );
        let mut local_deg: Vec<u32> = index.zeroed();
        for e in &self.local_edges {
            local_deg[index.slot(e.u).expect("interned") as usize] += 1;
            local_deg[index.slot(e.v).expect("interned") as usize] += 1;
        }
        let mut is_boundary: Vec<bool> = index.zeroed();
        for r in &self.remote_edges {
            is_boundary[index.slot(r.local).expect("interned") as usize] = true;
        }
        (index, local_deg, is_boundary)
    }

    /// Classifies the partition's vertices and edges (Fig.-9 composition).
    pub fn vertex_type_counts(&self) -> VertexTypeCounts {
        let (index, local_deg, is_boundary) = self.degree_index();
        let mut counts = VertexTypeCounts {
            remote_edges: self.remote_edges.len() as u64,
            local_edges: self.local_edges.len() as u64,
            even_internal: self.isolated_vertices,
            ..Default::default()
        };
        for s in 0..index.len() {
            match (is_boundary[s], local_deg[s] % 2 == 1) {
                (true, true) => counts.odd_boundary += 1,
                (true, false) => counts.even_boundary += 1,
                (false, _) => counts.even_internal += 1,
            }
        }
        counts
    }

    /// The Phase-1 complexity measure `O(|B| + |I| + |L|)` for this state.
    pub fn phase1_complexity(&self) -> u64 {
        self.vertex_type_counts().phase1_complexity()
    }

    /// In-memory state size in Longs, using the paper's accounting: one Long
    /// per retained vertex, three per local edge (edge id + endpoints) and
    /// four per remote edge (edge id, endpoints, owner).
    pub fn memory_longs(&self) -> u64 {
        let c = self.vertex_type_counts();
        c.total_vertices() + 3 * c.local_edges + 4 * c.remote_edges
    }

    /// Number of Longs that would be serialised to ship this partition's
    /// state to another machine (Phase-2 transfer).
    pub fn transfer_longs(&self) -> u64 {
        // Same representation is shipped: vertices are implicit in the edges.
        3 * self.local_edges.len() as u64 + 4 * self.remote_edges.len() as u64 + 4
    }

    /// True when nothing remains to do for this partition at this level.
    pub fn is_exhausted(&self) -> bool {
        self.local_edges.is_empty() && self.remote_edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_gen::synthetic::paper_fig1;
    use euler_graph::PartitionedGraph;

    fn fig1_working() -> Vec<WorkingPartition> {
        let (g, a) = paper_fig1();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        pg.partitions().iter().map(WorkingPartition::from_partition).collect()
    }

    #[test]
    fn level0_conversion_counts_match_fig1() {
        let wps = fig1_working();
        // Paper's P2 (index 1) = {v3, v4, v5}: 3 local edges, 2 remote edges, 1 EB, 2 internal.
        let p2 = &wps[1];
        assert_eq!(p2.local_edges.len(), 3);
        assert_eq!(p2.remote_edges.len(), 2);
        let c = p2.vertex_type_counts();
        assert_eq!(c.even_boundary, 1);
        assert_eq!(c.odd_boundary, 0);
        assert_eq!(c.even_internal, 2);
        assert_eq!(c.phase1_complexity(), 3 + 3);
    }

    #[test]
    fn fig1_p3_has_two_odd_boundaries() {
        let wps = fig1_working();
        let p3 = &wps[2];
        let c = p3.vertex_type_counts();
        assert_eq!(c.odd_boundary, 2);
        assert_eq!(c.even_boundary, 0);
        assert_eq!(c.even_internal, 2);
    }

    #[test]
    fn memory_longs_positive_and_consistent() {
        for wp in fig1_working() {
            let c = wp.vertex_type_counts();
            assert_eq!(
                wp.memory_longs(),
                c.total_vertices() + 3 * c.local_edges + 4 * c.remote_edges
            );
            assert!(wp.memory_longs() > 0);
        }
    }

    #[test]
    fn degrees_follow_parity_invariant() {
        // Eulerian input: local degree + remote degree is even for every vertex.
        for wp in fig1_working() {
            let local = wp.local_degrees();
            let remote = wp.remote_degrees();
            let mut all: std::collections::HashSet<VertexId> = local.keys().copied().collect();
            all.extend(remote.keys().copied());
            for v in all {
                let total = local.get(&v).copied().unwrap_or(0) + remote.get(&v).copied().unwrap_or(0);
                assert_eq!(total % 2, 0, "vertex {v} has odd total degree");
            }
        }
    }

    #[test]
    fn isolated_vertices_counted() {
        let p = Partition {
            id: PartitionId(0),
            internal: vec![VertexId(0), VertexId(1)],
            boundary: vec![],
            local_edges: vec![],
            remote_edges: vec![],
        };
        let wp = WorkingPartition::from_partition(&p);
        assert_eq!(wp.isolated_vertices, 2);
        assert!(wp.is_exhausted());
        assert_eq!(wp.vertex_type_counts().even_internal, 2);
    }
}
