//! Path and cycle fragments, and the fragment store ("persist to disk").
//!
//! Phase 1 consumes local edges and produces *fragments*: maximal local paths
//! between odd-degree boundary vertices and local cycles anchored at a vertex.
//! Each path fragment is replaced in partition memory by a single coarse
//! "OB-pair" edge (a [`TourEdge::Virtual`] reference to the fragment); cycle
//! fragments are removed from memory entirely and only re-read during Phase 3.
//! The paper persists this book-keeping to disk; here the [`FragmentStore`]
//! plays that role (append-only, shared across partitions/workers, cheap to
//! write, only read back in Phase 3), with the same effect on the partitions'
//! *in-memory* Long accounting.

use euler_graph::{EdgeId, LocalIndex, PartitionId, VertexId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a fragment in the [`FragmentStore`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FragmentId(pub u64);

impl FragmentId {
    /// Returns the identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One traversed edge of a fragment, in traversal order and direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TourEdge {
    /// A real graph edge traversed from `from` to `to`.
    Real {
        /// The underlying edge.
        edge: EdgeId,
        /// Vertex the traversal enters the edge at.
        from: VertexId,
        /// Vertex the traversal leaves the edge at.
        to: VertexId,
    },
    /// A coarse edge standing for a lower-level path fragment, traversed from
    /// `from` to `to` (which are the fragment's endpoints, possibly reversed).
    Virtual {
        /// The referenced path fragment.
        fragment: FragmentId,
        /// Entry vertex.
        from: VertexId,
        /// Exit vertex.
        to: VertexId,
    },
}

impl TourEdge {
    /// Vertex this tour edge starts at.
    pub fn from(&self) -> VertexId {
        match *self {
            TourEdge::Real { from, .. } | TourEdge::Virtual { from, .. } => from,
        }
    }

    /// Vertex this tour edge ends at.
    pub fn to(&self) -> VertexId {
        match *self {
            TourEdge::Real { to, .. } | TourEdge::Virtual { to, .. } => to,
        }
    }

    /// The same tour edge traversed in the opposite direction.
    pub fn reversed(&self) -> TourEdge {
        match *self {
            TourEdge::Real { edge, from, to } => TourEdge::Real { edge, from: to, to: from },
            TourEdge::Virtual { fragment, from, to } => TourEdge::Virtual { fragment, from: to, to: from },
        }
    }

    /// True for [`TourEdge::Real`].
    pub fn is_real(&self) -> bool {
        matches!(self, TourEdge::Real { .. })
    }
}

/// Whether a fragment is an open path (OB-pair) or a closed cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragmentKind {
    /// Maximal local path between two odd-degree boundary vertices.
    Path,
    /// Local cycle anchored at (starting and ending at) one vertex.
    Cycle,
}

/// A path or cycle found by Phase 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fragment {
    /// Identifier in the store.
    pub id: FragmentId,
    /// Path or cycle.
    pub kind: FragmentKind,
    /// Merge level at which the fragment was found (0 = leaf partitions).
    pub level: u32,
    /// Partition (current merged id) that found the fragment.
    pub partition: PartitionId,
    /// Traversed edges in order. For a path, `edges[0].from()` is the start
    /// vertex and `edges.last().to()` the end vertex; for a cycle both equal
    /// the anchor.
    pub edges: Vec<TourEdge>,
}

impl Fragment {
    /// Start vertex (first tour edge's source). Cycles start at their anchor.
    pub fn start(&self) -> VertexId {
        self.edges.first().expect("fragments are never empty").from()
    }

    /// End vertex (last tour edge's target). Equals [`start`](Self::start)
    /// for cycles.
    pub fn end(&self) -> VertexId {
        self.edges.last().expect("fragments are never empty").to()
    }

    /// Number of tour edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Fragments are never empty, but the standard pairing is provided.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All distinct vertices that appear as tour-edge endpoints, in first-seen
    /// order. These are the "visible" vertices at this fragment's granularity
    /// (vertices interior to nested virtual edges are not included).
    /// De-duplication runs over an interned slot bitmap rather than a hash
    /// set.
    pub fn visible_vertices(&self) -> Vec<VertexId> {
        let index =
            LocalIndex::from_vertices(self.edges.iter().flat_map(|e| [e.from(), e.to()]));
        let mut seen: Vec<bool> = index.zeroed();
        let mut out = Vec::with_capacity(index.len());
        for e in &self.edges {
            for v in [e.from(), e.to()] {
                let s = index.slot(v).expect("endpoint interned") as usize;
                if !seen[s] {
                    seen[s] = true;
                    out.push(v);
                }
            }
        }
        out
    }

    /// Checks the internal chaining invariant: consecutive tour edges share a
    /// vertex and (for cycles) the fragment closes.
    pub fn is_well_formed(&self) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        for w in self.edges.windows(2) {
            if w[0].to() != w[1].from() {
                return false;
            }
        }
        match self.kind {
            FragmentKind::Cycle => self.start() == self.end(),
            FragmentKind::Path => true,
        }
    }

    /// Number of Longs the fragment occupies *on disk* (not in partition
    /// memory): kind/level/partition header plus 3 per tour edge.
    pub fn disk_longs(&self) -> u64 {
        4 + 3 * self.edges.len() as u64
    }
}

/// Append-only store of fragments, shared across partitions and workers.
///
/// Plays the role of the paper's per-partition disk persistence: writes are
/// cheap and do not count toward partition memory; Phase 3 reads everything
/// back once.
#[derive(Clone, Debug, Default)]
pub struct FragmentStore {
    inner: Arc<Mutex<Vec<Fragment>>>,
}

impl FragmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fragment, assigning and returning its id. The `id` field of
    /// the passed fragment is overwritten.
    pub fn push(&self, mut fragment: Fragment) -> FragmentId {
        let mut inner = self.inner.lock();
        let id = FragmentId(inner.len() as u64);
        fragment.id = id;
        inner.push(fragment);
        id
    }

    /// Returns a clone of the fragment with the given id.
    pub fn get(&self, id: FragmentId) -> Fragment {
        self.inner.lock()[id.index()].clone()
    }

    /// Replaces an existing fragment (used by `mergeInto` when an internal
    /// cycle is spliced into a fragment created earlier in the same Phase-1
    /// invocation).
    pub fn replace(&self, id: FragmentId, fragment: Fragment) {
        let mut inner = self.inner.lock();
        let mut fragment = fragment;
        fragment.id = id;
        inner[id.index()] = fragment;
    }

    /// Number of fragments stored.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no fragments are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every fragment (used by tests and reporting).
    pub fn snapshot(&self) -> Vec<Fragment> {
        self.inner.lock().clone()
    }

    /// Runs `f` over all fragments under the lock, without cloning them —
    /// the zero-copy read path Phase 3 uses to build its splice index.
    pub fn with_all<R>(&self, f: impl FnOnce(&[Fragment]) -> R) -> R {
        f(&self.inner.lock())
    }

    /// Ids of all cycle fragments (the ones Phase 3 must splice).
    pub fn cycle_ids(&self) -> Vec<FragmentId> {
        self.inner
            .lock()
            .iter()
            .filter(|f| f.kind == FragmentKind::Cycle)
            .map(|f| f.id)
            .collect()
    }

    /// Total Longs written to "disk".
    pub fn disk_longs(&self) -> u64 {
        self.inner.lock().iter().map(|f| f.disk_longs()).sum()
    }

    /// Total number of *real* edges recorded across all fragments. When the
    /// run is complete this must equal the number of graph edges.
    pub fn total_real_edges(&self) -> u64 {
        self.inner
            .lock()
            .iter()
            .flat_map(|f| f.edges.iter())
            .filter(|e| e.is_real())
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(edge: u64, from: u64, to: u64) -> TourEdge {
        TourEdge::Real { edge: EdgeId(edge), from: VertexId(from), to: VertexId(to) }
    }

    #[test]
    fn tour_edge_endpoints_and_reverse() {
        let e = real(3, 1, 2);
        assert_eq!(e.from(), VertexId(1));
        assert_eq!(e.to(), VertexId(2));
        let r = e.reversed();
        assert_eq!(r.from(), VertexId(2));
        assert_eq!(r.to(), VertexId(1));
        assert!(e.is_real());
        let v = TourEdge::Virtual { fragment: FragmentId(0), from: VertexId(5), to: VertexId(6) };
        assert!(!v.is_real());
        assert_eq!(v.reversed().from(), VertexId(6));
    }

    #[test]
    fn fragment_well_formedness() {
        let path = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 1, 2), real(1, 2, 3)],
        };
        assert!(path.is_well_formed());
        assert_eq!(path.start(), VertexId(1));
        assert_eq!(path.end(), VertexId(3));
        assert_eq!(path.len(), 2);
        assert_eq!(path.visible_vertices(), vec![VertexId(1), VertexId(2), VertexId(3)]);

        let broken = Fragment { edges: vec![real(0, 1, 2), real(1, 3, 4)], ..path.clone() };
        assert!(!broken.is_well_formed());

        let open_cycle = Fragment { kind: FragmentKind::Cycle, ..path.clone() };
        assert!(!open_cycle.is_well_formed());

        let cycle = Fragment {
            kind: FragmentKind::Cycle,
            edges: vec![real(0, 1, 2), real(1, 2, 1)],
            ..path
        };
        assert!(cycle.is_well_formed());
        assert_eq!(cycle.start(), cycle.end());
    }

    #[test]
    fn store_assigns_sequential_ids() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(999),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 0, 1)],
        };
        let id0 = store.push(f.clone());
        let id1 = store.push(f);
        assert_eq!(id0, FragmentId(0));
        assert_eq!(id1, FragmentId(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(id1).id, id1);
        assert_eq!(store.total_real_edges(), 2);
    }

    #[test]
    fn store_replace_overwrites() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 0,
            partition: PartitionId(1),
            edges: vec![real(0, 1, 1)],
        };
        let id = store.push(f.clone());
        let longer = Fragment { edges: vec![real(0, 1, 2), real(1, 2, 1)], ..f };
        store.replace(id, longer);
        assert_eq!(store.get(id).len(), 2);
        assert_eq!(store.cycle_ids(), vec![id]);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = FragmentStore::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    store.push(Fragment {
                        id: FragmentId(0),
                        kind: FragmentKind::Path,
                        level: 0,
                        partition: PartitionId(t as u32),
                        edges: vec![real(t, t, t + 1)],
                    });
                });
            }
        });
        assert_eq!(store.len(), 4);
        let ids: std::collections::HashSet<u64> = store.snapshot().iter().map(|f| f.id.0).collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn disk_longs_accounting() {
        let store = FragmentStore::new();
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 0, 1), real(1, 1, 2)],
        });
        assert_eq!(store.disk_longs(), 4 + 6);
    }
}
