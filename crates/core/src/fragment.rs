//! Path and cycle fragments, and the fragment store ("persist to disk").
//!
//! Phase 1 consumes local edges and produces *fragments*: maximal local paths
//! between odd-degree boundary vertices and local cycles anchored at a vertex.
//! Each path fragment is replaced in partition memory by a single coarse
//! "OB-pair" edge (a [`TourEdge::Virtual`] reference to the fragment); cycle
//! fragments are removed from memory entirely and only re-read during Phase 3.
//! The paper persists this book-keeping to disk; here the [`FragmentStore`]
//! plays that role (append-only, shared across partitions/workers, cheap to
//! write, only read back in Phase 3), with the same effect on the partitions'
//! *in-memory* Long accounting.
//!
//! Where the fragments physically live is a seam (`FragmentBacking`) behind
//! the store: the default backing keeps every fragment in an in-memory slab;
//! [`FragmentStore::spilling`] bounds resident fragment memory by a
//! [`SpillConfig::memory_budget_longs`] and pages the coldest fragments out
//! to a temp file, reloading them on demand during Phase 3 — the out-of-core
//! mode for circuits larger than memory. Both backings keep the modelled
//! [`disk_longs`](FragmentStore::disk_longs) accounting exact and produce
//! bit-identical circuits; the spill backing additionally reports its real
//! traffic in [`FragmentStoreStats`].

use euler_graph::{EdgeId, LocalIndex, PartitionId, VertexId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a fragment in the [`FragmentStore`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FragmentId(pub u64);

impl FragmentId {
    /// Returns the identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One traversed edge of a fragment, in traversal order and direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TourEdge {
    /// A real graph edge traversed from `from` to `to`.
    Real {
        /// The underlying edge.
        edge: EdgeId,
        /// Vertex the traversal enters the edge at.
        from: VertexId,
        /// Vertex the traversal leaves the edge at.
        to: VertexId,
    },
    /// A coarse edge standing for a lower-level path fragment, traversed from
    /// `from` to `to` (which are the fragment's endpoints, possibly reversed).
    Virtual {
        /// The referenced path fragment.
        fragment: FragmentId,
        /// Entry vertex.
        from: VertexId,
        /// Exit vertex.
        to: VertexId,
    },
}

impl TourEdge {
    /// Vertex this tour edge starts at.
    pub fn from(&self) -> VertexId {
        match *self {
            TourEdge::Real { from, .. } | TourEdge::Virtual { from, .. } => from,
        }
    }

    /// Vertex this tour edge ends at.
    pub fn to(&self) -> VertexId {
        match *self {
            TourEdge::Real { to, .. } | TourEdge::Virtual { to, .. } => to,
        }
    }

    /// The same tour edge traversed in the opposite direction.
    pub fn reversed(&self) -> TourEdge {
        match *self {
            TourEdge::Real { edge, from, to } => TourEdge::Real { edge, from: to, to: from },
            TourEdge::Virtual { fragment, from, to } => TourEdge::Virtual { fragment, from: to, to: from },
        }
    }

    /// True for [`TourEdge::Real`].
    pub fn is_real(&self) -> bool {
        matches!(self, TourEdge::Real { .. })
    }
}

/// Whether a fragment is an open path (OB-pair) or a closed cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragmentKind {
    /// Maximal local path between two odd-degree boundary vertices.
    Path,
    /// Local cycle anchored at (starting and ending at) one vertex.
    Cycle,
}

/// A path or cycle found by Phase 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fragment {
    /// Identifier in the store.
    pub id: FragmentId,
    /// Path or cycle.
    pub kind: FragmentKind,
    /// Merge level at which the fragment was found (0 = leaf partitions).
    pub level: u32,
    /// Partition (current merged id) that found the fragment.
    pub partition: PartitionId,
    /// Traversed edges in order. For a path, `edges[0].from()` is the start
    /// vertex and `edges.last().to()` the end vertex; for a cycle both equal
    /// the anchor.
    pub edges: Vec<TourEdge>,
}

impl Fragment {
    /// Start vertex (first tour edge's source). Cycles start at their anchor.
    pub fn start(&self) -> VertexId {
        self.edges.first().expect("fragments are never empty").from()
    }

    /// End vertex (last tour edge's target). Equals [`start`](Self::start)
    /// for cycles.
    pub fn end(&self) -> VertexId {
        self.edges.last().expect("fragments are never empty").to()
    }

    /// Number of tour edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Fragments are never empty, but the standard pairing is provided.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All distinct vertices that appear as tour-edge endpoints, in first-seen
    /// order. These are the "visible" vertices at this fragment's granularity
    /// (vertices interior to nested virtual edges are not included).
    /// De-duplication runs over an interned slot bitmap rather than a hash
    /// set.
    pub fn visible_vertices(&self) -> Vec<VertexId> {
        let index =
            LocalIndex::from_vertices(self.edges.iter().flat_map(|e| [e.from(), e.to()]));
        let mut seen: Vec<bool> = index.zeroed();
        let mut out = Vec::with_capacity(index.len());
        for e in &self.edges {
            for v in [e.from(), e.to()] {
                let s = index.slot(v).expect("endpoint interned") as usize;
                if !seen[s] {
                    seen[s] = true;
                    out.push(v);
                }
            }
        }
        out
    }

    /// Checks the internal chaining invariant: consecutive tour edges share a
    /// vertex and (for cycles) the fragment closes.
    pub fn is_well_formed(&self) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        for w in self.edges.windows(2) {
            if w[0].to() != w[1].from() {
                return false;
            }
        }
        match self.kind {
            FragmentKind::Cycle => self.start() == self.end(),
            FragmentKind::Path => true,
        }
    }

    /// Number of Longs the fragment occupies *on disk* (not in partition
    /// memory): kind/level/partition header plus 3 per tour edge.
    pub fn disk_longs(&self) -> u64 {
        4 + 3 * self.edges.len() as u64
    }
}

/// Live statistics of a fragment store's backing — the real (not modelled)
/// memory and spill traffic, in the paper's Long units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentStoreStats {
    /// Longs of fragment payload currently resident in memory.
    pub resident_longs: u64,
    /// High-water mark of `resident_longs` over the store's lifetime.
    pub peak_resident_longs: u64,
    /// Fragments whose current version lives in the spill file.
    pub spilled_fragments: u64,
    /// Longs written to the spill file (superseded versions included).
    pub spill_write_longs: u64,
    /// Longs read back from the spill file (Phase-3 reload traffic).
    pub spill_read_longs: u64,
    /// Spill I/O failures absorbed by keeping the fragment resident.
    pub spill_errors: u64,
    /// Longs of superseded `replace` records currently dead in the spill
    /// file — exactly the free extents awaiting reuse. Every file Long is
    /// either part of a live record or counted here, so
    /// `spill_file_longs == live record Longs + dead_longs` at all times.
    pub dead_longs: u64,
    /// Current spill-file extent in Longs (file bytes / 8). Bounded under
    /// replace-heavy traffic because superseded records are reused through
    /// the free list instead of growing the file monotonically.
    pub spill_file_longs: u64,
}

/// Configuration of the out-of-core spill backing
/// ([`FragmentStore::spilling`]).
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Resident fragment budget in Longs (a fragment occupies
    /// [`Fragment::disk_longs`] Longs). When the resident set exceeds the
    /// budget, the coldest (oldest) fragments are paged out to the spill
    /// file until it fits again.
    pub memory_budget_longs: u64,
    /// Directory the spill file is created in (default:
    /// [`std::env::temp_dir`]). The file is unlinked immediately after
    /// creation, so it never outlives the store.
    pub directory: Option<PathBuf>,
}

impl SpillConfig {
    /// A spill configuration with the given resident budget in Longs.
    pub fn with_budget(memory_budget_longs: u64) -> Self {
        SpillConfig { memory_budget_longs, directory: None }
    }

    /// Overrides the spill-file directory (tests use this to provoke and
    /// observe spill I/O failures).
    pub fn in_directory(mut self, directory: impl Into<PathBuf>) -> Self {
        self.directory = Some(directory.into());
        self
    }
}

/// The storage seam behind [`FragmentStore`]: where fragments physically
/// live. Implementations own the accounting so the store can answer
/// [`disk_longs`](FragmentStore::disk_longs) /
/// [`total_real_edges`](FragmentStore::total_real_edges) without touching
/// the fragments.
trait FragmentBacking: Send {
    fn push(&mut self, fragment: Fragment) -> FragmentId;
    fn get(&mut self, id: FragmentId) -> Fragment;
    fn replace(&mut self, id: FragmentId, fragment: Fragment);
    fn len(&self) -> usize;
    /// The contiguous slab, when the backing has one (memory backing only) —
    /// what makes [`FragmentStore::with_all`] zero-copy there.
    fn as_slice(&self) -> Option<&[Fragment]>;
    /// Visits every fragment in id order. Spilled fragments are decoded into
    /// a scratch buffer one at a time; nothing is retained.
    fn for_each(&mut self, f: &mut dyn FnMut(&Fragment));
    fn cycle_ids(&self) -> Vec<FragmentId>;
    /// `(visible vertex, cycle id)` pairs over every cycle fragment, cycles
    /// in id order and vertices in first-seen order within each — the
    /// Phase-3 splice index. Answered without touching spilled payloads:
    /// backings capture the vertex lists at `push`/`replace` time, while the
    /// fragment is still resident.
    fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)>;
    fn disk_longs(&self) -> u64;
    fn total_real_edges(&self) -> u64;
    fn stats(&self) -> FragmentStoreStats;
}

/// Shared bookkeeping of both backings: the modelled "persisted to disk"
/// Long count and the real-edge tally, maintained exactly across
/// `push`/`replace`.
#[derive(Debug, Default)]
struct Accounting {
    disk_longs: u64,
    real_edges: u64,
}

impl Accounting {
    fn add(&mut self, f: &Fragment) {
        self.disk_longs += f.disk_longs();
        self.real_edges += f.edges.iter().filter(|e| e.is_real()).count() as u64;
    }

    fn remove(&mut self, f: &Fragment) {
        self.disk_longs -= f.disk_longs();
        self.real_edges -= f.edges.iter().filter(|e| e.is_real()).count() as u64;
    }
}

/// The default backing: every fragment lives in one in-memory slab.
#[derive(Debug, Default)]
struct MemoryBacking {
    frags: Vec<Fragment>,
    accounting: Accounting,
    peak_longs: u64,
}

impl FragmentBacking for MemoryBacking {
    fn push(&mut self, mut fragment: Fragment) -> FragmentId {
        let id = FragmentId(self.frags.len() as u64);
        fragment.id = id;
        self.accounting.add(&fragment);
        self.peak_longs = self.peak_longs.max(self.accounting.disk_longs);
        self.frags.push(fragment);
        id
    }

    fn get(&mut self, id: FragmentId) -> Fragment {
        self.frags[id.index()].clone()
    }

    fn replace(&mut self, id: FragmentId, mut fragment: Fragment) {
        fragment.id = id;
        self.accounting.remove(&self.frags[id.index()]);
        self.accounting.add(&fragment);
        self.peak_longs = self.peak_longs.max(self.accounting.disk_longs);
        self.frags[id.index()] = fragment;
    }

    fn len(&self) -> usize {
        self.frags.len()
    }

    fn as_slice(&self) -> Option<&[Fragment]> {
        Some(&self.frags)
    }

    fn for_each(&mut self, f: &mut dyn FnMut(&Fragment)) {
        for frag in &self.frags {
            f(frag);
        }
    }

    fn cycle_ids(&self) -> Vec<FragmentId> {
        self.frags.iter().filter(|f| f.kind == FragmentKind::Cycle).map(|f| f.id).collect()
    }

    fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)> {
        // Everything is resident, so the pairs are computed straight off the
        // slab; no captured lists needed.
        let mut pairs = Vec::new();
        for f in &self.frags {
            if f.kind == FragmentKind::Cycle {
                for v in f.visible_vertices() {
                    pairs.push((v, f.id));
                }
            }
        }
        pairs
    }

    fn disk_longs(&self) -> u64 {
        self.accounting.disk_longs
    }

    fn total_real_edges(&self) -> u64 {
        self.accounting.real_edges
    }

    fn stats(&self) -> FragmentStoreStats {
        FragmentStoreStats {
            resident_longs: self.accounting.disk_longs,
            peak_resident_longs: self.peak_longs,
            ..Default::default()
        }
    }
}

/// Where a spill-backed fragment's current version lives.
#[derive(Clone, Copy, Debug)]
enum Loc {
    Resident,
    Spilled {
        offset: u64,
        words: u64,
    },
}

/// Per-fragment index entry of the spill backing: enough to answer kind,
/// size and accounting queries without touching the payload.
#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    kind: FragmentKind,
    longs: u64,
    reals: u64,
    loc: Loc,
}

/// Flat `u64` record of one fragment in the spill file:
/// `[kind, level, partition, n]` then `n` tour edges of
/// `[tag, id, from, to]` (tag 0 = real, 1 = virtual). The id is not stored —
/// the index knows it. The distributed worker reuses this record as its
/// checkpoint/shipping format for fragments, hence the crate visibility.
pub(crate) fn encode_fragment(f: &Fragment, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(4 + 4 * f.edges.len());
    out.push(match f.kind {
        FragmentKind::Path => 0,
        FragmentKind::Cycle => 1,
    });
    out.push(f.level as u64);
    out.push(f.partition.0 as u64);
    out.push(f.edges.len() as u64);
    for e in &f.edges {
        match *e {
            TourEdge::Real { edge, from, to } => {
                out.extend_from_slice(&[0, edge.0, from.0, to.0]);
            }
            TourEdge::Virtual { fragment, from, to } => {
                out.extend_from_slice(&[1, fragment.0, from.0, to.0]);
            }
        }
    }
}

pub(crate) fn decode_fragment(id: FragmentId, words: &[u64]) -> Fragment {
    let kind = if words[0] == 0 { FragmentKind::Path } else { FragmentKind::Cycle };
    let n = words[3] as usize;
    let mut edges = Vec::with_capacity(n);
    for rec in words[4..4 + 4 * n].chunks_exact(4) {
        let (from, to) = (VertexId(rec[2]), VertexId(rec[3]));
        edges.push(if rec[0] == 0 {
            TourEdge::Real { edge: EdgeId(rec[1]), from, to }
        } else {
            TourEdge::Virtual { fragment: FragmentId(rec[1]), from, to }
        });
    }
    Fragment { id, kind, level: words[1] as u32, partition: PartitionId(words[2] as u32), edges }
}

/// Distinguishes concurrently-live spill files of one process.
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The out-of-core backing: a bounded resident set plus a spill file.
///
/// Eviction is oldest-first (push order): low-level fragments are the ones
/// Phase 3 reaches last, so they go cold first. A spill I/O failure is
/// absorbed, not propagated — the fragment stays resident, the failure is
/// counted in [`FragmentStoreStats::spill_errors`] and no further spilling
/// is attempted, so an interrupted spill degrades to the in-memory backing
/// with identical results.
/// One reusable extent of the spill file: a superseded record's former
/// location.
#[derive(Clone, Copy, Debug)]
struct FreeExtent {
    /// Byte offset into the spill file.
    offset: u64,
    /// Extent length in words (Longs).
    words: u64,
}

struct SpillBacking {
    budget_longs: u64,
    directory: PathBuf,
    index: Vec<SlotMeta>,
    /// Visible-vertex lists of cycle fragments (empty for paths), captured
    /// while the fragment was resident — the Phase-3 splice index, answered
    /// without re-reading spilled payloads.
    cycle_vis: Vec<Vec<VertexId>>,
    resident: HashMap<u64, Fragment>,
    /// Resident ids, oldest first — the eviction order.
    fifo: VecDeque<u64>,
    /// Created lazily on first eviction; unlinked right after creation.
    file: Option<File>,
    file_end: u64,
    /// Extents of superseded (`replace`d) records, available for reuse —
    /// what keeps the spill file from growing monotonically under heavy
    /// replace traffic. Word-granular; adjacent extents are coalesced.
    free: Vec<FreeExtent>,
    /// Set after a spill I/O failure: stop spilling, stay resident.
    broken: bool,
    accounting: Accounting,
    stats: FragmentStoreStats,
    /// Reusable encode/IO scratch.
    words: Vec<u64>,
    bytes: Vec<u8>,
}

impl SpillBacking {
    fn new(config: SpillConfig) -> Self {
        SpillBacking {
            budget_longs: config.memory_budget_longs,
            directory: config.directory.unwrap_or_else(std::env::temp_dir),
            index: Vec::new(),
            cycle_vis: Vec::new(),
            resident: HashMap::new(),
            fifo: VecDeque::new(),
            file: None,
            file_end: 0,
            free: Vec::new(),
            broken: false,
            accounting: Accounting::default(),
            stats: FragmentStoreStats::default(),
            words: Vec::new(),
            bytes: Vec::new(),
        }
    }

    /// Opens the spill file on first use. The path is unlinked immediately
    /// (the open handle keeps the data), so nothing leaks past the store.
    fn file(&mut self) -> std::io::Result<&mut File> {
        if self.file.is_none() {
            let path = self.directory.join(format!(
                "euler-fragments-{}-{}.spill",
                std::process::id(),
                SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let file = File::options().read(true).write(true).create_new(true).open(&path)?;
            std::fs::remove_file(&path)?;
            self.file = Some(file);
        }
        Ok(self.file.as_mut().expect("just created"))
    }

    /// Returns a superseded record's extent to the free list, coalescing
    /// with adjacent free extents. The space stays in the file (and in
    /// [`FragmentStoreStats::dead_longs`]) until a later record reuses it.
    fn free_record(&mut self, mut offset: u64, mut words: u64) {
        self.stats.dead_longs += words;
        loop {
            if let Some(i) = self.free.iter().position(|e| e.offset + 8 * e.words == offset) {
                let e = self.free.swap_remove(i);
                offset = e.offset;
                words += e.words;
            } else if let Some(i) = self.free.iter().position(|e| e.offset == offset + 8 * words) {
                let e = self.free.swap_remove(i);
                words += e.words;
            } else {
                break;
            }
        }
        self.free.push(FreeExtent { offset, words });
    }

    /// Best-fit allocation from the free list: the smallest free extent that
    /// holds `words`, shrunk or consumed. `None` means the record appends at
    /// the end of the file instead.
    fn alloc_extent(&mut self, words: u64) -> Option<u64> {
        let i = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, e)| e.words >= words)
            .min_by_key(|(_, e)| e.words)
            .map(|(i, _)| i)?;
        let e = &mut self.free[i];
        let offset = e.offset;
        if e.words == words {
            self.free.swap_remove(i);
        } else {
            e.offset += 8 * words;
            e.words -= words;
        }
        self.stats.dead_longs -= words;
        Some(offset)
    }

    /// Writes `fragment`'s record into the spill file — into a reused free
    /// extent when one fits, else appended at the end — returning its
    /// location.
    fn write_record(&mut self, fragment: &Fragment) -> std::io::Result<Loc> {
        let mut words = std::mem::take(&mut self.words);
        encode_fragment(fragment, &mut words);
        let mut bytes = std::mem::take(&mut self.bytes);
        bytes.clear();
        bytes.reserve(8 * words.len());
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let need = words.len() as u64;
        let reused = self.alloc_extent(need);
        let offset = reused.unwrap_or(self.file_end);
        let out = (|| {
            let file = self.file()?;
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&bytes)?;
            Ok(Loc::Spilled { offset, words: need })
        })();
        match (&out, reused) {
            (Ok(_), None) => {
                self.file_end += bytes.len() as u64;
                self.stats.spill_file_longs = self.file_end / 8;
            }
            (Ok(_), Some(_)) => {}
            // A failed write into a reused extent leaves no valid record
            // there; the extent goes back on the free list.
            (Err(_), Some(o)) => self.free_record(o, need),
            (Err(_), None) => {}
        }
        self.words = words;
        self.bytes = bytes;
        out
    }

    /// Reads the record at `loc` back into a fragment.
    fn read_record(&mut self, id: FragmentId, offset: u64, words: u64) -> Fragment {
        let mut bytes = std::mem::take(&mut self.bytes);
        bytes.resize(8 * words as usize, 0);
        {
            let file = self.file.as_mut().expect("spilled records imply an open file");
            file.seek(SeekFrom::Start(offset)).expect("spill file seek");
            file.read_exact(&mut bytes).expect("spill file read");
        }
        let mut ws = std::mem::take(&mut self.words);
        ws.clear();
        ws.extend(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
        let fragment = decode_fragment(id, &ws);
        self.words = ws;
        self.bytes = bytes;
        fragment
    }

    /// Makes `fragment` resident (newest) and re-balances under the budget.
    fn insert_resident(&mut self, fragment: Fragment) {
        let id = fragment.id.0;
        let longs = fragment.disk_longs();
        self.resident.insert(id, fragment);
        self.fifo.push_back(id);
        self.stats.resident_longs += longs;
        self.stats.peak_resident_longs =
            self.stats.peak_resident_longs.max(self.stats.resident_longs);
        self.evict();
    }

    /// Spills oldest-first until the resident set fits the budget.
    fn evict(&mut self) {
        while self.stats.resident_longs > self.budget_longs && !self.broken {
            let Some(id) = self.fifo.pop_front() else { break };
            let fragment = self.resident.remove(&id).expect("fifo ids are resident");
            match self.write_record(&fragment) {
                Ok(loc) => {
                    let longs = fragment.disk_longs();
                    self.index[id as usize].loc = loc;
                    self.stats.resident_longs -= longs;
                    self.stats.spilled_fragments += 1;
                    self.stats.spill_write_longs += longs;
                }
                Err(_) => {
                    // Interrupted spill: keep the fragment resident, record
                    // the failure, and stop trying — results are unaffected.
                    self.resident.insert(id, fragment);
                    self.fifo.push_front(id);
                    self.stats.spill_errors += 1;
                    self.broken = true;
                }
            }
        }
    }
}

impl FragmentBacking for SpillBacking {
    fn push(&mut self, mut fragment: Fragment) -> FragmentId {
        let id = FragmentId(self.index.len() as u64);
        fragment.id = id;
        self.accounting.add(&fragment);
        self.index.push(SlotMeta {
            kind: fragment.kind,
            longs: fragment.disk_longs(),
            reals: fragment.edges.iter().filter(|e| e.is_real()).count() as u64,
            loc: Loc::Resident,
        });
        self.cycle_vis.push(if fragment.kind == FragmentKind::Cycle {
            fragment.visible_vertices()
        } else {
            Vec::new()
        });
        self.insert_resident(fragment);
        id
    }

    fn get(&mut self, id: FragmentId) -> Fragment {
        match self.index[id.index()].loc {
            Loc::Resident => self.resident[&id.0].clone(),
            Loc::Spilled { offset, words } => {
                self.stats.spill_read_longs += self.index[id.index()].longs;
                self.read_record(id, offset, words)
            }
        }
    }

    fn replace(&mut self, id: FragmentId, mut fragment: Fragment) {
        fragment.id = id;
        let meta = self.index[id.index()];
        self.accounting.disk_longs -= meta.longs;
        self.accounting.real_edges -= meta.reals;
        self.accounting.add(&fragment);
        let slot = &mut self.index[id.index()];
        slot.kind = fragment.kind;
        slot.longs = fragment.disk_longs();
        slot.reals = fragment.edges.iter().filter(|e| e.is_real()).count() as u64;
        self.cycle_vis[id.index()] = if fragment.kind == FragmentKind::Cycle {
            fragment.visible_vertices()
        } else {
            Vec::new()
        };
        match meta.loc {
            Loc::Resident => {
                let old = self.resident.insert(id.0, fragment).expect("resident");
                self.stats.resident_longs -= old.disk_longs();
                self.stats.resident_longs += self.index[id.index()].longs;
                self.stats.peak_resident_longs =
                    self.stats.peak_resident_longs.max(self.stats.resident_longs);
                self.evict();
            }
            Loc::Spilled { offset, words } => {
                // Supersede the spilled record with a fresh one; the old
                // record's extent joins the free list for reuse, so heavy
                // replace traffic cannot grow the spill file without bound.
                // (The new record never lands on the old extent — it is not
                // free until the write has succeeded — so a torn write can
                // not corrupt the still-current version.)
                if !self.broken {
                    if let Ok(loc) = self.write_record(&fragment) {
                        self.index[id.index()].loc = loc;
                        self.stats.spill_write_longs += self.index[id.index()].longs;
                        self.free_record(offset, words);
                        return;
                    }
                    self.stats.spill_errors += 1;
                    self.broken = true;
                }
                // Spill unavailable: bring the new version back resident.
                // The old on-disk record is dead either way.
                self.free_record(offset, words);
                self.stats.spilled_fragments -= 1;
                self.index[id.index()].loc = Loc::Resident;
                self.insert_resident(fragment);
            }
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn as_slice(&self) -> Option<&[Fragment]> {
        None
    }

    fn for_each(&mut self, f: &mut dyn FnMut(&Fragment)) {
        for i in 0..self.index.len() {
            let id = FragmentId(i as u64);
            match self.index[i].loc {
                Loc::Resident => f(&self.resident[&id.0]),
                Loc::Spilled { offset, words } => {
                    self.stats.spill_read_longs += self.index[i].longs;
                    let fragment = self.read_record(id, offset, words);
                    f(&fragment);
                }
            }
        }
    }

    fn cycle_ids(&self) -> Vec<FragmentId> {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == FragmentKind::Cycle)
            .map(|(i, _)| FragmentId(i as u64))
            .collect()
    }

    fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)> {
        let mut pairs = Vec::new();
        for (i, vis) in self.cycle_vis.iter().enumerate() {
            for &v in vis {
                pairs.push((v, FragmentId(i as u64)));
            }
        }
        pairs
    }

    fn disk_longs(&self) -> u64 {
        self.accounting.disk_longs
    }

    fn total_real_edges(&self) -> u64 {
        self.accounting.real_edges
    }

    fn stats(&self) -> FragmentStoreStats {
        self.stats
    }
}

/// Append-only store of fragments, shared across partitions and workers.
///
/// Plays the role of the paper's per-partition disk persistence: writes are
/// cheap and do not count toward partition memory; Phase 3 reads everything
/// back once. Storage is pluggable behind the store: [`FragmentStore::new`]
/// keeps every fragment in memory, [`FragmentStore::spilling`] bounds
/// resident fragment memory and pages cold fragments to a temp file (see
/// [`SpillConfig`]). Either way the modelled accounting
/// ([`disk_longs`](Self::disk_longs), [`total_real_edges`](Self::total_real_edges))
/// is exact and identical.
#[derive(Clone)]
pub struct FragmentStore {
    inner: Arc<Mutex<Box<dyn FragmentBacking>>>,
}

impl Default for FragmentStore {
    fn default() -> Self {
        let backing: Box<dyn FragmentBacking> = Box::<MemoryBacking>::default();
        FragmentStore { inner: Arc::new(Mutex::new(backing)) }
    }
}

impl std::fmt::Debug for FragmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FragmentStore")
            .field("len", &inner.len())
            .field("stats", &inner.stats())
            .finish()
    }
}

impl FragmentStore {
    /// Creates an empty store with the in-memory backing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store whose resident fragment memory is bounded by
    /// `config.memory_budget_longs`; overflow pages to a temp file and is
    /// reloaded on demand (the out-of-core mode).
    pub fn spilling(config: SpillConfig) -> Self {
        let backing: Box<dyn FragmentBacking> = Box::new(SpillBacking::new(config));
        FragmentStore { inner: Arc::new(Mutex::new(backing)) }
    }

    /// Appends a fragment, assigning and returning its id. The `id` field of
    /// the passed fragment is overwritten.
    pub fn push(&self, fragment: Fragment) -> FragmentId {
        self.inner.lock().push(fragment)
    }

    /// Returns a clone of the fragment with the given id (reloaded from the
    /// spill file if it was paged out).
    pub fn get(&self, id: FragmentId) -> Fragment {
        self.inner.lock().get(id)
    }

    /// Replaces an existing fragment (used by `mergeInto` when an internal
    /// cycle is spliced into a fragment created earlier in the same Phase-1
    /// invocation).
    pub fn replace(&self, id: FragmentId, fragment: Fragment) {
        self.inner.lock().replace(id, fragment)
    }

    /// Number of fragments stored.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no fragments are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every fragment. **Tests and diagnostics only**: this
    /// deep-clones the whole store (and reloads everything spilled), so hot
    /// paths must use [`with_all`](Self::with_all) or
    /// [`for_each`](Self::for_each) instead.
    pub fn snapshot(&self) -> Vec<Fragment> {
        let mut all = Vec::with_capacity(self.len());
        self.for_each(|f| all.push(f.clone()));
        all
    }

    /// Runs `f` over all fragments under the lock. Zero-copy on the
    /// in-memory backing; a spill-backed store must materialise the slab
    /// first, so streaming readers prefer [`for_each`](Self::for_each).
    pub fn with_all<R>(&self, f: impl FnOnce(&[Fragment]) -> R) -> R {
        let mut inner = self.inner.lock();
        if inner.as_slice().is_some() {
            return f(inner.as_slice().expect("just checked"));
        }
        let mut all = Vec::with_capacity(inner.len());
        inner.for_each(&mut |frag| all.push(frag.clone()));
        f(&all)
    }

    /// Visits every fragment in id order under the lock, one at a time —
    /// the bounded-memory read path (Phase 3 builds its splice index here);
    /// spilled fragments are decoded into a scratch one by one.
    pub fn for_each(&self, mut f: impl FnMut(&Fragment)) {
        self.inner.lock().for_each(&mut f)
    }

    /// Ids of all cycle fragments (the ones Phase 3 must splice). Answered
    /// from the index; spilled payloads are not touched.
    pub fn cycle_ids(&self) -> Vec<FragmentId> {
        self.inner.lock().cycle_ids()
    }

    /// `(visible vertex, cycle id)` pairs over every cycle fragment — the
    /// Phase-3 splice index: cycles in id order, vertices in first-seen
    /// order within each fragment. The lists are captured at
    /// [`push`](Self::push)/[`replace`](Self::replace) time while the
    /// fragment is resident, so this costs **no spill I/O** — which is what
    /// lets Phase 3 read each spilled fragment exactly once (during the
    /// unroll walk) instead of twice.
    pub fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)> {
        self.inner.lock().cycle_vertex_pairs()
    }

    /// Total Longs written to "disk" — the paper's modelled persistence
    /// accounting, maintained exactly across `push`/`replace` on every
    /// backing.
    pub fn disk_longs(&self) -> u64 {
        self.inner.lock().disk_longs()
    }

    /// Total number of *real* edges recorded across all fragments. When the
    /// run is complete this must equal the number of graph edges.
    pub fn total_real_edges(&self) -> u64 {
        self.inner.lock().total_real_edges()
    }

    /// Real memory/spill statistics of the backing.
    pub fn stats(&self) -> FragmentStoreStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(edge: u64, from: u64, to: u64) -> TourEdge {
        TourEdge::Real { edge: EdgeId(edge), from: VertexId(from), to: VertexId(to) }
    }

    #[test]
    fn tour_edge_endpoints_and_reverse() {
        let e = real(3, 1, 2);
        assert_eq!(e.from(), VertexId(1));
        assert_eq!(e.to(), VertexId(2));
        let r = e.reversed();
        assert_eq!(r.from(), VertexId(2));
        assert_eq!(r.to(), VertexId(1));
        assert!(e.is_real());
        let v = TourEdge::Virtual { fragment: FragmentId(0), from: VertexId(5), to: VertexId(6) };
        assert!(!v.is_real());
        assert_eq!(v.reversed().from(), VertexId(6));
    }

    #[test]
    fn fragment_well_formedness() {
        let path = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 1, 2), real(1, 2, 3)],
        };
        assert!(path.is_well_formed());
        assert_eq!(path.start(), VertexId(1));
        assert_eq!(path.end(), VertexId(3));
        assert_eq!(path.len(), 2);
        assert_eq!(path.visible_vertices(), vec![VertexId(1), VertexId(2), VertexId(3)]);

        let broken = Fragment { edges: vec![real(0, 1, 2), real(1, 3, 4)], ..path.clone() };
        assert!(!broken.is_well_formed());

        let open_cycle = Fragment { kind: FragmentKind::Cycle, ..path.clone() };
        assert!(!open_cycle.is_well_formed());

        let cycle = Fragment {
            kind: FragmentKind::Cycle,
            edges: vec![real(0, 1, 2), real(1, 2, 1)],
            ..path
        };
        assert!(cycle.is_well_formed());
        assert_eq!(cycle.start(), cycle.end());
    }

    #[test]
    fn store_assigns_sequential_ids() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(999),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 0, 1)],
        };
        let id0 = store.push(f.clone());
        let id1 = store.push(f);
        assert_eq!(id0, FragmentId(0));
        assert_eq!(id1, FragmentId(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(id1).id, id1);
        assert_eq!(store.total_real_edges(), 2);
    }

    #[test]
    fn store_replace_overwrites() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 0,
            partition: PartitionId(1),
            edges: vec![real(0, 1, 1)],
        };
        let id = store.push(f.clone());
        let longer = Fragment { edges: vec![real(0, 1, 2), real(1, 2, 1)], ..f };
        store.replace(id, longer);
        assert_eq!(store.get(id).len(), 2);
        assert_eq!(store.cycle_ids(), vec![id]);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = FragmentStore::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    store.push(Fragment {
                        id: FragmentId(0),
                        kind: FragmentKind::Path,
                        level: 0,
                        partition: PartitionId(t as u32),
                        edges: vec![real(t, t, t + 1)],
                    });
                });
            }
        });
        assert_eq!(store.len(), 4);
        let ids: std::collections::HashSet<u64> = store.snapshot().iter().map(|f| f.id.0).collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn disk_longs_accounting() {
        let store = FragmentStore::new();
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 0, 1), real(1, 1, 2)],
        });
        assert_eq!(store.disk_longs(), 4 + 6);
    }

    #[test]
    fn replace_keeps_accounting_exact() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 1, 1)],
        };
        let id = store.push(f.clone());
        assert_eq!(store.disk_longs(), 7);
        assert_eq!(store.total_real_edges(), 1);
        let longer = Fragment { edges: vec![real(0, 1, 2), real(1, 2, 1)], ..f };
        store.replace(id, longer);
        assert_eq!(store.disk_longs(), 10);
        assert_eq!(store.total_real_edges(), 2);
    }

    // --- The spill backing. -------------------------------------------------

    /// A mix of paths, cycles and virtual edges large enough to overflow a
    /// tiny budget many times over.
    fn workload(n: u64) -> Vec<Fragment> {
        (0..n)
            .map(|i| Fragment {
                id: FragmentId(0),
                kind: if i % 3 == 0 { FragmentKind::Cycle } else { FragmentKind::Path },
                level: (i % 4) as u32,
                partition: PartitionId((i % 5) as u32),
                edges: (0..=(i % 7))
                    .map(|j| {
                        if j % 2 == 0 {
                            real(10 * i + j, j, j + 1)
                        } else {
                            TourEdge::Virtual {
                                fragment: FragmentId(i),
                                from: VertexId(j),
                                to: VertexId(j + 1),
                            }
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    /// Every observable query of the two stores must agree.
    fn assert_stores_agree(mem: &FragmentStore, spill: &FragmentStore) {
        assert_eq!(mem.len(), spill.len());
        assert_eq!(mem.disk_longs(), spill.disk_longs());
        assert_eq!(mem.total_real_edges(), spill.total_real_edges());
        assert_eq!(mem.cycle_ids(), spill.cycle_ids());
        for i in 0..mem.len() {
            let id = FragmentId(i as u64);
            let (a, b) = (mem.get(id), spill.get(id));
            assert_eq!(a.id, b.id);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.level, b.level);
            assert_eq!(a.partition, b.partition);
            assert_eq!(a.edges, b.edges);
        }
        let mut mem_all = Vec::new();
        mem.for_each(|f| mem_all.push(f.clone()));
        let mut spill_all = Vec::new();
        spill.for_each(|f| spill_all.push(f.clone()));
        assert_eq!(mem_all.len(), spill_all.len());
        for (a, b) in mem_all.iter().zip(&spill_all) {
            assert_eq!(a.edges, b.edges);
        }
        // with_all materialises the same slab either way.
        let a = mem.with_all(|f| f.len());
        let b = spill.with_all(|f| f.len());
        assert_eq!(a, b);
    }

    #[test]
    fn spill_backing_is_observably_identical_to_memory_under_a_tiny_budget() {
        let mem = FragmentStore::new();
        let spill = FragmentStore::spilling(SpillConfig::with_budget(32));
        for f in workload(40) {
            let a = mem.push(f.clone());
            let b = spill.push(f);
            assert_eq!(a, b, "backings assign the same ids");
        }
        assert_stores_agree(&mem, &spill);
        let stats = spill.stats();
        assert!(stats.spilled_fragments > 0, "a 32-Long budget must spill: {stats:?}");
        assert!(stats.spill_write_longs > 0);
        // Once pushes quiesce, eviction has brought the set under budget.
        assert!(stats.resident_longs <= 32, "resident {} over budget", stats.resident_longs);
        assert_eq!(stats.spill_errors, 0);
        // Peak never exceeds budget + one fragment (evictions run per push).
        let max_frag = workload(40).iter().map(|f| f.disk_longs()).max().unwrap();
        assert!(
            stats.peak_resident_longs <= 32 + max_frag,
            "peak {} budget 32 max fragment {max_frag}",
            stats.peak_resident_longs
        );
        // In-memory backing reports no spill traffic, full residency.
        let mem_stats = mem.stats();
        assert_eq!(mem_stats.spilled_fragments, 0);
        assert_eq!(mem_stats.resident_longs, mem.disk_longs());
    }

    #[test]
    fn zero_budget_spills_everything_and_replace_supersedes_records() {
        let store = FragmentStore::spilling(SpillConfig::with_budget(0));
        let fs = workload(12);
        for f in &fs {
            store.push(f.clone());
        }
        assert_eq!(store.stats().spilled_fragments, 12);
        assert_eq!(store.stats().resident_longs, 0);
        // Replace a spilled fragment with a longer version; reads see it.
        let longer = Fragment { edges: vec![real(7, 3, 4), real(8, 4, 3)], ..fs[5].clone() };
        store.replace(FragmentId(5), longer.clone());
        let back = store.get(FragmentId(5));
        assert_eq!(back.edges, longer.edges);
        // Accounting followed the replacement exactly.
        let expected: u64 = fs
            .iter()
            .enumerate()
            .map(|(i, f)| if i == 5 { longer.disk_longs() } else { f.disk_longs() })
            .sum();
        assert_eq!(store.disk_longs(), expected);
    }

    #[test]
    fn replace_heavy_traffic_keeps_the_spill_file_bounded() {
        let store = FragmentStore::spilling(SpillConfig::with_budget(0));
        let n = 8u64;
        let two_edges = |a: u64, b: u64, v: u64| Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(a, v, v + 1), real(b, v + 1, v + 2)],
        };
        for i in 0..n {
            store.push(two_edges(i, 100 + i, i));
        }
        let baseline = store.stats().spill_file_longs;
        assert!(baseline > 0, "a zero budget spills every push");
        // Every round supersedes every record with a same-size version.
        // Without extent reuse the file would gain `baseline` words per
        // round; with the free list it reaches a small steady state.
        let rounds = 50u64;
        for round in 1..=rounds {
            for i in 0..n {
                store.replace(FragmentId(i), two_edges(1000 * round + i, 2000 * round + i, i));
            }
        }
        let stats = store.stats();
        assert!(
            stats.spill_file_longs <= 3 * baseline,
            "{rounds} replace rounds must not grow the file {rounds}x: \
             baseline={baseline} stats={stats:?}"
        );
        // A varied-size round: shrinking replaces split free extents
        // (best-fit leaves a dead remainder), growing ones append.
        for i in 0..n {
            let f = if i % 2 == 0 {
                Fragment { edges: vec![real(9000 + i, i, i + 1)], ..two_edges(0, 0, i) }
            } else {
                Fragment {
                    edges: vec![
                        real(9100 + i, i, i + 1),
                        real(9200 + i, i + 1, i + 2),
                        real(9300 + i, i + 2, i + 3),
                    ],
                    ..two_edges(0, 0, i)
                }
            };
            store.replace(FragmentId(i), f);
        }
        // `dead_longs` is exact: the file extent is live records + dead
        // space, to the word.
        let stats = store.stats();
        let live: u64 =
            (0..n).map(|i| 4 + 4 * store.get(FragmentId(i)).edges.len() as u64).sum();
        assert_eq!(
            stats.spill_file_longs,
            live + stats.dead_longs,
            "file words must equal live record words plus dead words: {stats:?}"
        );
        // Reads still serve the latest version of every fragment.
        for i in 0..n {
            let f = store.get(FragmentId(i));
            let expect = if i % 2 == 0 { 1 } else { 3 };
            assert_eq!(f.edges.len(), expect, "fragment {i} lost its last replace");
        }
        assert_eq!(store.len(), n as usize);
    }

    #[test]
    fn interrupted_spill_recovers_to_resident_results() {
        // A spill directory that cannot exist: the first eviction fails, the
        // store records it, stops spilling and keeps everything resident —
        // with every query still exact.
        let mem = FragmentStore::new();
        let broken = FragmentStore::spilling(
            SpillConfig::with_budget(8).in_directory("/nonexistent/euler/spill/dir"),
        );
        for f in workload(20) {
            mem.push(f.clone());
            broken.push(f);
        }
        let stats = broken.stats();
        assert_eq!(stats.spill_errors, 1, "first failure disarms spilling: {stats:?}");
        assert_eq!(stats.spilled_fragments, 0);
        assert_eq!(stats.resident_longs, broken.disk_longs());
        assert_stores_agree(&mem, &broken);
    }

    #[test]
    fn cycle_vertex_pairs_agree_across_backings_and_cost_no_spill_reads() {
        let mem = FragmentStore::new();
        let spill = FragmentStore::spilling(SpillConfig::with_budget(0));
        for f in workload(30) {
            mem.push(f.clone());
            spill.push(f);
        }
        // Replace one spilled cycle with a different cycle and one with a
        // path: the captured lists must follow.
        let cycle_id = mem.cycle_ids()[1];
        let as_cycle = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 2,
            partition: PartitionId(0),
            edges: vec![real(90, 40, 41), real(91, 41, 40)],
        };
        mem.replace(cycle_id, as_cycle.clone());
        spill.replace(cycle_id, as_cycle);
        let path_id = mem.cycle_ids()[2];
        let as_path = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 2,
            partition: PartitionId(0),
            edges: vec![real(92, 50, 51)],
        };
        mem.replace(path_id, as_path.clone());
        spill.replace(path_id, as_path);
        let reads_before = spill.stats().spill_read_longs;
        assert_eq!(mem.cycle_vertex_pairs(), spill.cycle_vertex_pairs());
        assert_eq!(
            spill.stats().spill_read_longs,
            reads_before,
            "the splice index must not touch spilled payloads"
        );
        assert!(!mem.cycle_vertex_pairs().is_empty());
    }

    #[test]
    fn spilled_store_is_shareable_across_threads() {
        let store = FragmentStore::spilling(SpillConfig::with_budget(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    store.push(Fragment {
                        id: FragmentId(0),
                        kind: FragmentKind::Path,
                        level: 0,
                        partition: PartitionId(t as u32),
                        edges: vec![real(t, t, t + 1)],
                    });
                });
            }
        });
        assert_eq!(store.len(), 4);
        assert_eq!(store.total_real_edges(), 4);
    }
}
